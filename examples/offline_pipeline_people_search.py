"""People Search: the full offline platform on a sharded deployment.

Reproduces the paper's offline flow (Figures 5-8) for a People-Search-like
workload: 50-d member embeddings, sharded across "server nodes", with
the segmenter learnt once and shared, partial results checkpointed to
HDFS, and recall validated against the distributed brute-force job.

Run:
    python examples/offline_pipeline_people_search.py
"""

import tempfile

from repro import LannsConfig, HnswParams
from repro.data import make_queries, people_like
from repro.offline import (
    brute_force_job,
    build_index_job,
    learn_segmenter_job,
    query_index_job,
    recall_at_k,
)
from repro.sparklite import LocalCluster
from repro.storage import LocalHdfs


def main() -> None:
    print("People Search offline pipeline (Figures 5-8)")
    print("=" * 60)
    base = people_like(12_000, seed=3)
    queries = make_queries(base, 150, seed=4)

    with tempfile.TemporaryDirectory() as root:
        fs = LocalHdfs(root)
        # A flaky 8-executor cluster: 5% of task attempts kill their
        # executor, exactly the environment Section 5.3.1 describes.
        cluster = LocalCluster(
            num_executors=8, fs=fs, failure_rate=0.05, max_rounds=30, seed=1
        )
        config = LannsConfig(
            num_shards=4,
            num_segments=2,
            segmenter="apd",
            alpha=0.2,
            hnsw=HnswParams(M=12, ef_construction=64),
            segmenter_sample_size=10_000,
            seed=11,
        )

        # Figure 5: learn the segmenter once, share it across shards.
        segmenter = learn_segmenter_job(
            cluster, fs, base, config, output_path="segmenters/people.json"
        )
        print(f"learnt segmenter: {segmenter!r}")

        # Figure 6: distributed two-level index build.
        manifest, build_metrics = build_index_job(
            cluster,
            fs,
            base,
            config,
            "indices/people",
            segmenter=segmenter,
            checkpoint=True,
        )
        print(
            f"built {manifest.total_vectors} vectors into "
            f"{config.num_shards}x{config.num_segments} partitions; "
            f"executor failures absorbed: {build_metrics.failures}"
        )
        for executors in (2, 4, 8):
            print(
                f"  simulated build makespan @ {executors} executors: "
                f"{build_metrics.makespan(executors):6.2f}s"
            )

        # Figure 7: distributed querying with two-level merging and
        # checkpointed partial results.
        result = query_index_job(
            cluster, fs, "indices/people", queries, top_k=50, ef=96,
            checkpoint=True,
        )
        print("\nquery stages:")
        for stage in result.stages:
            print(f"  {stage!r}")

        # Figure 8: distributed exact search for ground truth.
        truth_ids, _ = brute_force_job(cluster, base, queries, 50)
        recall = recall_at_k(result.ids, truth_ids, 50)
        print(f"\nrecall@50 vs distributed brute force: {recall:.4f}")
        assert recall >= 0.9

        leftovers = fs.ls_recursive("_tmp")
        print(f"temp checkpoint files left behind: {len(leftovers)}")
        assert leftovers == []


if __name__ == "__main__":
    main()
