"""Near-duplicate image detection with LANNS.

Reproduces the paper's NearDupe use case: CNN embeddings (d=2048) of
images posted to a feed, where re-posts of the same image appear as
near-duplicate vectors.  The paper serves this index as plain HNSW with
distributed querying (1 shard, 1 segment); the detection rule is a
distance threshold on the nearest neighbor.

Run:
    python examples/neardupe_detection.py
"""

import numpy as np

from repro import HnswParams, LannsConfig, build_lanns_index
from repro.data import neardupe_like
from repro.offline import exact_top_k


def main() -> None:
    print("Near-duplicate detection (NearDupe use case)")
    print("=" * 60)

    # Corpus with a known 30% near-duplicate rate.
    corpus = neardupe_like(2500, seed=9, duplicate_fraction=0.3,
                           duplicate_noise=0.02)
    print(f"corpus: {corpus.shape[0]} image embeddings, dim={corpus.shape[1]}")

    # Per the paper, NearDupe is "essentially ... the HNSW index with
    # distributed querying": one shard, one segment.
    config = LannsConfig(
        num_shards=1,
        num_segments=1,
        segmenter="rs",
        hnsw=HnswParams(M=12, ef_construction=64),
        seed=10,
    )
    index = build_lanns_index(corpus, config=config)

    # New uploads: half are re-posts (tiny perturbations of existing
    # images), half are genuinely new images.
    rng = np.random.default_rng(11)
    num_uploads = 60
    repost_rows = rng.integers(0, corpus.shape[0], size=num_uploads // 2)
    # Re-encoding artifacts are tiny relative to embedding scale: with
    # per-dim noise 0.005 the re-post sits ~0.005*sqrt(2048) ~ 0.23 from
    # its source, far inside the duplicate threshold.
    reposts = corpus[repost_rows] + rng.normal(
        scale=0.005, size=(num_uploads // 2, corpus.shape[1])
    ).astype(np.float32)
    fresh = neardupe_like(
        num_uploads // 2, seed=99, duplicate_fraction=0.0
    )
    uploads = np.concatenate([reposts, fresh])
    is_repost = np.array(
        [True] * (num_uploads // 2) + [False] * (num_uploads // 2)
    )

    # Calibrate the duplicate threshold from the corpus distance scale.
    sample_truth, sample_dists = exact_top_k(corpus, corpus[:200], 2)
    typical_nn = float(np.median(sample_dists[:, 1]))
    threshold = typical_nn * 0.5
    print(f"duplicate threshold: {threshold:.3f} "
          f"(median corpus NN distance {typical_nn:.3f})")

    # Classify each upload by its nearest neighbor distance.
    predictions = []
    for upload in uploads:
        _, dists = index.query(upload, top_k=1, ef=64)
        predictions.append(bool(dists[0] < threshold))
    predictions = np.array(predictions)

    true_pos = int((predictions & is_repost).sum())
    false_pos = int((predictions & ~is_repost).sum())
    false_neg = int((~predictions & is_repost).sum())
    precision = true_pos / max(true_pos + false_pos, 1)
    recall = true_pos / max(true_pos + false_neg, 1)
    print(f"\nuploads: {num_uploads} ({is_repost.sum()} re-posts)")
    print(f"detected: {predictions.sum()} flagged as duplicates")
    print(f"precision: {precision:.3f}  recall: {recall:.3f}")
    assert precision >= 0.95 and recall >= 0.95


if __name__ == "__main__":
    main()
