"""Segmenter playground: compare RS / RH / APD and the recall theory.

Walks through the paper's Section 4 on one dataset:

1. learns each segmenter and inspects its routing behaviour (balance,
   query fan-out, physical-spill duplication);
2. measures the end-to-end recall each strategy achieves at equal cost;
3. evaluates the Theorem 1 failure bound and the Figure 4 approximation
   that justify using only a few segmentation levels.

Run:
    python examples/segmenter_playground.py
"""

import numpy as np

from repro import HnswParams, LannsConfig, build_lanns_index
from repro.data import groups_like, make_queries
from repro.offline import exact_top_k, recall_at_k
from repro.segmenters import learn_segmenter
from repro.segmenters.theory import (
    failure_bound_1nn,
    figure4_failure_probability,
)


def main() -> None:
    print("Segmenter playground (Section 4)")
    print("=" * 64)
    base = groups_like(6000, seed=12)
    queries = make_queries(base, 120, seed=13)
    truth, _ = exact_top_k(base, queries, 10)

    print("\n1. routing behaviour (8 segments, alpha=0.15)")
    print(f"{'kind':5} {'balance':>8} {'query fan-out':>14} {'phys dup':>9}")
    for kind in ("rs", "rh", "apd"):
        segmenter = learn_segmenter(
            base, kind, 8, alpha=0.15, seed=1, sample_size=6000
        )
        routes = segmenter.route_data_batch(base)
        counts = np.bincount([r[0] for r in routes], minlength=8)
        balance = counts.min() / counts.max()
        fanout = np.mean(
            [len(r) for r in segmenter.route_query_batch(queries)]
        )
        physical = learn_segmenter(
            base, kind, 8, alpha=0.15, spill_mode="physical", seed=1,
            sample_size=6000,
        )
        duplication = (
            sum(len(r) for r in physical.route_data_batch(base)) / len(base)
        )
        print(f"{kind:5} {balance:8.3f} {fanout:14.2f} {duplication:9.2f}")

    print("\n2. end-to-end recall@10 (1 shard x 8 segments, virtual spill)")
    for kind in ("rs", "rh", "apd"):
        config = LannsConfig(
            num_shards=1,
            num_segments=8,
            segmenter=kind,
            alpha=0.15,
            hnsw=HnswParams(M=12, ef_construction=64),
            segmenter_sample_size=6000,
            seed=2,
        )
        index = build_lanns_index(base, config=config)
        ids, _ = index.query_batch(queries, 10, ef=96)
        probe_cost = np.mean(
            [len(index.segmenter.route_query(q)) for q in queries]
        )
        print(
            f"  {kind:4} recall={recall_at_k(ids, truth, 10):.4f} "
            f"segments probed/query={probe_cost:.2f}"
        )

    print("\n3. theory: why only a few levels (Figure 4 / Theorem 1)")
    curve = figure4_failure_probability(10_000, 0.15, 8)
    for level in (1, 2, 3, 8):
        print(
            f"  P(miss true NN) bound at {level} level(s) "
            f"({2**level:3d} segments): {curve[level - 1]:.2e}"
        )
    bound = float(
        np.mean(
            [failure_bound_1nn(q, base, 0.15, 3) for q in queries[:30]]
        )
    )
    print(f"  Theorem 1 data-dependent bound (depth 3, avg): {bound:.3f}")


if __name__ == "__main__":
    main()
