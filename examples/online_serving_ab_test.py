"""Online serving with an A/B test between two embedding models.

Reproduces Section 7 / Figure 9: an offline-built index is exported to
HDFS as a coupled (index + segmenter + config) artifact, deployed onto a
fleet of searcher nodes fronted by a broker, and served with the
perShardTopK optimisation.  A second index ("model B") is then deployed
onto the *same* searchers -- the paper's construct for "online A/B tests
between different modeling techniques" -- and both arms are queried and
compared.

Run:
    python examples/online_serving_ab_test.py
"""

import tempfile

import numpy as np

from repro import LannsConfig, HnswParams, build_lanns_index
from repro.data import groups_like, make_queries
from repro.offline import exact_top_k, recall_at_k
from repro.online import OnlineService
from repro.storage import LocalHdfs, save_lanns_index


def main() -> None:
    print("Online serving + A/B test (Section 7, Figure 9)")
    print("=" * 60)
    rng = np.random.default_rng(0)

    # Two "embedding models" for the same corpus of 6000 groups: model B
    # is model A plus noise (a worse model, so the A/B test has a
    # ground-truth winner).
    embeddings_a = groups_like(6000, seed=5)
    embeddings_b = (
        embeddings_a + rng.normal(scale=0.25, size=embeddings_a.shape)
    ).astype(np.float32)
    queries = make_queries(embeddings_a, 120, seed=6)
    truth, _ = exact_top_k(embeddings_a, queries, 15)

    config = LannsConfig(
        num_shards=2,
        num_segments=4,
        segmenter="apd",
        alpha=0.15,
        hnsw=HnswParams(M=12, ef_construction=64),
        seed=7,
    )

    with tempfile.TemporaryDirectory() as root:
        fs = LocalHdfs(root)
        print("building + exporting both model variants...")
        save_lanns_index(
            build_lanns_index(embeddings_a, config=config), fs, "prod/model-a"
        )
        save_lanns_index(
            build_lanns_index(embeddings_b, config=config), fs, "prod/model-b"
        )

        service = OnlineService(parallel_fanout=True)
        broker = service.deploy(fs, "prod/model-a", index_name="model-a")
        service.deploy(fs, "prod/model-b", index_name="model-b")
        print(f"deployed: {service.deployed_indices}")
        print(
            "searcher 0 hosts "
            f"{service.searchers[0].hosted_indices} "
            f"({service.searchers[0].memory_vectors()} vectors)"
        )
        print(f"broker perShardTopK for topK=15: {broker.per_shard_budget(15)}")

        # Serve both arms and score them.
        results = {}
        for arm in ("model-a", "model-b"):
            ids = np.full((len(queries), 15), -1, dtype=np.int64)
            for row, query in enumerate(queries):
                found, _ = service.query(query, 15, index_name=arm, ef=96)
                ids[row, : len(found)] = found
            results[arm] = recall_at_k(ids, truth, 15)
        stats = service.measure_qps(queries, 15, index_name="model-a")

        print("\nA/B results (recall@15 against model-A ground truth):")
        for arm, recall in results.items():
            print(f"  {arm}: {recall:.4f}")
        print(
            f"throughput: {stats['qps']:.0f} QPS, "
            f"p99 latency {stats['p99_latency_ms']:.2f} ms "
            "(paper: 2.5k QPS at p99 20ms on production hardware)"
        )
        assert results["model-a"] > results["model-b"]

        # End of experiment: retire the losing arm.
        service.undeploy("model-b")
        print(f"after ramp-down: {service.deployed_indices}")


if __name__ == "__main__":
    main()
