"""Quickstart: build a LANNS index and query it.

Builds a two-level partitioned index (2 shards x 4 APD segments) over a
synthetic People-like embedding corpus, queries it, and checks recall
against an exact scan -- the 60-second tour of the library.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import HnswParams, LannsConfig, build_lanns_index
from repro.data import make_queries, people_like
from repro.offline import exact_top_k, recall_at_k


def main() -> None:
    print("LANNS quickstart")
    print("=" * 60)

    # 1. Data: 8000 member embeddings in 50 dimensions (paper: 100M+).
    base = people_like(8000, seed=0)
    queries = make_queries(base, 100, seed=1)
    print(f"corpus: {base.shape[0]} vectors, dim={base.shape[1]}")

    # 2. Configure the platform: the paper's two-level partitioning.
    config = LannsConfig(
        num_shards=2,          # hash shards (one server node each)
        num_segments=4,        # learned segments inside each shard
        segmenter="apd",       # rs | rh | apd
        alpha=0.15,            # spill: ~30% of queries probe 2 children
        spill_mode="virtual",  # query-side spill (production choice)
        hnsw=HnswParams(M=12, ef_construction=64),
        topk_confidence=0.95,  # perShardTopK confidence
        seed=0,
    )

    # 3. Build: learns the shared segmenter on a subsample, hash-shards
    #    the corpus, routes each shard through the segmenter, and builds
    #    one HNSW index per (shard, segment).
    index = build_lanns_index(base, config=config)
    stats = index.stats()
    print(f"partitioning (shards, segments): {stats['partitioning']}")
    print(f"shard sizes: {stats['shard_sizes']}")
    print(f"segment sizes: {stats['segment_sizes']}")
    print(f"perShardTopK for topK=100: {index.per_shard_budget(100)}")

    # 4. Query.
    ids, dists = index.query(queries[0], top_k=10)
    print(f"\nquery 0 -> neighbors {ids.tolist()}")
    print(f"          distances {np.round(dists, 3).tolist()}")

    # 5. Recall against the exact answer.
    truth, _ = exact_top_k(base, queries, 10)
    found, _ = index.query_batch(queries, 10)
    recall = recall_at_k(found, truth, 10)
    print(f"\nrecall@10 over {len(queries)} queries: {recall:.4f}")
    assert recall > 0.9


if __name__ == "__main__":
    main()
