"""Table 8: build and query wall times on the real-world-like datasets.

Paper (wall times on LinkedIn's cluster):

    Dataset   S   dim   Size  Build    QuerySize  Query
    PYMK      20  50    100M  8h       370M       10h
    People    32  50    180M  8h40m    20k        10m
    NearDupe  1   2048  148k  1h20m    500k       5m
    Groups    1   256   2.7M  2h13m    20k        7m

We run the same four pipelines end to end on the scaled synthetic
equivalents (shard counts scaled with dataset size) and report measured
work plus the simulated 8-executor makespan.  Absolute numbers are not
comparable (pure Python, 2 cores, ~1000x smaller data); what must hold
is that the pipelines complete, times scale with dataset volume, and
PYMK/People (sharded, 50-d) build faster per vector than NearDupe
(2048-d).
"""

import pytest

from repro.core.config import LannsConfig
from repro.data.datasets import load_dataset
from repro.eval.harness import build_partitioned
from repro.sparklite.cluster import LocalCluster
from repro.storage.hdfs import LocalHdfs

from benchmarks.conftest import BENCH_EF, BENCH_HNSW, write_table

#: dataset -> (num_shards, num_segments, segmenter, alpha, top_k)
#: Shard counts are the paper's scaled down ~5x; NearDupe is "HNSW with
#: distributed querying" (1 shard, 1 segment) per the paper.  The 50-d
#: member-embedding deployments use a wider spill (alpha=0.25): at our
#: reduced per-partition sizes the boundary region holds a larger share
#: of each query's top-100, and the paper's production recall target
#: (>=95%) needs the extra fan-out.
DEPLOYMENTS = {
    "pymk": (4, 2, "apd", 0.25, 100),
    "people": (6, 2, "apd", 0.25, 50),
    "neardupe": (1, 1, "rs", 0.15, 100),
    "groups": (1, 4, "apd", 0.15, 100),
}

PAPER_ROWS = {
    "pymk": "paper: S=20 d=50 100M build 8h, 370M queries 10h",
    "people": "paper: S=32 d=50 180M build 8h40m, 20k queries 10m",
    "neardupe": "paper: S=1 d=2048 148k build 1h20m, 500k queries 5m",
    "groups": "paper: S=1 d=256 2.7M build 2h13m, 20k queries 7m",
}


@pytest.fixture(scope="session")
def realworld_runs(bench_tmp):
    """Build + query each real-world-like dataset once (shared with T9)."""
    runs = {}
    for name, deployment in DEPLOYMENTS.items():
        shards, segments, segmenter, alpha, top_k = deployment
        dataset = load_dataset(name)
        fs = LocalHdfs(bench_tmp / f"hdfs-rw-{name}")
        cluster = LocalCluster(num_executors=4, fs=fs)
        config = LannsConfig(
            num_shards=shards,
            num_segments=segments,
            segmenter=segmenter,
            alpha=alpha,
            hnsw=BENCH_HNSW,
            segmenter_sample_size=dataset.num_base,
            seed=17,
        )
        experiment = build_partitioned(dataset, config, fs, cluster)
        # Keep topK a small fraction of the corpus, as in production
        # (paper: k=100 of 100M+).  At reduced REPRO_SCALE this clamps k
        # so recall is not dominated by k/n artifacts.
        top_k = min(top_k, max(10, dataset.num_base // 80))
        result = experiment.query(top_k, ef=max(BENCH_EF, 128))
        runs[name] = {
            "dataset": dataset,
            "config": config,
            "experiment": experiment,
            "result": result,
            "top_k": top_k,
        }
    return runs


def test_table8_build_and_query_times(benchmark, realworld_runs, results_dir):
    def collect_rows():
        rows = []
        for name, run in realworld_runs.items():
            dataset = run["dataset"]
            config = run["config"]
            build = run["experiment"].build_metrics
            rows.append(
                {
                    "Dataset": name,
                    "S": config.num_shards,
                    "dim": dataset.dim,
                    "Size": dataset.num_base,
                    "Build s (8 exec)": build.makespan(8),
                    "Build work s": build.total_task_time,
                    "QuerySize": dataset.num_queries,
                    "Query s (8 exec)": run["result"].total_makespan(8),
                }
            )
        return rows

    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    write_table(
        "table8_realworld_times",
        rows,
        title="Table 8 -- Build and query times, real-world-like datasets",
        notes="\n".join(PAPER_ROWS[row["Dataset"]] for row in rows),
    )
    benchmark.extra_info["rows"] = rows

    by_name = {row["Dataset"]: row for row in rows}
    # Every pipeline completed and recorded real work.
    for row in rows:
        assert row["Build s (8 exec)"] > 0
        assert row["Query s (8 exec)"] > 0
    # 2048-d NearDupe costs more build time per vector than 50-d People.
    neardupe_per_vec = (
        by_name["neardupe"]["Build work s"] / by_name["neardupe"]["Size"]
    )
    people_per_vec = (
        by_name["people"]["Build work s"] / by_name["people"]["Size"]
    )
    assert neardupe_per_vec > people_per_vec
