"""Table 7: Groups dataset -- physical vs virtual spill, APD segmenter.

Paper (R@15 and QPS, single shard, APD segmentation):

    Segments  Spill  Phys R@15  Phys QPS  Virt R@15  Virt QPS
    1         0%     0.9458     863       0.9458     863
    4         10%    0.8400     2619      0.8526     2187
    4         30%    0.9268     2392      0.9272     1984
    8         30%    0.9105     2710      0.9112     2573
    16        10%    0.7359     2993      0.7362     3240
    16        30%    0.8836     2797      0.8920     2985

Expected shape: recall rises with spill %, falls with segment count;
QPS rises with segment count; physical and virtual recall are nearly
equal, with physical QPS >= virtual at matched recall (virtual fans the
query out, physical fans the data out).

Spill % is the fraction of queries (or data) routed to both children at
a level, i.e. ``2 * alpha``: 10% -> alpha 0.05, 20% -> 0.10, 30% -> 0.15.

Virtual-spill indices are built once per segment count and re-queried
under each alpha via segmenter swapping (data placement is
alpha-independent under virtual spill); physical-spill placement depends
on alpha, so those are built per cell.
"""

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.data.datasets import load_dataset
from repro.eval.harness import swap_segmenter
from repro.eval.timing import measure_qps
from repro.offline.recall import recall_at_k
from repro.segmenters.learner import learn_segmenter

from benchmarks.conftest import BENCH_EF, BENCH_HNSW, write_table

SEGMENT_COUNTS = [1, 4, 8, 16]
SPILLS = [0.10, 0.20, 0.30]  # fraction routed to both children per level
TOP_K = 15


@pytest.fixture(scope="module")
def groups():
    dataset = load_dataset("groups")
    # Keep the physical-spill build matrix tractable on 2 cores.
    limit = min(dataset.num_base, max(int(5000 * dataset.num_base / 8000), 512))
    dataset.base = dataset.base[:limit]
    dataset._truth_cache.clear()
    return dataset


def run_cell(dataset, index, top_k):
    """Recall@15 + QPS of one built index over the dataset queries."""
    ids = np.full((dataset.num_queries, top_k), -1, dtype=np.int64)

    def one_query(query):
        found, _ = index.query(query, top_k, ef=BENCH_EF)
        return found

    for row, query in enumerate(dataset.queries):
        found = one_query(query)
        ids[row, : len(found)] = found
    stats = measure_qps(lambda q: one_query(q), dataset.queries)
    recall = recall_at_k(ids, dataset.ground_truth(top_k), top_k)
    return recall, stats["qps"]


def test_table7_spill_tradeoff(benchmark, groups, results_dir):
    def run_experiment():
        rows = []
        base_config = LannsConfig(
            num_shards=1,
            num_segments=1,
            segmenter="apd",
            hnsw=BENCH_HNSW,
            segmenter_sample_size=groups.num_base,
            seed=11,
        )
        # Segments = 1: no segmentation, spill is irrelevant.
        single = build_lanns_index(groups.base, config=base_config)
        recall, qps = run_cell(groups, single, TOP_K)
        rows.append(
            {
                "Segments": 1,
                "Spill": "0%",
                "Phys R@15": recall,
                "Phys QPS": qps,
                "Virt R@15": recall,
                "Virt QPS": qps,
            }
        )
        for segments in SEGMENT_COUNTS[1:]:
            # One virtual build per segment count, re-queried per alpha.
            virtual_config = base_config.with_updates(
                num_segments=segments, alpha=0.15, spill_mode="virtual"
            )
            virtual_index = build_lanns_index(
                groups.base, config=virtual_config
            )
            for spill in SPILLS:
                alpha = spill / 2.0
                virtual_segmenter = learn_segmenter(
                    groups.base,
                    "apd",
                    segments,
                    alpha=alpha,
                    spill_mode="virtual",
                    sample_size=groups.num_base,
                    seed=11,
                )
                swapped = swap_segmenter(virtual_index, virtual_segmenter)
                virt_recall, virt_qps = run_cell(groups, swapped, TOP_K)

                physical_config = base_config.with_updates(
                    num_segments=segments,
                    alpha=alpha,
                    spill_mode="physical",
                )
                physical_index = build_lanns_index(
                    groups.base, config=physical_config
                )
                phys_recall, phys_qps = run_cell(
                    groups, physical_index, TOP_K
                )
                rows.append(
                    {
                        "Segments": segments,
                        "Spill": f"{int(spill * 100)}%",
                        "Phys R@15": phys_recall,
                        "Phys QPS": phys_qps,
                        "Virt R@15": virt_recall,
                        "Virt QPS": virt_qps,
                        "Phys vectors": len(physical_index),
                    }
                )
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    write_table(
        "table7_groups_spill",
        rows,
        title=(
            "Table 7 -- Groups-like data (d=256, "
            f"{groups.num_base} base / {groups.num_queries} queries): "
            "physical vs virtual spill, APD segmenter, R@15 + QPS"
        ),
        notes=(
            "Paper shape: recall rises with spill %, falls with segment "
            "count; QPS rises with segment count; physical ~= virtual "
            "recall; physical costs memory ('Phys vectors' column), "
            "virtual costs QPS."
        ),
    )
    benchmark.extra_info["rows"] = rows

    def cell(segments, spill, column):
        for row in rows:
            if row["Segments"] == segments and row["Spill"] == spill:
                return row[column]
        raise KeyError((segments, spill, column))

    # Recall rises with spill at fixed segment count (both modes).
    for segments in (8, 16):
        assert cell(segments, "30%", "Virt R@15") >= cell(
            segments, "10%", "Virt R@15"
        ) - 0.01
        assert cell(segments, "30%", "Phys R@15") >= cell(
            segments, "10%", "Phys R@15"
        ) - 0.01
    # Recall falls as segments grow at fixed spill.
    assert cell(16, "10%", "Virt R@15") <= cell(4, "10%", "Virt R@15") + 0.02
    # Segmentation speeds up queries vs the single-segment index.  Wall
    # QPS on a 2-core host carries heavy run-to-run noise, so the claim
    # is made on the cleanest cell (physical spill, most segments, least
    # duplication: exactly one small segment probed per query) and as a
    # ballpark bound for the noisier cells.
    single_qps = rows[0]["Virt QPS"]
    assert cell(16, "10%", "Phys QPS") > single_qps
    assert max(
        cell(segments, spill, "Phys QPS")
        for segments in (4, 8, 16)
        for spill in ("10%", "20%", "30%")
    ) > single_qps
    assert cell(16, "10%", "Virt QPS") > 0.4 * single_qps
    # Physical and virtual recall agree closely (paper: "comparable").
    for segments in (4, 8, 16):
        for spill in ("10%", "30%"):
            assert abs(
                cell(segments, spill, "Phys R@15")
                - cell(segments, spill, "Virt R@15")
            ) < 0.12
    # Physical spill costs memory.
    assert cell(16, "30%", "Phys vectors") > groups.num_base * 1.5
