"""Remote serving over loopback RPC: parity, throughput, degradation.

This benchmark exercises the full multi-process topology of the paper's
Section 7: it builds and exports an index, spawns one **real searcher
subprocess per shard** (``repro.cli serve-searcher`` over loopback TCP),
fronts them with the broker, and

1. asserts **remote parity** -- ids and distances served through the
   RPC fleet are bit-identical to an in-process fleet serving the same
   exported index;
2. measures sequential and batched QPS through both fleets (the remote
   numbers include real framing + socket round-trips);
3. injects a **failure**: one of the (>= 3) searcher processes is
   SIGKILLed mid-serving, and the broker's ``degrade`` partial-result
   policy must keep answering from the survivors, annotate responses
   with ``shards_answered``, and match the exact merge of the surviving
   shards -- while the ``fail`` policy must raise.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_remote_serving.py
    PYTHONPATH=src python benchmarks/bench_remote_serving.py --smoke

``--smoke`` shrinks the corpus so the whole run (including three
interpreter launches) fits CI; every correctness assertion still runs --
parity and failure semantics are the point, not the QPS figures.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.core.merge import merge_shard_results_batch
from repro.data.synthetic import clustered_gaussians, make_queries
from repro.errors import TransportError
from repro.eval.harness import remote_serving_throughput
from repro.eval.tables import format_table
from repro.hnsw.params import HnswParams
from repro.net.fleet import fleet_addresses, launch_fleet, shutdown_fleet
from repro.online.service import OnlineService
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import save_lanns_index

RESULTS_DIR = Path(__file__).parent / "results"
INDEX_PATH = "bench/remote"


def export_index(args: argparse.Namespace, fs: LocalHdfs):
    base = clustered_gaussians(args.num_base, args.dim, seed=args.seed)
    queries = make_queries(base, args.num_queries, seed=args.seed + 1)
    config = LannsConfig(
        num_shards=args.shards,
        num_segments=args.segments,
        segmenter="rh",
        hnsw=HnswParams(
            M=12, ef_construction=56, ef_search=args.ef, seed=args.seed
        ),
        segmenter_sample_size=min(2000, args.num_base),
        seed=args.seed,
    )
    index = build_lanns_index(base, config=config)
    save_lanns_index(index, fs, INDEX_PATH)
    return config, index, queries


def check_degradation(
    args: argparse.Namespace,
    fs: LocalHdfs,
    index,
    fleet,
    queries: np.ndarray,
) -> dict:
    """Kill one searcher; ``degrade`` keeps serving, ``fail`` raises."""
    addresses = fleet_addresses(fleet)
    degrade = OnlineService(
        searchers=addresses,
        parallel_fanout=True,
        partial_policy="degrade",
        request_timeout_s=args.request_timeout_s,
        rpc_retries=0,
    )
    strict = OnlineService(
        searchers=addresses,
        parallel_fanout=True,
        partial_policy="fail",
        request_timeout_s=args.request_timeout_s,
        rpc_retries=0,
    )
    probe = queries[: min(16, queries.shape[0])]
    try:
        degrade.deploy(fs, INDEX_PATH, index_name="default")
        strict.deploy(fs, INDEX_PATH, index_name="strict")
        ids, _, info = degrade.query_batch(
            probe, args.top_k, ef=args.ef, with_info=True
        )
        assert (info["shards_answered"] == args.shards).all(), (
            "healthy fleet must answer from every shard"
        )

        victim = fleet[1]
        victim.kill()
        got_ids, got_dists, info = degrade.query_batch(
            probe, args.top_k, ef=args.ef, with_info=True
        )
        answered = info["shards_answered"]
        assert (answered == args.shards - 1).all(), (
            f"expected {args.shards - 1} surviving shards, got "
            f"{answered.tolist()}"
        )
        # The degraded answer must be exactly the merge of the
        # surviving shards (same perShardTopK budget, dead rows dropped).
        broker = degrade.brokers["default"]
        budget = broker.per_shard_budget(args.top_k)
        parts = [
            index.shards[shard_id].search_batch(
                probe, budget, ef=args.ef
            )
            for shard_id in range(args.shards)
            if shard_id != victim.shard_id
        ]
        want_ids, want_dists = merge_shard_results_batch(parts, args.top_k)
        assert (got_ids == want_ids).all(), (
            "degraded ids differ from the surviving shards' merge"
        )
        assert (got_dists == want_dists).all(), (
            "degraded distances differ from the surviving shards' merge"
        )

        try:
            strict.query_batch(
                probe, args.top_k, index_name="strict", ef=args.ef
            )
        except TransportError:
            strict_raised = True
        else:
            strict_raised = False
        assert strict_raised, (
            "the fail policy must raise when a searcher is dead"
        )
        stats = broker.stats()["partial"]
        return {
            "killed_shard": victim.shard_id,
            "shards_answered": int(answered[0]),
            "degraded_batches": stats["degraded_batches"],
            "shard_failures": stats["shard_failures"],
        }
    finally:
        degrade.close()
        strict.close()


def run(args: argparse.Namespace) -> int:
    workdir = tempfile.mkdtemp(prefix="lanns-remote-bench-")
    fleet = []
    try:
        fs = LocalHdfs(workdir)
        config, index, queries = export_index(args, fs)
        print(
            f"corpus: {args.num_base} x {args.dim}, {args.shards} shard(s) "
            f"x {args.segments} segment(s), {queries.shape[0]} queries, "
            f"top_k={args.top_k}, ef={args.ef}"
        )
        fleet = launch_fleet(args.shards, root=workdir)
        print(
            "fleet: "
            + ", ".join(
                f"shard {member.shard_id} @ {member.address} "
                f"(pid {member.process.pid})"
                for member in fleet
            )
        )
        report = remote_serving_throughput(
            fs,
            INDEX_PATH,
            queries,
            args.top_k,
            addresses=fleet_addresses(fleet),
            ef=args.ef,
            batch_size=args.batch_size,
            request_timeout_s=args.request_timeout_s,
        )
        print(
            "parity: remote fleet results bit-identical to in-process ✓"
        )
        rows = [
            {
                "mode": "in-process fleet (batched)",
                "qps": report["local"]["qps"],
            },
            {
                "mode": "remote fleet (sequential RPC)",
                "qps": report["remote_sequential"]["qps"],
            },
            {
                "mode": f"remote fleet (batched x{args.batch_size})",
                "qps": report["remote_batched"]["qps"],
            },
        ]
        text = format_table(
            rows,
            title=(
                "Remote serving over loopback RPC "
                f"({args.shards} searcher subprocesses)"
            ),
        )
        print("\n" + text + "\n")

        degradation = check_degradation(args, fs, index, fleet, queries)
        print(
            f"degradation: killed shard {degradation['killed_shard']}; "
            f"degrade policy answered from "
            f"{degradation['shards_answered']}/{args.shards} shards "
            "(exact merge of survivors ✓), fail policy raised ✓"
        )
        if args.smoke:
            print("smoke OK (parity + degradation asserted)")
            return 0
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": "remote_serving",
            "shards": args.shards,
            "rows": rows,
            "remote_stats": report["remote_stats"]["stages"],
            "degradation": degradation,
        }
        (RESULTS_DIR / "remote_serving.json").write_text(
            json.dumps(payload, indent=2), encoding="utf-8"
        )
        (RESULTS_DIR / "remote_serving.txt").write_text(
            text + "\n", encoding="utf-8"
        )
        print("OK: remote parity + degrade/fail semantics hold")
        return 0
    finally:
        shutdown_fleet(fleet)
        shutil.rmtree(workdir, ignore_errors=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=(
            "Serve through real searcher subprocesses over loopback RPC"
        )
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI; all correctness assertions still run",
    )
    parser.add_argument("--num-base", type=int, default=6000)
    parser.add_argument("--num-queries", type=int, default=128)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument(
        "--shards",
        type=int,
        default=3,
        help="searcher subprocesses (>= 3 so the kill test has survivors)",
    )
    parser.add_argument("--segments", type=int, default=2)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--ef", type=int, default=48)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument(
        "--request-timeout-s",
        type=float,
        default=30.0,
        help="per-request fan-out deadline",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.shards < 3:
        parser.error("--shards must be >= 3 (the kill test needs survivors)")
    if args.num_base <= 0 or args.num_queries <= 0 or args.dim <= 0:
        parser.error("--num-base, --num-queries and --dim must be positive")
    if args.smoke:
        args.num_base = min(args.num_base, 1200)
        args.num_queries = min(args.num_queries, 32)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
