"""Remote serving over loopback RPC: parity, throughput, degradation.

This benchmark exercises the full multi-process topology of the paper's
Section 7: it builds and exports an index, spawns one **real searcher
subprocess per shard** (``repro.cli serve-searcher`` over loopback TCP),
fronts them with the broker, and

1. asserts **remote parity** -- ids and distances served through the
   RPC fleet are bit-identical to an in-process fleet serving the same
   exported index;
2. measures sequential and batched QPS through both fleets (the remote
   numbers include real framing + socket round-trips);
3. injects a **failure**: one of the (>= 3) searcher processes is
   SIGKILLed mid-serving, and the broker's ``degrade`` partial-result
   policy must keep answering from the survivors, annotate responses
   with ``shards_answered``, and match the exact merge of the surviving
   shards -- while the ``fail`` policy must raise;
4. injects a **straggler**: a fresh fleet where one searcher stalls
   every other request, served through the asyncio fan-out without and
   with hedged requests -- hedged p99 must beat unhedged p99, results
   must stay bit-identical to in-process serving, and the fan-out must
   hold all in-flight shard RPCs with O(1) threads (no pool thread per
   RPC).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_remote_serving.py
    PYTHONPATH=src python benchmarks/bench_remote_serving.py --smoke

``--smoke`` shrinks the corpus so the whole run (including three
interpreter launches) fits CI; every correctness assertion still runs --
parity and failure semantics are the point, not the QPS figures.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.core.merge import merge_shard_results_batch
from repro.data.synthetic import clustered_gaussians, make_queries
from repro.errors import TransportError
from repro.eval.harness import remote_serving_throughput
from repro.eval.tables import format_table
from repro.hnsw.params import HnswParams
from repro.net.fleet import fleet_addresses, launch_fleet, shutdown_fleet
from repro.online.service import OnlineService
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import save_lanns_index

RESULTS_DIR = Path(__file__).parent / "results"
INDEX_PATH = "bench/remote"


def export_index(args: argparse.Namespace, fs: LocalHdfs):
    base = clustered_gaussians(args.num_base, args.dim, seed=args.seed)
    queries = make_queries(base, args.num_queries, seed=args.seed + 1)
    config = LannsConfig(
        num_shards=args.shards,
        num_segments=args.segments,
        segmenter="rh",
        hnsw=HnswParams(
            M=12, ef_construction=56, ef_search=args.ef, seed=args.seed
        ),
        segmenter_sample_size=min(2000, args.num_base),
        seed=args.seed,
    )
    index = build_lanns_index(base, config=config)
    save_lanns_index(index, fs, INDEX_PATH)
    return config, index, queries


def check_degradation(
    args: argparse.Namespace,
    fs: LocalHdfs,
    index,
    fleet,
    queries: np.ndarray,
) -> dict:
    """Kill one searcher; ``degrade`` keeps serving, ``fail`` raises."""
    addresses = fleet_addresses(fleet)
    degrade = OnlineService(
        searchers=addresses,
        parallel_fanout=True,
        partial_policy="degrade",
        request_timeout_s=args.request_timeout_s,
        rpc_retries=0,
    )
    strict = OnlineService(
        searchers=addresses,
        parallel_fanout=True,
        partial_policy="fail",
        request_timeout_s=args.request_timeout_s,
        rpc_retries=0,
    )
    probe = queries[: min(16, queries.shape[0])]
    try:
        degrade.deploy(fs, INDEX_PATH, index_name="default")
        strict.deploy(fs, INDEX_PATH, index_name="strict")
        ids, _, info = degrade.query_batch(
            probe, args.top_k, ef=args.ef, with_info=True
        )
        assert (info["shards_answered"] == args.shards).all(), (
            "healthy fleet must answer from every shard"
        )

        victim = fleet[1]
        victim.kill()
        got_ids, got_dists, info = degrade.query_batch(
            probe, args.top_k, ef=args.ef, with_info=True
        )
        answered = info["shards_answered"]
        assert (answered == args.shards - 1).all(), (
            f"expected {args.shards - 1} surviving shards, got "
            f"{answered.tolist()}"
        )
        # The degraded answer must be exactly the merge of the
        # surviving shards (same perShardTopK budget, dead rows dropped).
        broker = degrade.brokers["default"]
        budget = broker.per_shard_budget(args.top_k)
        parts = [
            index.shards[shard_id].search_batch(
                probe, budget, ef=args.ef
            )
            for shard_id in range(args.shards)
            if shard_id != victim.shard_id
        ]
        want_ids, want_dists = merge_shard_results_batch(parts, args.top_k)
        assert (got_ids == want_ids).all(), (
            "degraded ids differ from the surviving shards' merge"
        )
        assert (got_dists == want_dists).all(), (
            "degraded distances differ from the surviving shards' merge"
        )

        try:
            strict.query_batch(
                probe, args.top_k, index_name="strict", ef=args.ef
            )
        except TransportError:
            strict_raised = True
        else:
            strict_raised = False
        assert strict_raised, (
            "the fail policy must raise when a searcher is dead"
        )
        stats = broker.stats()["partial"]
        return {
            "killed_shard": victim.shard_id,
            "shards_answered": int(answered[0]),
            "degraded_batches": stats["degraded_batches"],
            "shard_failures": stats["shard_failures"],
        }
    finally:
        degrade.close()
        strict.close()


def check_hedging(
    args: argparse.Namespace, fs: LocalHdfs, queries: np.ndarray
) -> dict:
    """Slow-shard scenario: hedged tail latency must beat unhedged.

    Launches a fresh 3-searcher fleet with ONE straggler (shard 1 stalls
    every other SEARCH by ``--slow-delay-s``, modelling per-request
    pauses rather than a uniformly slow machine), then serves the query
    set through two asyncio fan-out services -- without and with hedging
    -- asserting in-run that

    - every answer (ids AND distances) is bit-identical to in-process
      serving under both modes (hedging may change *when* an answer
      arrives, never *what* it is);
    - hedged p99 latency is strictly below unhedged p99 (the whole point
      of re-issuing a straggling RPC);
    - the async fan-out held N in-flight shard RPCs with O(1) threads:
      no ``broker-fanout`` pool thread exists, just one
      ``broker-async-loop`` thread per broker.
    """
    probe = queries[: min(32, queries.shape[0])]
    fleet = launch_fleet(
        args.shards,
        root=str(fs.root),
        slow_shard=1,
        slow_every=2,
        slow_delay_s=args.slow_delay_s,
    )
    local = OnlineService()
    unhedged = OnlineService(
        searchers=fleet_addresses(fleet),
        async_fanout=True,
        request_timeout_s=args.request_timeout_s,
    )
    hedged = OnlineService(
        searchers=fleet_addresses(fleet),
        async_fanout=True,
        hedge_after_s=args.hedge_after_s,
        request_timeout_s=args.request_timeout_s,
    )
    try:
        local.deploy(fs, INDEX_PATH, index_name="default")
        want_ids, want_dists = local.query_batch(probe, args.top_k, ef=args.ef)

        def serve(service: OnlineService, label: str) -> np.ndarray:
            latencies = np.empty(probe.shape[0], dtype=np.float64)
            for row in range(probe.shape[0]):
                tick = time.perf_counter()
                ids, dists = service.query_batch(
                    probe[row : row + 1], args.top_k, ef=args.ef
                )
                latencies[row] = time.perf_counter() - tick
                if not (
                    (ids == want_ids[row : row + 1]).all()
                    and (dists == want_dists[row : row + 1]).all()
                ):
                    raise AssertionError(
                        f"{label} remote result differs from in-process "
                        f"serving at query {row}"
                    )
            return latencies

        unhedged.deploy(fs, INDEX_PATH, index_name="default")
        unhedged_lat = serve(unhedged, "unhedged")
        unhedged.undeploy("default")
        hedged.deploy(fs, INDEX_PATH, index_name="default")
        hedged_lat = serve(hedged, "hedged")
        stats = hedged.brokers["default"].stats()
        hedged.undeploy("default")

        unhedged_p99 = float(np.quantile(unhedged_lat, 0.99) * 1e3)
        hedged_p99 = float(np.quantile(hedged_lat, 0.99) * 1e3)
        if not hedged_p99 < unhedged_p99:
            raise AssertionError(
                f"hedged p99 {hedged_p99:.1f}ms is not below unhedged "
                f"p99 {unhedged_p99:.1f}ms with an injected straggler"
            )
        if stats["hedges"] < 1:
            raise AssertionError("the straggler shard never got hedged")
        if not stats["async_fanout"] or stats["fanout_workers"] != 0:
            raise AssertionError("async fan-out did not run loop-native")
        pool_threads = [
            thread.name
            for thread in threading.enumerate()
            if thread.name.startswith("broker-fanout")
        ]
        if pool_threads:
            raise AssertionError(
                f"async fan-out must not burn pool threads per RPC, "
                f"found {pool_threads}"
            )
        return {
            "slow_delay_ms": args.slow_delay_s * 1e3,
            "hedge_after_ms": args.hedge_after_s * 1e3,
            "unhedged_p99_ms": unhedged_p99,
            "hedged_p99_ms": hedged_p99,
            "hedges": stats["hedges"],
            "hedge_wins": stats["hedge_wins"],
        }
    finally:
        local.close()
        unhedged.close()
        hedged.close()
        shutdown_fleet(fleet)


def run(args: argparse.Namespace) -> int:
    workdir = tempfile.mkdtemp(prefix="lanns-remote-bench-")
    fleet = []
    try:
        fs = LocalHdfs(workdir)
        config, index, queries = export_index(args, fs)
        print(
            f"corpus: {args.num_base} x {args.dim}, {args.shards} shard(s) "
            f"x {args.segments} segment(s), {queries.shape[0]} queries, "
            f"top_k={args.top_k}, ef={args.ef}"
        )
        fleet = launch_fleet(args.shards, root=workdir)
        print(
            "fleet: "
            + ", ".join(
                f"shard {member.shard_id} @ {member.address} "
                f"(pid {member.process.pid})"
                for member in fleet
            )
        )
        report = remote_serving_throughput(
            fs,
            INDEX_PATH,
            queries,
            args.top_k,
            addresses=fleet_addresses(fleet),
            ef=args.ef,
            batch_size=args.batch_size,
            request_timeout_s=args.request_timeout_s,
        )
        print(
            "parity: remote fleet results bit-identical to in-process ✓"
        )
        rows = [
            {
                "mode": "in-process fleet (batched)",
                "qps": report["local"]["qps"],
            },
            {
                "mode": "remote fleet (sequential RPC)",
                "qps": report["remote_sequential"]["qps"],
            },
            {
                "mode": f"remote fleet (batched x{args.batch_size})",
                "qps": report["remote_batched"]["qps"],
            },
        ]
        text = format_table(
            rows,
            title=(
                "Remote serving over loopback RPC "
                f"({args.shards} searcher subprocesses)"
            ),
        )
        print("\n" + text + "\n")

        degradation = check_degradation(args, fs, index, fleet, queries)
        print(
            f"degradation: killed shard {degradation['killed_shard']}; "
            f"degrade policy answered from "
            f"{degradation['shards_answered']}/{args.shards} shards "
            "(exact merge of survivors ✓), fail policy raised ✓"
        )

        hedging = check_hedging(args, fs, queries)
        print(
            f"hedging: straggler stalls {hedging['slow_delay_ms']:.0f}ms, "
            f"hedge after {hedging['hedge_after_ms']:.0f}ms -> p99 "
            f"{hedging['unhedged_p99_ms']:.1f}ms unhedged vs "
            f"{hedging['hedged_p99_ms']:.1f}ms hedged "
            f"({hedging['hedges']} hedges, {hedging['hedge_wins']} wins; "
            "bit-parity ✓, O(1) fan-out threads ✓)"
        )
        if args.smoke:
            print("smoke OK (parity + degradation + hedging asserted)")
            return 0
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": "remote_serving",
            "shards": args.shards,
            "rows": rows,
            "remote_stats": report["remote_stats"]["stages"],
            "degradation": degradation,
            "hedging": hedging,
        }
        (RESULTS_DIR / "remote_serving.json").write_text(
            json.dumps(payload, indent=2), encoding="utf-8"
        )
        (RESULTS_DIR / "remote_serving.txt").write_text(
            text + "\n", encoding="utf-8"
        )
        print("OK: remote parity + degrade/fail semantics hold")
        return 0
    finally:
        shutdown_fleet(fleet)
        shutil.rmtree(workdir, ignore_errors=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=(
            "Serve through real searcher subprocesses over loopback RPC"
        )
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI; all correctness assertions still run",
    )
    parser.add_argument("--num-base", type=int, default=6000)
    parser.add_argument("--num-queries", type=int, default=128)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument(
        "--shards",
        type=int,
        default=3,
        help="searcher subprocesses (>= 3 so the kill test has survivors)",
    )
    parser.add_argument("--segments", type=int, default=2)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--ef", type=int, default=48)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument(
        "--request-timeout-s",
        type=float,
        default=30.0,
        help="per-request fan-out deadline",
    )
    parser.add_argument(
        "--hedge-after-s",
        type=float,
        default=0.05,
        help="hedge delay for the slow-shard scenario",
    )
    parser.add_argument(
        "--slow-delay-s",
        type=float,
        default=0.25,
        help="injected straggler stall for the slow-shard scenario",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.shards < 3:
        parser.error("--shards must be >= 3 (the kill test needs survivors)")
    if args.num_base <= 0 or args.num_queries <= 0 or args.dim <= 0:
        parser.error("--num-base, --num-queries and --dim must be positive")
    if args.hedge_after_s <= 0 or args.slow_delay_s <= 0:
        parser.error("--hedge-after-s and --slow-delay-s must be positive")
    if args.hedge_after_s >= args.slow_delay_s:
        parser.error(
            "--hedge-after-s must be below --slow-delay-s or the "
            "straggler scenario cannot show a hedging win"
        )
    if args.smoke:
        args.num_base = min(args.num_base, 1200)
        args.num_queries = min(args.num_queries, 32)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
