"""Overload and fault tolerance: admission control under a 4x burst.

This benchmark saturates a real searcher subprocess and asserts that the
serving tier degrades the way PR 10 promises instead of collapsing:

1. **baseline** -- a single closed-loop client measures unloaded QPS and
   latency against a searcher whose admission knobs are live
   (``--max-in-flight`` / ``--queue-cap``) and whose per-request service
   time is pinned by straggler injection, so the capacity math is known;
2. **burst** -- 4x the searcher's concurrency capacity in client threads
   offer load simultaneously.  In-run assertions: the searcher sheds the
   surplus with structured ``OVERLOADED`` error frames (>= 90% of all
   rejected work, i.e. clients learn about overload instantly instead of
   burning their deadline), every admitted request returns bit-identical
   ids AND distances to the unloaded path, and admitted p99 stays inside
   the bound implied by the queue depth (a bounded queue is the whole
   point -- latency cannot grow past ``queue_cap`` service times);
3. **recovery** -- once the burst stops, the same closed-loop measurement
   must recover to >= 0.95x baseline QPS (shedding must leave no debris:
   no wedged slots, no leaked connections);
4. **chaos reproducibility** -- two fresh searchers launched with the
   same ``--chaos-spec`` (seeded :class:`~repro.net.chaos.FaultPlan`)
   are driven with the same request sequence; the per-request outcome
   sequences (ok/reset/overloaded, including returned ids) and the
   servers' fault counters must be *identical* -- chaos runs are
   replayable, so a chaos-found bug is a debuggable bug.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_overload.py
    PYTHONPATH=src python benchmarks/bench_overload.py --smoke

``--smoke`` shrinks the corpus and burst so the run fits CI; every
correctness assertion still runs -- shed semantics, bit-parity under
load, recovery, and chaos determinism are the point, not the QPS.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.data.synthetic import clustered_gaussians, make_queries
from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    OverloadedError,
)
from repro.eval.tables import format_table
from repro.hnsw.params import HnswParams
from repro.net.client import RemoteSearcherClient
from repro.net.fleet import launch_searcher, shutdown_fleet
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import save_lanns_index

RESULTS_DIR = Path(__file__).parent / "results"
INDEX_PATH = "bench/overload"
INDEX_NAME = "default"


def export_index(args: argparse.Namespace, fs: LocalHdfs):
    base = clustered_gaussians(args.num_base, args.dim, seed=args.seed)
    queries = make_queries(base, args.num_queries, seed=args.seed + 1)
    config = LannsConfig(
        num_shards=1,
        num_segments=args.segments,
        segmenter="rh",
        hnsw=HnswParams(
            M=12, ef_construction=56, ef_search=args.ef, seed=args.seed
        ),
        segmenter_sample_size=min(2000, args.num_base),
        seed=args.seed,
    )
    index = build_lanns_index(base, config=config)
    save_lanns_index(index, fs, INDEX_PATH)
    return config, index, queries


def measure_closed_loop(
    client: RemoteSearcherClient, probe: np.ndarray, args: argparse.Namespace
) -> dict:
    """Sequential single-client load: QPS + latency, no queueing."""
    latencies = np.empty(args.measure_requests, dtype=np.float64)
    tick = time.perf_counter()
    for request in range(args.measure_requests):
        row = request % probe.shape[0]
        start = time.perf_counter()
        client.search_batch(
            INDEX_NAME, probe[row : row + 1], args.top_k, ef=args.ef
        )
        latencies[request] = time.perf_counter() - start
    elapsed = time.perf_counter() - tick
    return {
        "qps": args.measure_requests / elapsed,
        "p50_ms": float(np.quantile(latencies, 0.5) * 1e3),
        "p99_ms": float(np.quantile(latencies, 0.99) * 1e3),
        "mean_s": elapsed / args.measure_requests,
    }


def run_burst(
    args: argparse.Namespace,
    address: str,
    probe: np.ndarray,
    expected_ids: np.ndarray,
    expected_dists: np.ndarray,
) -> dict:
    """Offer 4x the searcher's concurrency capacity; tally every outcome.

    Each worker is its own closed loop with its own client (no shared
    connection pool -- the point is many *independent* brokers hitting
    one searcher).  On ``OVERLOADED`` the worker honors the server's
    retry-after hint, exactly as a broker would.
    """
    capacity = args.max_in_flight + args.queue_cap
    workers = 4 * capacity
    results = [
        {"ok": 0, "overloaded": 0, "deadline": 0, "mismatches": 0,
         "latencies": []}
        for _ in range(workers)
    ]
    stop_at = time.monotonic() + args.burst_s

    def worker(slot: int) -> None:
        tally = results[slot]
        client = RemoteSearcherClient(
            address,
            retries=0,
            timeout_s=args.request_timeout_s,
            pool_size=1,
            backoff_seed=slot,
        )
        try:
            row = slot % probe.shape[0]
            while time.monotonic() < stop_at:
                deadline = time.monotonic() + args.request_timeout_s
                start = time.perf_counter()
                try:
                    ids, dists = client.search_batch(
                        INDEX_NAME,
                        probe[row : row + 1],
                        args.top_k,
                        ef=args.ef,
                        deadline=deadline,
                    )
                except OverloadedError as exc:
                    tally["overloaded"] += 1
                    hint = exc.retry_after_s
                    time.sleep(hint if hint is not None else 0.01)
                except DeadlineExceededError:
                    tally["deadline"] += 1
                else:
                    tally["ok"] += 1
                    tally["latencies"].append(time.perf_counter() - start)
                    if not (
                        (ids == expected_ids[row : row + 1]).all()
                        and (dists == expected_dists[row : row + 1]).all()
                    ):
                        tally["mismatches"] += 1
                row = (row + 1) % probe.shape[0]
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(slot,), name=f"burst-{slot}")
        for slot in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    ok = sum(tally["ok"] for tally in results)
    overloaded = sum(tally["overloaded"] for tally in results)
    deadline = sum(tally["deadline"] for tally in results)
    mismatches = sum(tally["mismatches"] for tally in results)
    latencies = np.array(
        [lat for tally in results for lat in tally["latencies"]],
        dtype=np.float64,
    )
    return {
        "workers": workers,
        "ok": ok,
        "overloaded": overloaded,
        "deadline": deadline,
        "mismatches": mismatches,
        "admitted_p99_ms": (
            float(np.quantile(latencies, 0.99) * 1e3) if ok else float("nan")
        ),
    }


def assert_burst_semantics(
    args: argparse.Namespace, burst: dict, baseline: dict
) -> None:
    rejected = burst["overloaded"] + burst["deadline"]
    if burst["ok"] < 1:
        raise AssertionError("no request was admitted during the burst")
    if burst["overloaded"] < 1:
        raise AssertionError(
            "a 4x burst against a capacity-2 searcher never got shed -- "
            "admission control is not engaging"
        )
    shed_ratio = burst["overloaded"] / rejected
    if shed_ratio < 0.9:
        raise AssertionError(
            f"only {shed_ratio:.1%} of rejected work was shed via "
            f"OVERLOADED ({burst['overloaded']} shed vs "
            f"{burst['deadline']} deadline timeouts); overload must be "
            "signalled instantly, not discovered by expiry"
        )
    if burst["mismatches"]:
        raise AssertionError(
            f"{burst['mismatches']} admitted requests returned results "
            "that differ from the unloaded path -- load must never "
            "change answers"
        )
    # A bounded queue bounds latency: an admitted request waits behind
    # at most queue_cap others across max_in_flight slots, so its p99
    # cannot exceed ~(1 + queue_cap/max_in_flight) service times (with
    # generous slack for scheduler noise on a loaded CI box).
    bound_ms = (
        args.p99_slack
        * baseline["mean_s"]
        * (1.0 + args.queue_cap / args.max_in_flight)
        * 1e3
    )
    if burst["admitted_p99_ms"] > bound_ms:
        raise AssertionError(
            f"admitted p99 {burst['admitted_p99_ms']:.1f}ms exceeds the "
            f"queue-depth bound {bound_ms:.1f}ms -- the queue cap is not "
            "containing latency"
        )


def check_chaos_repro(
    args: argparse.Namespace, fs: LocalHdfs, probe: np.ndarray
) -> dict:
    """Two fresh searchers, same chaos seed, same requests => same run."""
    spec = (
        f"seed={args.chaos_seed},delay_rate=0.15,delay_s=0.02,"
        "reset_rate=0.15,overload_rate=0.2"
    )
    runs = []
    snapshots = []
    for _ in range(2):
        member = launch_searcher(
            0, root=str(fs.root), chaos_spec=spec,
            retry_after_s=args.retry_after_s,
        )
        client = RemoteSearcherClient(
            member.address, retries=0, timeout_s=10.0, pool_size=1
        )
        try:
            client.deploy(INDEX_NAME, INDEX_PATH)
            outcomes = []
            for request in range(args.chaos_requests):
                row = request % probe.shape[0]
                try:
                    ids, _ = client.search_batch(
                        INDEX_NAME, probe[row : row + 1], args.top_k,
                        ef=args.ef,
                    )
                except OverloadedError:
                    outcomes.append("overloaded")
                except ConnectionLostError:
                    outcomes.append("reset")
                else:
                    outcomes.append("ok:" + ",".join(map(str, ids[0])))
            snapshot = client.stats()["chaos"]
            runs.append(outcomes)
            snapshots.append(snapshot)
        finally:
            client.close()
            shutdown_fleet([member])
    if runs[0] != runs[1]:
        diverged = next(
            request
            for request, (first, second) in enumerate(zip(runs[0], runs[1]))
            if first != second
        )
        raise AssertionError(
            f"chaos runs with seed {args.chaos_seed} diverged at request "
            f"{diverged}: {runs[0][diverged]!r} vs {runs[1][diverged]!r}"
        )
    if snapshots[0] != snapshots[1]:
        raise AssertionError(
            f"chaos fault counters diverged between identical runs: "
            f"{snapshots[0]} vs {snapshots[1]}"
        )
    injected = snapshots[0]["injected"]
    if not any(injected.values()):
        raise AssertionError(
            f"chaos spec {spec!r} injected no faults over "
            f"{args.chaos_requests} requests -- the scenario is vacuous"
        )
    return {"spec": spec, "requests": args.chaos_requests, **snapshots[0]}


def run(args: argparse.Namespace) -> int:
    workdir = tempfile.mkdtemp(prefix="lanns-overload-bench-")
    fleet = []
    try:
        fs = LocalHdfs(workdir)
        _, index, queries = export_index(args, fs)
        probe = np.ascontiguousarray(
            queries[: min(16, queries.shape[0])], dtype=np.float32
        )
        expected_ids, expected_dists = index.shards[0].search_batch(
            probe, args.top_k, ef=args.ef
        )
        print(
            f"corpus: {args.num_base} x {args.dim}, 1 shard, "
            f"admission max_in_flight={args.max_in_flight} "
            f"queue_cap={args.queue_cap}, "
            f"service time ~{args.service_delay_s * 1e3:.0f}ms/request"
        )
        # Straggler injection on EVERY request pins the service time, so
        # capacity (= max_in_flight / service) is known and a 4x burst
        # is actually 4x.
        member = launch_searcher(
            0,
            root=workdir,
            slow_every=1,
            slow_delay_s=args.service_delay_s,
            max_in_flight=args.max_in_flight,
            queue_cap=args.queue_cap,
            retry_after_s=args.retry_after_s,
        )
        fleet = [member]
        control = RemoteSearcherClient(
            member.address, retries=0, timeout_s=30.0
        )
        try:
            control.deploy(INDEX_NAME, INDEX_PATH)
            baseline = measure_closed_loop(control, probe, args)
            burst = run_burst(
                args, member.address, probe, expected_ids, expected_dists
            )
            assert_burst_semantics(args, burst, baseline)
            recovery = measure_closed_loop(control, probe, args)
            if recovery["qps"] < 0.95 * baseline["qps"]:
                raise AssertionError(
                    f"post-burst QPS {recovery['qps']:.1f} fell below "
                    f"0.95x baseline {baseline['qps']:.1f} -- shedding "
                    "left the searcher degraded"
                )
            stats = control.stats()["admission"]
            if stats["searches_shed"] < burst["overloaded"]:
                raise AssertionError(
                    f"server counted {stats['searches_shed']} sheds but "
                    f"clients observed {burst['overloaded']} OVERLOADED "
                    "errors"
                )
        finally:
            control.close()
        shutdown_fleet(fleet)
        fleet = []

        rejected = burst["overloaded"] + burst["deadline"]
        rows = [
            {"phase": "baseline (closed loop)", "qps": baseline["qps"],
             "p99_ms": baseline["p99_ms"]},
            {"phase": f"burst ({burst['workers']} workers, admitted)",
             "qps": float("nan"), "p99_ms": burst["admitted_p99_ms"]},
            {"phase": "recovery (closed loop)", "qps": recovery["qps"],
             "p99_ms": recovery["p99_ms"]},
        ]
        text = format_table(
            rows, title="Overload burst against one admission-bounded searcher"
        )
        print("\n" + text + "\n")
        print(
            f"burst: {burst['ok']} admitted, {burst['overloaded']} shed "
            f"via OVERLOADED, {burst['deadline']} deadline timeouts "
            f"({burst['overloaded'] / rejected:.1%} of rejections shed "
            "structurally ✓, bit-parity under load ✓)"
        )
        print(
            f"recovery: {recovery['qps']:.1f} QPS vs baseline "
            f"{baseline['qps']:.1f} QPS "
            f"({recovery['qps'] / baseline['qps']:.2f}x ✓)"
        )

        chaos = check_chaos_repro(args, fs, probe)
        print(
            f"chaos: seed {args.chaos_seed} x {chaos['requests']} requests "
            f"-> injected {chaos['injected']} twice, outcome sequences "
            "identical ✓"
        )
        if args.smoke:
            print("smoke OK (shed semantics + parity + recovery + chaos)")
            return 0
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": "overload",
            "admission": {
                "max_in_flight": args.max_in_flight,
                "queue_cap": args.queue_cap,
                "retry_after_s": args.retry_after_s,
            },
            "baseline": baseline,
            "burst": burst,
            "recovery": recovery,
            "chaos": chaos,
        }
        (RESULTS_DIR / "overload.json").write_text(
            json.dumps(payload, indent=2), encoding="utf-8"
        )
        (RESULTS_DIR / "overload.txt").write_text(
            text + "\n", encoding="utf-8"
        )
        print("OK: overload shed + recovery + chaos reproducibility hold")
        return 0
    finally:
        shutdown_fleet(fleet)
        shutil.rmtree(workdir, ignore_errors=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=(
            "Saturate an admission-bounded searcher; assert shed "
            "semantics, bit-parity, recovery, and chaos reproducibility"
        )
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI; all correctness assertions still run",
    )
    parser.add_argument("--num-base", type=int, default=4000)
    parser.add_argument("--num-queries", type=int, default=64)
    parser.add_argument("--dim", type=int, default=24)
    parser.add_argument("--segments", type=int, default=2)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--ef", type=int, default=48)
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=2,
        help="searcher admission: concurrent search slots",
    )
    parser.add_argument(
        "--queue-cap",
        type=int,
        default=2,
        help="searcher admission: waiters beyond the in-flight slots",
    )
    parser.add_argument(
        "--retry-after-s",
        type=float,
        default=0.05,
        help="backoff hint shipped in OVERLOADED error frames",
    )
    parser.add_argument(
        "--service-delay-s",
        type=float,
        default=0.02,
        help="injected per-request service time (pins the capacity math)",
    )
    parser.add_argument(
        "--burst-s",
        type=float,
        default=2.0,
        help="duration of the 4x overload burst",
    )
    parser.add_argument(
        "--measure-requests",
        type=int,
        default=40,
        help="closed-loop requests per baseline/recovery measurement",
    )
    parser.add_argument(
        "--request-timeout-s",
        type=float,
        default=10.0,
        help="per-request client deadline during the burst",
    )
    parser.add_argument(
        "--p99-slack",
        type=float,
        default=5.0,
        help="slack factor on the queue-depth latency bound",
    )
    parser.add_argument("--chaos-seed", type=int, default=42)
    parser.add_argument(
        "--chaos-requests",
        type=int,
        default=60,
        help="requests per run of the chaos reproducibility check",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.num_base <= 0 or args.num_queries <= 0 or args.dim <= 0:
        parser.error("--num-base, --num-queries and --dim must be positive")
    if args.max_in_flight < 1 or args.queue_cap < 0:
        parser.error("--max-in-flight must be >= 1, --queue-cap >= 0")
    if args.service_delay_s <= 0 or args.burst_s <= 0:
        parser.error("--service-delay-s and --burst-s must be positive")
    if args.smoke:
        args.num_base = min(args.num_base, 1200)
        args.num_queries = min(args.num_queries, 32)
        args.burst_s = min(args.burst_s, 1.0)
        args.measure_requests = min(args.measure_requests, 24)
        args.chaos_requests = min(args.chaos_requests, 40)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
