"""Table 5: GIST1M build times with varying executor counts.

Paper (minutes for 1M points, d=960): HNSW 577; RS 132/96/48,
RH 128/108/54, APD 140/106/52 for 2/4/8 executors -- a ~4.5x speedup at
2 executors and ~11x at 8.  Same makespan model as Table 2.
"""

from benchmarks.conftest import EXECUTOR_SWEEP, write_table


def test_table5_gist_build_times(benchmark, gist_sweep, results_dir):
    sweep = gist_sweep

    def collect_rows():
        rows = []
        for executors in EXECUTOR_SWEEP:
            row = {"Executors": executors}
            row["HNSW"] = (
                sweep.hnsw_build_seconds if executors == 2 else None
            )
            for segmenter in ("RS", "RH", "APD"):
                row[segmenter] = sweep.build_makespan(
                    f"{segmenter}(1,8)", executors
                )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    write_table(
        "table5_gist_build_times",
        rows,
        title=(
            "Table 5 -- Build time (seconds) on GIST1M-like data (d=960), "
            "(1,8)-partitioning, simulated E-executor makespan"
        ),
        notes=(
            "Paper, minutes at 1M scale: HNSW 577 | RS 132/96/48 | "
            "RH 128/108/54 | APD 140/106/52 for 2/4/8 executors."
        ),
    )
    benchmark.extra_info["rows"] = rows

    by_executors = {row["Executors"]: row for row in rows}
    assert by_executors[2]["RS"] < sweep.hnsw_build_seconds * 0.8
    for segmenter in ("RS", "RH", "APD"):
        assert by_executors[8][segmenter] <= by_executors[2][segmenter]
