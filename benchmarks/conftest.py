"""Shared machinery for the benchmark suite.

Every benchmark regenerates one table or figure of the LANNS paper and
writes it to ``benchmarks/results/<exp>.txt`` (+ ``.json``).  Expensive
artifacts (built indices, query sweeps) are session-scoped fixtures so
Tables 1/2/3 (and 4/5/6) share one SIFT (GIST) sweep.

Scaling: dataset sizes default to the registry's scaled-down sizes
(~10k/4k/8k vectors); set ``REPRO_SCALE`` to grow them.  Absolute times
are *not* comparable to the paper (pure-Python kernels, 2 cores);
DESIGN.md documents why the shapes still are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.core.config import LannsConfig
from repro.data.datasets import Dataset, load_dataset
from repro.eval.harness import (
    SegmentedExperiment,
    build_partitioned,
    evaluate_recall,
)
from repro.eval.tables import write_result_table
from repro.hnsw.index import build_hnsw
from repro.hnsw.params import HnswParams
from repro.offline.querying import QueryJobResult
from repro.sparklite.cluster import LocalCluster
from repro.storage.hdfs import LocalHdfs

RESULTS_DIR = Path(__file__).parent / "results"

#: HNSW settings shared by all benchmarks (kept modest for 2-core hosts).
BENCH_HNSW = HnswParams(M=12, ef_construction=56, ef_search=64, seed=0)
#: Query beam width used in all recall measurements.
BENCH_EF = 96
#: Recall cutoffs reported by Tables 1 and 4.
RECALL_KS = [1, 5, 10, 15, 50, 100]
#: Executor counts swept by Tables 2/3/5/6.
EXECUTOR_SWEEP = [2, 4, 8]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_table(name, rows, *, title, columns=None, notes=None):
    """Write + print one paper-style results table."""
    text = write_result_table(
        name,
        rows,
        results_dir=RESULTS_DIR,
        title=title,
        columns=columns,
        notes=notes,
    )
    print("\n" + text + "\n")
    return text


@dataclass
class Sweep:
    """All artifacts of one dataset's Tables 1-3 style sweep."""

    dataset: Dataset
    hnsw_build_seconds: float
    hnsw_query_seconds_per_query: float
    hnsw_recalls: dict[int, float]
    experiments: dict[str, SegmentedExperiment] = field(default_factory=dict)
    query_results: dict[str, QueryJobResult] = field(default_factory=dict)
    recalls: dict[str, dict[int, float]] = field(default_factory=dict)

    def build_makespan(self, name: str, executors: int) -> float:
        return self.experiments[name].build_metrics.makespan(executors)

    def query_makespan_per_query(self, name: str, executors: int) -> float:
        total = self.query_results[name].total_makespan(executors)
        return total / self.dataset.num_queries


def run_sweep(
    dataset: Dataset,
    partitionings: list[tuple[int, int]],
    tmp_root: Path,
    *,
    top_k: int = 100,
) -> Sweep:
    """Build + query HNSW and every (segmenter, partitioning) combination."""
    import time

    fs = LocalHdfs(tmp_root / f"hdfs-{dataset.name}")
    cluster = LocalCluster(num_executors=4, fs=fs, mode="inline")
    top_k = min(top_k, dataset.num_base)

    # Baseline: single unpartitioned HNSW (the paper's HNSW rows).
    begin = time.perf_counter()
    hnsw = build_hnsw(dataset.base, params=BENCH_HNSW)
    hnsw_build = time.perf_counter() - begin
    begin = time.perf_counter()
    hnsw_ids, _ = hnsw.search_batch(dataset.queries, top_k, ef=BENCH_EF)
    hnsw_query = (time.perf_counter() - begin) / dataset.num_queries
    ks = [k for k in RECALL_KS if k <= top_k]
    hnsw_recalls = evaluate_recall(dataset, hnsw_ids, ks)

    sweep = Sweep(
        dataset=dataset,
        hnsw_build_seconds=hnsw_build,
        hnsw_query_seconds_per_query=hnsw_query,
        hnsw_recalls=hnsw_recalls,
    )
    for segmenter in ("rs", "rh", "apd"):
        for shards, segments in partitionings:
            name = f"{segmenter.upper()}({shards},{segments})"
            config = LannsConfig(
                num_shards=shards,
                num_segments=segments,
                segmenter=segmenter,
                alpha=0.15,
                spill_mode="virtual",
                hnsw=BENCH_HNSW,
                topk_confidence=0.95,
                segmenter_sample_size=min(250_000, dataset.num_base),
                seed=7,
            )
            experiment = build_partitioned(dataset, config, fs, cluster)
            result = experiment.query(top_k, ef=BENCH_EF)
            sweep.experiments[name] = experiment
            sweep.query_results[name] = result
            sweep.recalls[name] = evaluate_recall(dataset, result.ids, ks)
    return sweep


@pytest.fixture(scope="session")
def bench_tmp(tmp_path_factory) -> Path:
    return tmp_path_factory.mktemp("bench")


@pytest.fixture(scope="session")
def sift_dataset() -> Dataset:
    return load_dataset("sift1m")


@pytest.fixture(scope="session")
def gist_dataset() -> Dataset:
    return load_dataset("gist1m")


@pytest.fixture(scope="session")
def sift_sweep(sift_dataset, bench_tmp) -> Sweep:
    """The shared Tables 1-3 sweep: (1,8) and (2,4) partitionings."""
    return run_sweep(sift_dataset, [(1, 8), (2, 4)], bench_tmp)


@pytest.fixture(scope="session")
def gist_sweep(gist_dataset, bench_tmp) -> Sweep:
    """The shared Tables 4-6 sweep: (1,8) partitioning only (paper)."""
    return run_sweep(gist_dataset, [(1, 8)], bench_tmp)
