"""Benchmark suite: one module per table/figure of the LANNS paper."""
