"""Observability overhead: cost accounting and tracing must be ~free.

PR 8 wired a metrics registry, per-query search-cost accounting and
sampled request tracing through the serving path.  This benchmark pins
the deal those features were sold under:

1. **Accounting-on is the default** -- a broker with ``collect_cost=True``
   (today's default) must serve at >= 0.97x the QPS of the pre-PR
   baseline path (``collect_cost=False``, tracing off), with
   bit-identical ids and distances.
2. **Tracing off is free, sampled tracing is cheap** -- a broker with
   1%-sampled tracing must hold >= 0.90x baseline QPS, still
   bit-identical.

Configurations are interleaved and the best of ``--trials`` runs per
configuration is compared (best-of-N cancels one-sided noise: a
transient stall can only make a config look *slower*, so taking each
config's best run compares their true floors).  The assertions run
in-process (local transports) so the ratios measure the accounting
itself, not socket noise.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py
    PYTHONPATH=src python benchmarks/bench_observability_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.data.synthetic import clustered_gaussians, make_queries
from repro.eval.tables import format_table
from repro.eval.timing import measure_qps
from repro.hnsw.params import HnswParams
from repro.obs.cost import FIELDS
from repro.online.service import OnlineService
from repro.online.types import SearchRequest
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import save_lanns_index

RESULTS_DIR = Path(__file__).parent / "results"
INDEX_PATH = "bench/obs"

#: In-run floors: QPS ratio vs the pre-PR baseline path.
MIN_RATIO_DEFAULT = 0.97  # cost accounting on, tracing off (the default)
MIN_RATIO_SAMPLED = 0.90  # cost accounting on, 1%-sampled tracing


def build_services(fs: LocalHdfs, args: argparse.Namespace) -> dict:
    """One OnlineService per configuration, all over the same export."""
    configs = {
        "baseline": dict(collect_cost=False),
        "default": dict(collect_cost=True),
        "sampled": dict(
            collect_cost=True, trace_sample_rate=0.01, trace_seed=args.seed
        ),
    }
    services = {}
    for name, kwargs in configs.items():
        service = OnlineService(**kwargs)
        service.deploy(fs, INDEX_PATH, index_name=name)
        services[name] = service
    return services


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-base", type=int, default=20_000)
    parser.add_argument("--num-queries", type=int, default=400)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--segments", type=int, default=4)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--ef", type=int, default=64)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI; every assertion still runs",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.num_base = 4000
        args.num_queries = 150
        args.trials = 3

    base = clustered_gaussians(args.num_base, args.dim, seed=args.seed)
    queries = make_queries(base, args.num_queries, seed=args.seed + 1)
    config = LannsConfig(
        num_shards=args.shards,
        num_segments=args.segments,
        segmenter="rh",
        hnsw=HnswParams(
            M=12, ef_construction=56, ef_search=args.ef, seed=args.seed
        ),
        segmenter_sample_size=min(2000, args.num_base),
        seed=args.seed,
    )
    print(
        f"corpus: {args.num_base} x {args.dim}, {args.num_queries} queries, "
        f"{args.shards} shards"
    )
    tick = time.perf_counter()
    index = build_lanns_index(base, config=config)
    print(f"build: {time.perf_counter() - tick:.1f}s")

    tmp = Path(tempfile.mkdtemp(prefix="bench-obs-"))
    fs = LocalHdfs(tmp)
    save_lanns_index(index, fs, INDEX_PATH)
    services = build_services(fs, args)
    try:
        def query_fn(name: str):
            service = services[name]
            return lambda q: service.execute(
                SearchRequest(
                    queries=q, top_k=args.top_k, index_name=name, ef=args.ef
                )
            )

        # Parity first: accounting and sampling must not change results.
        responses = {
            name: services[name].execute(
                SearchRequest(
                    queries=queries,
                    top_k=args.top_k,
                    index_name=name,
                    ef=args.ef,
                )
            )
            for name in services
        }
        for name in ("default", "sampled"):
            np.testing.assert_array_equal(
                responses[name].ids,
                responses["baseline"].ids,
                err_msg=f"{name}: ids drifted from the baseline path",
            )
            np.testing.assert_array_equal(
                responses[name].dists,
                responses["baseline"].dists,
                err_msg=f"{name}: distances drifted from the baseline path",
            )
        assert responses["baseline"].cost is None, (
            "collect_cost=False must not attach a cost"
        )
        cost = responses["default"].cost
        assert cost is not None and set(cost) == set(FIELDS), (
            f"default path must attach the full cost dict, got {cost!r}"
        )
        assert cost["distance_comps"] > 0 and cost["hops"] > 0, (
            f"cost counters cannot be zero after a real search: {cost}"
        )
        print(f"parity: ok  cost sample: {cost}")

        # Interleaved best-of-N throughput.
        best: dict[str, dict] = {}
        for trial in range(args.trials):
            for name in services:
                stats = measure_qps(query_fn(name), queries)
                if (
                    name not in best
                    or stats["qps"] > best[name]["qps"]
                ):
                    best[name] = stats
            print(
                f"trial {trial + 1}/{args.trials}: "
                + "  ".join(
                    f"{name} {best[name]['qps']:.0f} qps"
                    for name in services
                )
            )

        baseline_qps = best["baseline"]["qps"]
        ratios = {
            name: best[name]["qps"] / baseline_qps for name in services
        }
        rows = [
            {
                "config": name,
                "qps": round(best[name]["qps"], 1),
                "p50_ms": round(best[name]["p50_ms"], 3),
                "p99_ms": round(best[name]["p99_ms"], 3),
                "vs_baseline": round(ratios[name], 4),
            }
            for name in services
        ]
        print(format_table(rows, title="Observability overhead"))

        assert ratios["default"] >= MIN_RATIO_DEFAULT, (
            f"cost accounting costs too much: {ratios['default']:.3f}x "
            f"baseline (floor {MIN_RATIO_DEFAULT}x)"
        )
        assert ratios["sampled"] >= MIN_RATIO_SAMPLED, (
            f"1%-sampled tracing costs too much: {ratios['sampled']:.3f}x "
            f"baseline (floor {MIN_RATIO_SAMPLED}x)"
        )
        print(
            f"floors held: default {ratios['default']:.3f}x >= "
            f"{MIN_RATIO_DEFAULT}x, sampled {ratios['sampled']:.3f}x >= "
            f"{MIN_RATIO_SAMPLED}x"
        )

        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / "observability_overhead.json"
        out.write_text(
            json.dumps(
                {
                    "smoke": args.smoke,
                    "num_base": args.num_base,
                    "num_queries": args.num_queries,
                    "trials": args.trials,
                    "rows": rows,
                    "cost_sample": cost,
                },
                indent=2,
            )
        )
        print(f"wrote {out}")
    finally:
        for service in services.values():
            service.close()
        shutil.rmtree(tmp, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
