"""Figure 1: the recall vs QPS frontier on SIFT1M (k=10 and k=100).

The paper's Figure 1 (from ann-benchmarks) motivates choosing HNSW: on
SIFT1M it dominates tree-based (Annoy), hashing (LSH), quantization
(Faiss-IVF) and the exact scan across the recall/QPS trade-off.

Here every family is our own from-scratch implementation, each swept
over its speed/accuracy knob, reporting *two* cost metrics per point:

- ``qps``: measured wall-clock throughput.  At our scaled-down size a
  single vectorised exact scan is absurdly cheap, so in wall-clock terms
  the brute-force anchor beats Python-loop algorithms -- the paper's
  crossover happens at millions of vectors where the scan costs ~50ms.
- ``dists/query``: full-vector distance computations per query -- the
  scale-free work metric.  On this axis HNSW's asymptotic advantage is
  visible at any size, and it is the metric the frontier assertions use
  against the exact scan.

Reproduction claims: HNSW dominates the comparable candidate-generation
baselines (RP-forest, LSH, IVF) in wall-clock (recall, QPS), reaches
recall >= 0.95 while computing >= 10x fewer distances than the scan, and
the brute-force anchor pins recall = 1.0.
"""

import numpy as np
import pytest

from repro.baselines.annoy_forest import RPForestIndex
from repro.baselines.base import HnswAdapter
from repro.baselines.exact import BruteForceIndex
from repro.baselines.ivf import IvfFlatIndex
from repro.baselines.lsh import LshIndex
from repro.baselines.pq import PqIndex
from repro.eval.timing import measure_qps
from repro.offline.recall import recall_at_k

from benchmarks.conftest import BENCH_HNSW, write_table


@pytest.fixture(scope="module")
def frontier_data(sift_dataset):
    # A lighter slice keeps the many-algorithm sweep fast.
    dataset = sift_dataset
    limit = min(dataset.num_base, 6000)
    base = dataset.base[:limit]
    queries = dataset.queries[:150]
    from repro.offline.brute_force import exact_top_k

    truth, _ = exact_top_k(base, queries, 100)
    return base, queries, truth


def sweep_index(index, queries, truth, k, label, parameter):
    ids = np.full((len(queries), k), -1, dtype=np.int64)
    index.ops = 0
    if isinstance(index, HnswAdapter):
        index._index.reset_distance_ops()
    for row, query in enumerate(queries):
        found, _ = index.search(query, k)
        ids[row, : len(found)] = found
    dists_per_query = (
        index.ops / len(queries)
        if not isinstance(index, HnswAdapter)
        else index._index.distance_ops / len(queries)
    )
    stats = measure_qps(lambda q: index.search(q, k), queries)
    return {
        "algorithm": label,
        "params": parameter,
        "recall": recall_at_k(ids, truth, k),
        "qps": stats["qps"],
        "dists/query": dists_per_query,
    }


def build_all(base):
    """Fit each algorithm once; query-time knobs are swept afterwards."""
    return {
        "brute_force": BruteForceIndex().fit(base),
        "hnsw": HnswAdapter(params=BENCH_HNSW).fit(base),
        "rp_forest": RPForestIndex(num_trees=12, leaf_size=32, seed=0).fit(
            base
        ),
        "lsh": LshIndex(num_tables=10, num_bits=10, seed=0).fit(base),
        "ivf": IvfFlatIndex(nlist=48, nprobe=1, seed=0).fit(base),
        "pq": PqIndex(num_subspaces=16, num_codes=64, rerank=0, seed=0).fit(
            base
        ),
    }


def frontier_rows(indices, queries, truth, k):
    rows = [
        sweep_index(
            indices["brute_force"], queries, truth, k, "brute_force", "-"
        )
    ]
    hnsw = indices["hnsw"]
    for ef in (8, 16, 32, 64, 128):
        hnsw.ef_search = max(ef, k)
        rows.append(
            sweep_index(hnsw, queries, truth, k, "hnsw", f"ef={max(ef, k)}")
        )
    forest = indices["rp_forest"]
    for search_k in (100, 400, 1600):
        forest.search_k = search_k
        rows.append(
            sweep_index(
                forest, queries, truth, k, "rp_forest", f"search_k={search_k}"
            )
        )
    lsh = indices["lsh"]
    for probes in (0, 2, 6):
        lsh.multiprobe = probes
        rows.append(
            sweep_index(lsh, queries, truth, k, "lsh", f"multiprobe={probes}")
        )
    ivf = indices["ivf"]
    for nprobe in (1, 4, 12, 32):
        ivf.nprobe = nprobe
        rows.append(
            sweep_index(ivf, queries, truth, k, "ivf", f"nprobe={nprobe}")
        )
    pq = indices["pq"]
    for rerank in (0, 200):
        pq.rerank = rerank
        rows.append(
            sweep_index(pq, queries, truth, k, "pq", f"rerank={rerank}")
        )
    return rows


def assert_hnsw_dominates(rows, competitors, slack=2.0):
    """Every competitor point is matched by an HNSW point on the
    (recall, distance-work) frontier.

    Wall-clock QPS is not comparable across implementations at this
    scale (Python loop overhead vs one fused numpy scan), so the
    dominance claim is made on the scale-free work metric, with slack
    for small-sample noise.
    """
    hnsw_points = [
        (row["recall"], row["dists/query"])
        for row in rows
        if row["algorithm"] == "hnsw"
    ]
    for row in rows:
        if row["algorithm"] not in competitors:
            continue
        if row["recall"] < 0.9:
            # The claim is made in the high-recall regime the paper
            # operates in (LANNS targets >=95% recall).  Low-recall
            # operating points are on nobody's frontier of interest, and
            # HNSW cannot even emit ultra-cheap points at k=100 (its
            # beam is floored at ef >= k).
            continue
        dominated = any(
            recall >= row["recall"] - 0.015
            and dists <= row["dists/query"] * slack
            for recall, dists in hnsw_points
        )
        assert dominated, (
            f"{row['algorithm']}({row['params']}) at recall="
            f"{row['recall']:.3f}, dists/query={row['dists/query']:.0f} is "
            f"not matched by any HNSW point {hnsw_points}"
        )


def test_figure1_frontier(benchmark, frontier_data, results_dir):
    base, queries, truth = frontier_data

    def run():
        indices = build_all(base)
        return {
            10: frontier_rows(indices, queries, truth, 10),
            100: frontier_rows(indices, queries, truth, 100),
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, rows in series.items():
        write_table(
            f"figure1_recall_qps_k{k}",
            rows,
            title=(
                f"Figure 1 -- Recall vs QPS on SIFT1M-like data, "
                f"{k} nearest neighbors ({len(base)} base / "
                f"{len(queries)} queries)"
            ),
            notes=(
                "Paper shape: HNSW dominates the frontier. At this scale "
                "the vectorised exact scan is wall-clock cheap; compare "
                "the scale-free 'dists/query' column to see the "
                "asymptotic frontier the paper's Figure 1 shows at 1M."
            ),
        )
    benchmark.extra_info["series"] = {
        str(k): rows for k, rows in series.items()
    }

    for _k, rows in series.items():
        brute = next(r for r in rows if r["algorithm"] == "brute_force")
        assert brute["recall"] == 1.0
        hnsw_rows = [r for r in rows if r["algorithm"] == "hnsw"]
        best_hnsw = max(hnsw_rows, key=lambda r: r["recall"])
        assert best_hnsw["recall"] >= 0.95
        # Scale-free frontier: the *cheapest* HNSW sweep point that still
        # clears recall 0.95 does a fraction of the scan's distance work.
        # The beam cost is ~O(ef * M), independent of n, so the advantage
        # widens with dataset size; demand 5x at >=5k vectors, 2x below.
        cheap_hnsw = min(
            (r for r in hnsw_rows if r["recall"] >= 0.95),
            key=lambda r: r["dists/query"],
        )
        factor = 5.0 if len(base) >= 5000 else 2.0
        assert cheap_hnsw["dists/query"] < brute["dists/query"] / factor
        # Work-metric frontier vs the other approximate families.
        assert_hnsw_dominates(rows, {"rp_forest", "lsh", "ivf", "pq"})
