"""Table 6: GIST1M query times (ms/query) with varying executor counts.

Paper (ms/query, 1k queries): HNSW 336; RS 330/222/132, RH 156/132/96,
APD 144/108/66 for 2/4/8 executors.  Shape: RS ~ HNSW at 2 executors
(it probes every segment), learned segmenters ~2x faster, everything
scales with executors.
"""

from benchmarks.conftest import EXECUTOR_SWEEP, write_table


def test_table6_gist_query_times(benchmark, gist_sweep, results_dir):
    sweep = gist_sweep

    def collect_rows():
        rows = []
        for executors in EXECUTOR_SWEEP:
            row = {"Executors": executors}
            row["HNSW"] = (
                sweep.hnsw_query_seconds_per_query * 1e3
                if executors == 2
                else None
            )
            for segmenter in ("RS", "RH", "APD"):
                row[segmenter] = (
                    sweep.query_makespan_per_query(
                        f"{segmenter}(1,8)", executors
                    )
                    * 1e3
                )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    write_table(
        "table6_gist_query_times",
        rows,
        title=(
            "Table 6 -- Query time (ms/query) on GIST1M-like data, "
            "simulated E-executor makespan"
        ),
        notes=(
            "Paper, ms/query at 1M scale: HNSW 336 | RS 330/222/132 | "
            "RH 156/132/96 | APD 144/108/66 for 2/4/8 executors."
        ),
    )
    benchmark.extra_info["rows"] = rows

    by_executors = {row["Executors"]: row for row in rows}
    # Learned segmenters probe fewer segments than RS.
    assert by_executors[2]["APD"] < by_executors[2]["RS"]
    assert by_executors[2]["RH"] < by_executors[2]["RS"]
    for segmenter in ("RS", "RH", "APD"):
        assert by_executors[8][segmenter] <= by_executors[2][segmenter] + 1e-9
