"""Ablation: the spill parameter alpha (recall vs fan-out trade-off).

The paper fixes ``alpha = 0.15`` ("we route about 30% of queries to both
partitions at any level") for all main experiments.  This ablation sweeps
alpha for an RH-segmented index under virtual spill and reports recall,
mean query fan-out (segments probed), and the Theorem-1-style prediction
that both rise together.  Builds are reused across alphas via segmenter
swapping (placement is alpha-independent under virtual spill).
"""

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.data.datasets import load_dataset
from repro.eval.harness import swap_segmenter
from repro.offline.recall import recall_at_k
from repro.segmenters.learner import learn_segmenter

from benchmarks.conftest import BENCH_EF, BENCH_HNSW, write_table

ALPHAS = [0.0, 0.05, 0.10, 0.15, 0.25]
TOP_K = 10


@pytest.fixture(scope="module")
def alpha_setup():
    dataset = load_dataset("sift1m")
    limit = min(dataset.num_base, 6000)
    dataset.base = dataset.base[:limit]
    dataset._truth_cache.clear()
    config = LannsConfig(
        num_shards=1,
        num_segments=8,
        segmenter="rh",
        alpha=0.15,
        spill_mode="virtual",
        hnsw=BENCH_HNSW,
        segmenter_sample_size=limit,
        seed=23,
    )
    index = build_lanns_index(dataset.base, config=config)
    return dataset, config, index


def test_ablation_alpha_sweep(benchmark, alpha_setup, results_dir):
    dataset, config, index = alpha_setup

    def run():
        truth = dataset.ground_truth(TOP_K)
        rows = []
        for alpha in ALPHAS:
            segmenter = learn_segmenter(
                dataset.base,
                "rh",
                config.num_segments,
                alpha=alpha,
                spill_mode="virtual",
                sample_size=dataset.num_base,
                seed=config.seed,
            )
            swapped = swap_segmenter(index, segmenter)
            fanout = np.mean(
                [
                    len(route)
                    for route in segmenter.route_query_batch(dataset.queries)
                ]
            )
            ids = np.full(
                (dataset.num_queries, TOP_K), -1, dtype=np.int64
            )
            for row, query in enumerate(dataset.queries):
                found, _ = swapped.query(query, TOP_K, ef=BENCH_EF)
                ids[row, : len(found)] = found
            rows.append(
                {
                    "alpha": alpha,
                    "query spill %": 2 * alpha * 100,
                    "mean segments probed": fanout,
                    f"R@{TOP_K}": recall_at_k(ids, truth, TOP_K),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table(
        "ablation_alpha",
        rows,
        title=(
            "Ablation -- spill alpha on RH(1,8), virtual spill "
            f"({dataset.num_base} SIFT-like vectors)"
        ),
        notes=(
            "alpha=0.15 is the paper's operating point: each extra unit "
            "of alpha buys recall at the cost of probing more segments."
        ),
    )
    benchmark.extra_info["rows"] = rows

    fanouts = [row["mean segments probed"] for row in rows]
    recalls = [row[f"R@{TOP_K}"] for row in rows]
    # Fan-out grows strictly with alpha; recall grows (weakly) with it.
    assert all(b > a for a, b in zip(fanouts, fanouts[1:]))
    assert recalls[-1] >= recalls[0]
    assert recalls[ALPHAS.index(0.15)] >= recalls[0]
