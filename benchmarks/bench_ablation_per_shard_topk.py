"""Ablation: the perShardTopK optimisation (Section 5.3.2).

Compares three per-shard fetch policies on a sharded People-like index:

- ``full``: every shard returns topK (no optimisation);
- ``normal``: the paper's normal-approximation budget with the standard
  z = probit((1+p)/2) reading (~1.96 at p=0.95);
- ``literal``: the paper's formula read literally, z = probit(1 - p/2)
  (~0.063) -- the typo discussed in DESIGN.md substitution #7.

Expected: ``normal`` cuts per-shard work substantially at (nearly) zero
recall cost; ``literal`` under-fetches and costs recall, evidence that
the intended reading is the standard interval.
"""

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.core.topk import per_shard_top_k
from repro.data.datasets import load_dataset
from repro.offline.recall import recall_at_k

from benchmarks.conftest import BENCH_EF, BENCH_HNSW, write_table

TOP_K = 100
NUM_SHARDS = 8


@pytest.fixture(scope="module")
def sharded_people():
    dataset = load_dataset("people")
    config = LannsConfig(
        num_shards=NUM_SHARDS,
        num_segments=1,
        segmenter="rs",
        hnsw=BENCH_HNSW,
        seed=29,
    )
    index = build_lanns_index(dataset.base, config=config)
    return dataset, index


def query_with_budget(index, queries, top_k, budget):
    ids = np.full((len(queries), top_k), -1, dtype=np.int64)
    fetched = 0
    from repro.core.merge import merge_shard_results

    for row, query in enumerate(queries):
        shard_results = [
            shard.search(query, budget, ef=BENCH_EF)
            for shard in index.shards
        ]
        fetched += sum(len(results) for results in shard_results)
        merged = merge_shard_results(shard_results, top_k)
        for rank, (_dist, item) in enumerate(merged[:top_k]):
            ids[row, rank] = item
    return ids, fetched / len(queries)


def test_ablation_per_shard_topk(benchmark, sharded_people, results_dir):
    dataset, index = sharded_people

    def run():
        top_k = min(TOP_K, dataset.num_base)
        truth = dataset.ground_truth(top_k)
        budgets = {
            "full (no perShardTopK)": top_k,
            "normal approx (z=1.96)": per_shard_top_k(
                top_k, NUM_SHARDS, 0.95
            ),
            "paper literal (z=0.06)": per_shard_top_k(
                top_k, NUM_SHARDS, 0.95, paper_literal=True
            ),
        }
        rows = []
        for policy, budget in budgets.items():
            ids, fetched = query_with_budget(
                index, dataset.queries, top_k, budget
            )
            rows.append(
                {
                    "policy": policy,
                    "perShardTopK": budget,
                    "candidates merged/query": fetched,
                    f"R@{top_k}": recall_at_k(ids, truth, top_k),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table(
        "ablation_per_shard_topk",
        rows,
        title=(
            f"Ablation -- perShardTopK with S={NUM_SHARDS} shards, "
            f"topK={TOP_K} (People-like, {dataset.num_base} vectors)"
        ),
        notes=(
            "The normal-approximation budget slashes merge traffic at "
            "(nearly) no recall cost; the literal quantile under-fetches."
        ),
    )
    benchmark.extra_info["rows"] = rows

    by_policy = {row["policy"]: row for row in rows}
    full = by_policy["full (no perShardTopK)"]
    normal = by_policy["normal approx (z=1.96)"]
    literal = by_policy["paper literal (z=0.06)"]
    recall_key = [k for k in full if k.startswith("R@")][0]
    # The budget cuts merged candidates by at least 2x...
    assert (
        normal["candidates merged/query"]
        < full["candidates merged/query"] / 2
    )
    # ...while recall stays within a point of the full fetch.
    assert normal[recall_key] >= full[recall_key] - 0.01
    # The literal reading fetches even less but loses measurable recall.
    assert literal["perShardTopK"] < normal["perShardTopK"]
    assert literal[recall_key] <= normal[recall_key]
