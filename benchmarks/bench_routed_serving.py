"""Replicated, routed serving: spilled fan-out, parity, replica kills.

This benchmark exercises the PR-6 serving surface end to end: a
**segment-aligned** index build (shard ``s`` hosts exactly segment
``s``), the broker's :class:`~repro.online.router.Router` mapping each
query to its top-``spill`` segments, and replica groups fronting real
searcher subprocesses.  Three phases, each with in-run assertions:

1. **Routed fan-out** -- queries served with ``spill`` segments reach at
   least 95% of the all-shards recall@k while querying at most *half*
   the shard groups, and batched QPS is strictly higher than the
   all-shards fan-out (the whole point of routing: less work per query);
2. **``spill="all"`` parity** -- the structured API with full spill is
   bit-identical to the pre-router broker path (manual per-shard search
   + level-2 merge) and to the deprecated ``query_batch`` shim;
3. **Replica failover** -- a 2-replica group fleet of real searcher
   subprocesses keeps serving with ZERO degraded rows under the strict
   ``fail`` policy while one replica of a group is SIGKILLed: its
   sibling absorbs the traffic via the broker's failover.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_routed_serving.py
    PYTHONPATH=src python benchmarks/bench_routed_serving.py --smoke

``--smoke`` shrinks the corpus and fleet so the whole run fits CI; every
correctness assertion still runs -- recall ratio, parity, and the
zero-drop kill are the point, not the QPS figures.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.core.merge import merge_shard_results_batch
from repro.data.synthetic import clustered_gaussians, make_queries
from repro.eval.tables import format_table
from repro.hnsw.params import HnswParams
from repro.net.fleet import (
    fleet_addresses,
    launch_fleet,
    launch_replicated_fleet,
    replicated_fleet_addresses,
    shutdown_fleet,
    shutdown_replicated_fleet,
)
from repro.offline.brute_force import exact_top_k
from repro.online.service import OnlineService
from repro.online.types import SearchRequest
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import save_lanns_index

RESULTS_DIR = Path(__file__).parent / "results"
INDEX_PATH = "bench/routed"
FAILOVER_INDEX_PATH = "bench/routed-failover"
#: Shard count of the (separate, small) replica-failover index.
FAILOVER_SHARDS = 2


def export_index(args: argparse.Namespace, fs: LocalHdfs):
    """Build and persist the segment-aligned index the router needs."""
    base = clustered_gaussians(args.num_base, args.dim, seed=args.seed)
    queries = make_queries(base, args.num_queries, seed=args.seed + 1)
    config = LannsConfig(
        num_shards=args.shards,
        num_segments=args.shards,
        sharding="segment",
        segmenter="rh",
        hnsw=HnswParams(
            M=12, ef_construction=56, ef_search=args.ef, seed=args.seed
        ),
        segmenter_sample_size=min(2000, args.num_base),
        seed=args.seed,
    )
    index = build_lanns_index(base, config=config)
    save_lanns_index(index, fs, INDEX_PATH)
    return config, index, base, queries


def recall_against(truth: np.ndarray, ids: np.ndarray) -> float:
    hits = sum(
        len(set(row_ids[row_ids >= 0]) & set(row_truth))
        for row_ids, row_truth in zip(ids, truth)
    )
    return hits / truth.size


def measure_qps(
    service: OnlineService,
    queries: np.ndarray,
    top_k: int,
    ef: int,
    spill,
    iterations: int,
) -> float:
    """Sequential per-query serving rate through the remote fleet.

    One query per request, so the fan-out width is exactly what the
    router decides: ``spill`` shard-group RPCs routed versus one RPC per
    group unrouted.  That is the quantity routing shrinks -- batched
    requests would still touch every group once the batch spans all
    segments.
    """
    requests = [
        SearchRequest(
            queries=queries[row : row + 1], top_k=top_k,
            index_name="default", ef=ef, spill=spill,
        )
        for row in range(queries.shape[0])
    ]
    for request in requests[: min(8, len(requests))]:
        service.execute(request)  # warm-up (connections, touched segments)
    tick = time.perf_counter()
    for _ in range(iterations):
        for request in requests:
            service.execute(request)
    elapsed = time.perf_counter() - tick
    return iterations * queries.shape[0] / elapsed


def check_routing(
    args: argparse.Namespace,
    fs: LocalHdfs,
    base: np.ndarray,
    queries: np.ndarray,
) -> dict:
    """Spill-routed serving: recall within 95%, fewer groups, more QPS.

    Served through a real subprocess fleet (one searcher per shard
    group): routing's throughput win is pruned *fan-out* -- fewer RPCs
    and fewer rows shipped per query -- which only costs something real
    over a wire.
    """
    truth, _ = exact_top_k(base, queries, args.top_k)
    fleet = launch_fleet(args.shards, root=str(fs.root))
    service = OnlineService(
        searchers=fleet_addresses(fleet),
        async_fanout=True,
        request_timeout_s=args.request_timeout_s,
    )
    try:
        service.deploy(fs, INDEX_PATH, index_name="default")
        full = service.execute(
            SearchRequest(
                queries=queries, top_k=args.top_k, index_name="default",
                ef=args.ef,
            )
        )
        routed = service.execute(
            SearchRequest(
                queries=queries, top_k=args.top_k, index_name="default",
                ef=args.ef, spill=args.spill,
            )
        )
        recall_full = recall_against(truth, full.ids)
        recall_routed = recall_against(truth, routed.ids)
        groups_per_query = float(np.mean(routed.shards_routed))
        if not (routed.shards_routed <= args.shards / 2).all():
            raise AssertionError(
                f"routing with spill={args.spill} queried more than half "
                f"of the {args.shards} shard groups for some query"
            )
        if routed.degraded_rows:
            raise AssertionError(
                f"{routed.degraded_rows} routed rows degraded on a "
                "healthy in-process fleet"
            )
        ratio = recall_routed / recall_full if recall_full else 1.0
        if ratio < 0.95:
            raise AssertionError(
                f"routed recall@{args.top_k} {recall_routed:.4f} is below "
                f"95% of the all-shards recall {recall_full:.4f} "
                f"(ratio {ratio:.3f})"
            )
        qps_full = measure_qps(
            service, queries, args.top_k, args.ef, None, args.iterations
        )
        qps_routed = measure_qps(
            service, queries, args.top_k, args.ef, args.spill,
            args.iterations,
        )
        if not qps_routed > qps_full:
            raise AssertionError(
                f"routed QPS {qps_routed:.0f} is not above all-shards QPS "
                f"{qps_full:.0f} despite querying "
                f"{groups_per_query:.1f}/{args.shards} groups"
            )
        return {
            "recall_full": recall_full,
            "recall_routed": recall_routed,
            "recall_ratio": ratio,
            "groups_per_query": groups_per_query,
            "qps_full": qps_full,
            "qps_routed": qps_routed,
            "route_ms": routed.timings.get("route_ms", 0.0),
        }
    finally:
        service.close()
        shutdown_fleet(fleet)


def check_spill_all_parity(
    args: argparse.Namespace, fs: LocalHdfs, index, queries: np.ndarray
) -> None:
    """``spill="all"`` must be bit-identical to the pre-router path."""
    service = OnlineService()
    try:
        broker = service.deploy(fs, INDEX_PATH, index_name="default")
        budget = broker.per_shard_budget(args.top_k)
        parts = [
            shard.search_batch(queries, budget, ef=args.ef)
            for shard in index.shards
        ]
        want_ids, want_dists = merge_shard_results_batch(parts, args.top_k)
        for spill in (None, "all"):
            response = service.execute(
                SearchRequest(
                    queries=queries, top_k=args.top_k, index_name="default",
                    ef=args.ef, spill=spill,
                )
            )
            if not (
                (response.ids == want_ids).all()
                and (response.dists == want_dists).all()
            ):
                raise AssertionError(
                    f"spill={spill!r} results differ from the manual "
                    "per-shard search + merge (the pre-router path)"
                )
        legacy_ids, legacy_dists = service.query_batch(
            queries, args.top_k, ef=args.ef
        )
        if not (
            (legacy_ids == want_ids).all()
            and (legacy_dists == want_dists).all()
        ):
            raise AssertionError(
                "the deprecated query_batch shim drifted from execute()"
            )
    finally:
        service.close()


def check_replica_failover(
    args: argparse.Namespace, workdir: str, fs: LocalHdfs
) -> dict:
    """SIGKILL one replica of a group: zero degraded rows under `fail`."""
    base = clustered_gaussians(
        min(args.num_base, 1500), args.dim, seed=args.seed + 7
    )
    queries = make_queries(base, min(args.num_queries, 32), seed=args.seed + 8)
    config = LannsConfig(
        num_shards=FAILOVER_SHARDS,
        num_segments=2,
        segmenter="rh",
        hnsw=HnswParams(
            M=12, ef_construction=56, ef_search=args.ef, seed=args.seed
        ),
        segmenter_sample_size=min(1000, base.shape[0]),
        seed=args.seed,
    )
    index = build_lanns_index(base, config=config)
    save_lanns_index(index, fs, FAILOVER_INDEX_PATH)
    groups = launch_replicated_fleet(FAILOVER_SHARDS, 2, root=workdir)
    service = OnlineService(
        searchers=replicated_fleet_addresses(groups),
        async_fanout=True,
        partial_policy="fail",
        request_timeout_s=args.request_timeout_s,
        rpc_retries=0,
    )
    try:
        service.deploy(fs, FAILOVER_INDEX_PATH, index_name="default")
        request = SearchRequest(
            queries=queries, top_k=args.top_k, index_name="default",
            ef=args.ef, deadline_s=args.request_timeout_s,
        )
        healthy = service.execute(request)
        if not healthy.fully_answered:
            raise AssertionError("healthy replicated fleet degraded")

        # Kill the replica the ledger will pick NEXT: replica 0 of each
        # group served the healthy round (id tie-break among fresh
        # replicas) and keeps winning ties -- its cold sibling ranks at
        # the group's median EWMA, not ahead of it -- so the first
        # post-kill request MUST hit the corpse and fail over to the
        # sibling.
        victim = groups[0][0]
        victim.kill()
        degraded_rows = 0
        for _round in range(args.kill_rounds):
            response = service.execute(request)
            degraded_rows += response.degraded_rows
            if not (
                (response.ids == healthy.ids).all()
                and (response.dists == healthy.dists).all()
            ):
                raise AssertionError(
                    "failover answers differ from the healthy fleet's"
                )
        if degraded_rows:
            raise AssertionError(
                f"{degraded_rows} degraded rows after killing one replica "
                "of a 2-replica group: the sibling must absorb the load"
            )
        stats = service.brokers["default"].stats()
        if stats["failovers"] < 1:
            raise AssertionError(
                "the broker never failed over to the sibling replica"
            )
        if stats["partial"]["degraded_batches"] != 0:
            raise AssertionError(
                "a replicated group must not degrade on a single kill"
            )
        return {
            "killed": f"shard {victim.shard_id} replica 0",
            "rounds": args.kill_rounds,
            "degraded_rows": degraded_rows,
            "failovers": stats["failovers"],
        }
    finally:
        service.close()
        shutdown_replicated_fleet(groups)


def run(args: argparse.Namespace) -> int:
    workdir = tempfile.mkdtemp(prefix="lanns-routed-bench-")
    try:
        fs = LocalHdfs(workdir)
        config, index, base, queries = export_index(args, fs)
        print(
            f"corpus: {args.num_base} x {args.dim}, {args.shards} "
            f"segment-aligned shard group(s), {queries.shape[0]} queries, "
            f"top_k={args.top_k}, ef={args.ef}, spill={args.spill}"
        )

        routing = check_routing(args, fs, base, queries)
        rows = [
            {
                "mode": f"all shards ({args.shards} groups/query)",
                "recall": f"{routing['recall_full']:.4f}",
                "qps": routing["qps_full"],
            },
            {
                "mode": (
                    f"routed spill={args.spill} "
                    f"({routing['groups_per_query']:.1f} groups/query)"
                ),
                "recall": f"{routing['recall_routed']:.4f}",
                "qps": routing["qps_routed"],
            },
        ]
        text = format_table(
            rows,
            title=(
                "Segment-routed fan-out vs all-shards "
                f"({args.shards} shard groups, recall@{args.top_k})"
            ),
        )
        print("\n" + text + "\n")
        print(
            f"routing: recall ratio {routing['recall_ratio']:.3f} >= 0.95 "
            f"while querying {routing['groups_per_query']:.1f}/"
            f"{args.shards} groups with higher QPS ✓"
        )

        check_spill_all_parity(args, fs, index, queries)
        print(
            'parity: spill="all" and spill=None bit-identical to the '
            "manual per-shard merge and the deprecated shim ✓"
        )

        failover = check_replica_failover(args, workdir, fs)
        print(
            f"failover: killed {failover['killed']}; "
            f"{failover['rounds']} query rounds with "
            f"{failover['degraded_rows']} degraded rows "
            f"({failover['failovers']} failovers) under the fail policy ✓"
        )
        if args.smoke:
            print("smoke OK (routing + parity + replica failover asserted)")
            return 0
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": "routed_serving",
            "shards": args.shards,
            "spill": args.spill,
            "routing": routing,
            "failover": failover,
        }
        (RESULTS_DIR / "routed_serving.json").write_text(
            json.dumps(payload, indent=2), encoding="utf-8"
        )
        (RESULTS_DIR / "routed_serving.txt").write_text(
            text + "\n", encoding="utf-8"
        )
        print("OK: routed serving holds recall, parity and zero-drop kills")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=(
            "Segment-routed, replicated serving: recall/QPS trade-off, "
            "spill parity, and replica-kill failover"
        )
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI; all correctness assertions still run",
    )
    parser.add_argument("--num-base", type=int, default=12000)
    parser.add_argument("--num-queries", type=int, default=256)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument(
        "--shards",
        type=int,
        default=8,
        help="shard groups == segments (power of two, segment-aligned)",
    )
    parser.add_argument(
        "--spill",
        type=int,
        default=3,
        help="segments routed per query (must be <= shards/2)",
    )
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--ef", type=int, default=48)
    parser.add_argument(
        "--iterations",
        type=int,
        default=5,
        help="timed batch iterations per QPS measurement",
    )
    parser.add_argument(
        "--kill-rounds",
        type=int,
        default=8,
        help="query rounds served after the replica kill",
    )
    parser.add_argument(
        "--request-timeout-s",
        type=float,
        default=30.0,
        help="per-request fan-out deadline for the failover phase",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.shards < 2 or args.shards & (args.shards - 1):
        parser.error("--shards must be a power of two >= 2")
    if args.num_base <= 0 or args.num_queries <= 0 or args.dim <= 0:
        parser.error("--num-base, --num-queries and --dim must be positive")
    if args.iterations < 1 or args.kill_rounds < 1:
        parser.error("--iterations and --kill-rounds must be >= 1")
    if args.smoke:
        args.num_base = min(args.num_base, 2000)
        args.num_queries = min(args.num_queries, 48)
        args.shards = min(args.shards, 4)
        args.spill = min(args.spill, 2)
        args.iterations = min(args.iterations, 3)
        args.kill_rounds = min(args.kill_rounds, 4)
    if not 1 <= args.spill <= args.shards // 2:
        parser.error(
            "--spill must be in [1, shards/2] -- routing that queries "
            "more than half the groups cannot demonstrate the trade-off"
        )
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
