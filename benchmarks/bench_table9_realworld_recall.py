"""Table 9: recall on the real-world-like datasets.

Paper:

    Dataset   S   dim   Index Size  Query Size  K    R@K
    People    32  50    180M        20k         50   97%
    PYMK      20  50    100M        1M          100  95%
    NearDupe  1   2048  148k        0.5M        100  97%
    Groups    1   256   2.7M        20k         100  97%

Expected shape: every deployment reaches high recall (>= 0.90 at our
scale; the paper reports >= 95%).
"""

from repro.offline.recall import recall_at_k

from benchmarks.conftest import write_table
from benchmarks.bench_table8_realworld_times import realworld_runs  # fixture

PAPER_RECALL = {"people": 0.97, "pymk": 0.95, "neardupe": 0.97, "groups": 0.97}


def test_table9_realworld_recall(benchmark, realworld_runs, results_dir):
    def collect_rows():
        rows = []
        for name, run in realworld_runs.items():
            dataset = run["dataset"]
            top_k = run["top_k"]
            truth = dataset.ground_truth(top_k)
            recall = recall_at_k(run["result"].ids, truth, top_k)
            rows.append(
                {
                    "Dataset": name,
                    "S": run["config"].num_shards,
                    "dim": dataset.dim,
                    "Index Size": dataset.num_base,
                    "Query Size": dataset.num_queries,
                    "K": top_k,
                    "R@K": recall,
                    "paper_R@K": PAPER_RECALL[name],
                }
            )
        return rows

    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    write_table(
        "table9_realworld_recall",
        rows,
        title="Table 9 -- Recall, real-world-like datasets",
        notes="Paper: People 97% | PYMK 95% | NearDupe 97% | Groups 97%.",
    )
    benchmark.extra_info["rows"] = rows

    for row in rows:
        assert row["R@K"] >= 0.90, (
            f"{row['Dataset']}: R@{row['K']} = {row['R@K']:.3f} < 0.90"
        )
