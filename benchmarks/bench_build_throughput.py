"""Offline build throughput: batched lockstep construction vs sequential.

The LANNS paper's headline offline result (Tables 2/5) is build *time*:
1M-point segment builds dropping from ~40 min to single-digit minutes.
This benchmark measures the reproduction's analogue at two levels:

1. *Single segment* -- one ``HnswIndex`` built over the same vectors
   twice: sequentially (``build_batch=1``, the pre-PR-5 one-row-at-a-time
   insert) and through the batched lockstep insert path (construction
   waves reusing the PR-1 batch kernels).  The batched build must be
   >= 2x faster at bench scale, its recall against an exact scan must be
   no worse than the sequential builder's (minus a small tolerance), and
   building twice with the same seed must produce bit-identical
   serialized graphs.

2. *End to end* -- ``build_index_job`` over a multi-segment config on a
   ``LocalCluster``, once per execution mode (``inline`` / ``threads`` /
   ``processes``).  All modes must produce identical segment checksums;
   with more than one CPU core available, ``processes`` (which escapes
   the GIL entirely) must beat ``inline`` wall-clock.  On a single-core
   machine the wall-clock assertion is skipped -- there is no hardware
   parallelism to demonstrate -- and the parity assertion still runs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_build_throughput.py
    PYTHONPATH=src python benchmarks/bench_build_throughput.py --smoke

``--smoke`` shrinks the workload to CI size and skips the speedup
assertions (tiny runs are timing noise); recall, determinism and
cross-mode parity are still asserted, which is what the CI benchmark
smoke job guards.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.config import LannsConfig
from repro.data.synthetic import clustered_gaussians
from repro.eval.tables import format_table
from repro.hnsw.index import build_hnsw
from repro.hnsw.params import HnswParams
from repro.offline.brute_force import exact_top_k
from repro.offline.indexing import build_index_job
from repro.offline.recall import recall_at_k
from repro.sparklite.cluster import LocalCluster
from repro.storage.hdfs import LocalHdfs

RESULTS_DIR = Path(__file__).parent / "results"


def timed_build(
    base: np.ndarray, params: HnswParams
) -> tuple[float, object]:
    begin = time.perf_counter()
    index = build_hnsw(base, params=params)
    return time.perf_counter() - begin, index


def payloads_identical(a: dict, b: dict) -> bool:
    return a.keys() == b.keys() and all(
        np.array_equal(a[key], b[key]) for key in a
    )


def run_single_segment(args: argparse.Namespace) -> tuple[list[dict], bool]:
    """Batched vs sequential single-segment build; returns (rows, ok)."""
    base = clustered_gaussians(args.num_base, args.dim, seed=args.seed)
    queries = clustered_gaussians(args.num_queries, args.dim, seed=args.seed + 1)
    truth_ids, _ = exact_top_k(base, queries, args.top_k)

    def params(wave: int) -> HnswParams:
        return HnswParams(
            M=args.hnsw_m,
            ef_construction=args.ef_construction,
            seed=args.seed,
            build_batch=wave,
        )

    # The two paths are timed interleaved (seq, batched, seq, batched,
    # ...) and each is scored by its fastest run: min-of-N is the
    # standard noise-robust wall-clock estimator, and interleaving means
    # a noisy stretch (shared CI runners) hits both paths alike instead
    # of biasing the ratio.  The final two batched builds double as the
    # determinism check.
    seq_time = batch_time = float("inf")
    seq_index = batch_index = repeat_index = None
    for _ in range(max(args.repeats, 2)):
        elapsed, seq_index = timed_build(base, params(1))
        seq_time = min(seq_time, elapsed)
        elapsed, candidate = timed_build(base, params(args.build_batch))
        batch_time = min(batch_time, elapsed)
        batch_index, repeat_index = candidate, batch_index
    speedup = seq_time / batch_time if batch_time > 0 else float("inf")

    seq_ids, _ = seq_index.search_batch(queries, args.top_k, ef=args.ef)
    batch_ids, _ = batch_index.search_batch(queries, args.top_k, ef=args.ef)
    seq_recall = recall_at_k(seq_ids, truth_ids, args.top_k)
    batch_recall = recall_at_k(batch_ids, truth_ids, args.top_k)

    # Same seed + same wave size => bit-identical serialized graph.
    deterministic = payloads_identical(
        batch_index.to_arrays(), repeat_index.to_arrays()
    )

    rows = [
        {
            "path": "sequential add()",
            "build_s": seq_time,
            "recall": seq_recall,
            "speedup": 1.0,
        },
        {
            "path": f"batched wave={args.build_batch}",
            "build_s": batch_time,
            "recall": batch_recall,
            "speedup": speedup,
        },
    ]
    print(
        "\n"
        + format_table(
            rows,
            title=(
                "Single-segment build throughput (batched lockstep "
                "insert vs sequential add)"
            ),
        )
        + "\n"
    )
    print(f"determinism: repeat batched build bit-identical: {deterministic}")

    ok = True
    if not deterministic:
        print("FAIL: batched build is not deterministic across runs")
        ok = False
    if batch_recall < seq_recall - args.recall_tolerance:
        print(
            f"FAIL: batched recall {batch_recall:.4f} is more than "
            f"{args.recall_tolerance} below sequential {seq_recall:.4f}"
        )
        ok = False
    else:
        print(
            f"recall: batched {batch_recall:.4f} vs sequential "
            f"{seq_recall:.4f} (tolerance {args.recall_tolerance}) ✓"
        )
    if args.smoke:
        print(
            f"smoke: speedup {speedup:.2f}x reported, assertion skipped "
            "at smoke sizes"
        )
    elif speedup < args.min_speedup:
        print(
            f"FAIL: batched build speedup {speedup:.2f}x is below the "
            f"required {args.min_speedup:.1f}x"
        )
        ok = False
    else:
        print(f"OK: batched build {speedup:.2f}x >= {args.min_speedup:.1f}x")
    return rows, ok


def run_job_modes(args: argparse.Namespace) -> tuple[list[dict], bool]:
    """build_index_job across cluster execution modes; returns (rows, ok)."""
    base = clustered_gaussians(args.job_num_base, args.dim, seed=args.seed)
    config = LannsConfig(
        num_shards=args.shards,
        num_segments=args.segments,
        segmenter="rh",
        hnsw=HnswParams(
            M=args.hnsw_m,
            ef_construction=args.ef_construction,
            build_batch=args.build_batch,
        ),
        segmenter_sample_size=min(2000, args.job_num_base),
        seed=args.seed,
    )
    rows = []
    checksums: dict[str, dict] = {}
    walls: dict[str, float] = {}
    for mode in ("inline", "threads", "processes"):
        with tempfile.TemporaryDirectory() as root:
            fs = LocalHdfs(root)
            cluster = LocalCluster(
                num_executors=args.executors, mode=mode, fs=fs
            )
            begin = time.perf_counter()
            manifest, metrics = build_index_job(
                cluster, fs, base, config, "bench-idx"
            )
            wall = time.perf_counter() - begin
        checksums[mode] = manifest.checksums
        walls[mode] = wall
        rows.append(
            {
                "mode": mode,
                "wall_s": wall,
                "build_stage_s": metrics.wall_time,
                "partitions": config.total_partitions,
            }
        )
    print(
        "\n"
        + format_table(
            rows,
            title=(
                "End-to-end build_index_job wall time by cluster "
                "execution mode"
            ),
        )
        + "\n"
    )

    ok = True
    if not (
        checksums["inline"] == checksums["threads"] == checksums["processes"]
    ):
        print("FAIL: segment checksums differ across execution modes")
        ok = False
    else:
        print("parity: identical segment checksums across all modes ✓")

    cores = os.cpu_count() or 1
    if args.smoke:
        print("smoke: mode wall-clock assertion skipped at smoke sizes")
    elif cores < 2:
        print(
            f"SKIP: only {cores} CPU core available -- no hardware "
            "parallelism to demonstrate; processes-vs-inline wall-clock "
            "assertion skipped (parity still asserted)"
        )
    elif walls["processes"] >= walls["inline"]:
        print(
            f"FAIL: processes mode ({walls['processes']:.2f}s) did not "
            f"beat inline ({walls['inline']:.2f}s) on {cores} cores"
        )
        ok = False
    else:
        print(
            f"OK: processes {walls['processes']:.2f}s < inline "
            f"{walls['inline']:.2f}s on {cores} cores "
            f"({walls['inline'] / walls['processes']:.2f}x)"
        )
    return rows, ok


def run(args: argparse.Namespace) -> int:
    print(
        f"single segment: {args.num_base} x {args.dim}, "
        f"M={args.hnsw_m}, ef_construction={args.ef_construction}, "
        f"wave={args.build_batch}; job: {args.job_num_base} rows over "
        f"{args.shards}x{args.segments} partitions, "
        f"{args.executors} executors"
    )
    single_rows, single_ok = run_single_segment(args)
    job_rows, job_ok = run_job_modes(args)
    if not args.smoke:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": "build_throughput",
            "single_segment": single_rows,
            "job_modes": job_rows,
            "cpu_cores": os.cpu_count(),
        }
        (RESULTS_DIR / "build_throughput.json").write_text(
            json.dumps(payload, indent=2), encoding="utf-8"
        )
    if single_ok and job_ok:
        print("build throughput benchmark: all assertions passed")
        return 0
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=(
            "Measure batched vs sequential HNSW build throughput and "
            "build_index_job wall time across cluster execution modes"
        )
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "tiny sizes; keep recall/determinism/parity assertions, "
            "skip the timing assertions (for CI)"
        ),
    )
    parser.add_argument("--num-base", type=int, default=6000)
    parser.add_argument(
        "--job-num-base",
        type=int,
        default=8000,
        help="dataset size for the multi-partition build_index_job runs",
    )
    parser.add_argument("--num-queries", type=int, default=200)
    parser.add_argument("--dim", type=int, default=48)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--ef", type=int, default=64)
    parser.add_argument("--hnsw-m", type=int, default=12)
    parser.add_argument("--ef-construction", type=int, default=56)
    parser.add_argument(
        "--build-batch",
        type=int,
        default=64,
        help="construction wave size for the batched path",
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--segments", type=int, default=2)
    parser.add_argument("--executors", type=int, default=4)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required batched/sequential build-time ratio (non-smoke)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help=(
            "interleaved timing repetitions per path (each path scored "
            "by its fastest run; minimum 2 -- the repeated batched "
            "build doubles as the determinism check)"
        ),
    )
    parser.add_argument(
        "--recall-tolerance",
        type=float,
        default=0.02,
        help=(
            "how far below the sequential builder's recall the batched "
            "builder may fall"
        ),
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.num_base <= 0 or args.num_queries <= 0 or args.dim <= 0:
        parser.error("--num-base, --num-queries and --dim must be positive")
    if args.build_batch < 2:
        parser.error(
            f"--build-batch must be >= 2 to batch anything, "
            f"got {args.build_batch}"
        )
    if args.smoke:
        args.num_base = min(args.num_base, 1500)
        args.job_num_base = min(args.job_num_base, 1500)
        args.num_queries = min(args.num_queries, 48)
        args.repeats = min(args.repeats, 2)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
