"""Quantized beam search vs the float32 path: recall, QPS, storage, parity.

The compressed-domain scoring tier exists for one reason: per-shard
serving capacity is memory-bandwidth-bound, and an int8 beam round
gathers 4x fewer bytes per candidate than the float32 GEMM path.  On
top of that, the exact float32 rescore of the beam survivors means the
returned top-k ordering does not lean on the approximate scores -- so
the int8 path can serve a leaner beam (``--int8-ef``, default 80 vs
the float path's ``--ef`` 96) without giving up the recall floor.
That is where the serving win comes from, same shape as the routed
bench (fewer shards at equal recall): fewer beam rounds per query, and
each round 4x lighter.  This benchmark builds the same segment per
backend (float, int8, PQ -- PQ is reported alongside, not gated) and
asserts the claim end to end, in-run:

1. *Recall* -- int8-quantized beam + exact rescore at its serving
   operating point must reach at least ``--min-recall-ratio`` (default
   0.95) of the float path's recall@10 against an exact scan.
2. *Throughput* -- at those operating points the int8 path must serve
   strictly more QPS than the float path (interleaved min-of-N
   timing).
3. *Storage* -- the int8 codes must be ~4x smaller than the float32
   vectors they stand in for (asserted at >= 3.9x).
4. *Wire parity* -- for every id the float and quantized paths both
   return, the distances must be bit-identical: the rescore runs the
   same batch-composition-invariant float32 kernel the float traversal
   scores with.
5. *Opt-out parity* -- an index built with ``quantize="none"`` and
   served through the full persistence + OnlineService stack must be
   bit-identical to today's float serving path.

All five are asserted in ``--smoke`` too: the QPS margin is mostly
algorithmic (a leaner beam), so it holds at CI sizes where a pure
kernel-bandwidth effect would drown in Python traversal overhead.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_quantized_scoring.py
    PYTHONPATH=src python benchmarks/bench_quantized_scoring.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.data.synthetic import clustered_gaussians
from repro.eval.tables import format_table
from repro.hnsw.index import build_hnsw
from repro.hnsw.params import HnswParams
from repro.offline.brute_force import exact_top_k
from repro.offline.recall import recall_at_k
from repro.online.service import OnlineService
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import save_lanns_index

RESULTS_DIR = Path(__file__).parent / "results"


def _params(args: argparse.Namespace, quantize: str) -> HnswParams:
    # Each backend serves at its own operating point: int8 runs a
    # leaner beam (the exact rescore keeps the top-k trustworthy), PQ
    # runs the float beam width but a deeper rescore depth to buy back
    # what its much lossier codes cost.
    ef_search = args.int8_ef if quantize == "int8" else args.ef
    rescore_k = args.pq_rescore_k if quantize == "pq" else args.rescore_k
    return HnswParams(
        M=args.hnsw_m,
        ef_construction=args.ef_construction,
        ef_search=ef_search,
        seed=args.seed,
        quantize=quantize,
        rescore_k=rescore_k,
        pq_subspaces=args.pq_subspaces,
    )


def _timed_pass(index, queries, top_k, batch_size) -> float:
    begin = time.perf_counter()
    for start in range(0, queries.shape[0], batch_size):
        index.search_batch(queries[start : start + batch_size], top_k)
    return time.perf_counter() - begin


def run(args: argparse.Namespace) -> int:
    base = clustered_gaussians(
        args.num_base, args.dim, num_clusters=32, seed=args.seed
    )
    queries = clustered_gaussians(
        args.num_queries, args.dim, num_clusters=32, seed=args.seed + 1
    )
    truth_ids, _ = exact_top_k(base, queries, args.top_k)
    print(
        f"corpus {args.num_base} x {args.dim} "
        f"({base.nbytes / 1e6:.1f} MB float32), "
        f"{args.num_queries} queries, float ef={args.ef}, "
        f"int8 ef={args.int8_ef}, "
        f"pq ef={args.ef}/rescore_k={args.pq_rescore_k}, "
        f"B={args.batch_size}"
    )

    indices = {
        kind: build_hnsw(base, params=_params(args, kind))
        for kind in ("none", "int8", "pq")
    }

    # Interleaved min-of-N timing: each pass serves the whole query set
    # through search_batch; a noisy stretch on a shared runner hits all
    # paths alike instead of biasing the ratios.
    best = {kind: float("inf") for kind in indices}
    for _ in range(max(args.repeats, 2)):
        for kind, index in indices.items():
            best[kind] = min(
                best[kind],
                _timed_pass(index, queries, args.top_k, args.batch_size),
            )
    qps = {kind: args.num_queries / best[kind] for kind in indices}

    results = {
        kind: index.search_batch(queries, args.top_k)
        for kind, index in indices.items()
    }
    recall = {
        kind: recall_at_k(ids, truth_ids, args.top_k)
        for kind, (ids, _) in results.items()
    }
    vector_bytes = indices["none"]._scorer.data.nbytes
    code_bytes = {
        kind: indices[kind]._quantized.codes.nbytes
        for kind in ("int8", "pq")
    }

    rows = []
    for kind in ("none", "int8", "pq"):
        rows.append(
            {
                "path": "float32" if kind == "none" else kind,
                "ef": indices[kind].params.ef_search,
                "rescore_k": indices[kind].params.rescore_k,
                f"recall@{args.top_k}": recall[kind],
                "qps": qps[kind],
                "vs_float": qps[kind] / qps["none"],
                "code_mb": (
                    vector_bytes if kind == "none" else code_bytes[kind]
                )
                / 1e6,
            }
        )
    print(
        "\n"
        + format_table(
            rows,
            title=(
                "Quantized beam search + exact rescore vs the float32 "
                "path (same graph, per-backend operating points)"
            ),
        )
        + "\n"
    )

    ok = True

    # 1. Recall floor.
    ratio = recall["int8"] / recall["none"] if recall["none"] else 0.0
    if ratio < args.min_recall_ratio:
        print(
            f"FAIL: int8 recall@{args.top_k} {recall['int8']:.4f} is "
            f"{ratio:.3f}x the float path's {recall['none']:.4f} "
            f"(need >= {args.min_recall_ratio:.2f}x)"
        )
        ok = False
    else:
        print(
            f"OK: int8 recall@{args.top_k} {recall['int8']:.4f} is "
            f"{ratio:.3f}x float ({recall['none']:.4f}) "
            f">= {args.min_recall_ratio:.2f}x"
        )

    # 2. Strictly higher QPS at the serving operating points.
    if qps["int8"] <= qps["none"]:
        print(
            f"FAIL: int8 QPS {qps['int8']:.0f} (ef={args.int8_ef}) is "
            f"not strictly above float QPS {qps['none']:.0f} "
            f"(ef={args.ef})"
        )
        ok = False
    else:
        print(
            f"OK: int8 QPS {qps['int8']:.0f} (ef={args.int8_ef}) > "
            f"float QPS {qps['none']:.0f} (ef={args.ef}) "
            f"({qps['int8'] / qps['none']:.2f}x)"
        )

    # 3. ~4x smaller code storage.
    shrink = vector_bytes / code_bytes["int8"]
    if shrink < args.min_shrink:
        print(
            f"FAIL: int8 codes are only {shrink:.2f}x smaller than the "
            f"float32 vectors (need >= {args.min_shrink:.1f}x)"
        )
        ok = False
    else:
        print(
            f"OK: int8 codes {code_bytes['int8'] / 1e6:.2f} MB vs "
            f"float32 {vector_bytes / 1e6:.2f} MB "
            f"({shrink:.2f}x >= {args.min_shrink:.1f}x)"
        )

    # 4. Bit-identical distances for shared candidates.
    mismatched = 0
    compared = 0
    float_ids, float_dists = results["none"]
    for kind in ("int8", "pq"):
        quant_ids, quant_dists = results[kind]
        for row in range(args.num_queries):
            quant_map = dict(
                zip(quant_ids[row].tolist(), quant_dists[row].tolist())
            )
            for candidate, dist in zip(
                float_ids[row].tolist(), float_dists[row].tolist()
            ):
                if candidate in quant_map:
                    compared += 1
                    if quant_map[candidate] != dist:
                        mismatched += 1
    if mismatched or compared == 0:
        print(
            f"FAIL: {mismatched} of {compared} shared candidates have "
            "distances that are not bit-identical to the float path"
        )
        ok = False
    else:
        print(
            f"OK: all {compared} candidates shared with the float path "
            "carry bit-identical distances"
        )

    # 5. quantize="none" through the full serving stack is today's path.
    config = LannsConfig(
        num_shards=2,
        num_segments=2,
        segmenter="rh",
        hnsw=_params(args, "none"),
        segmenter_sample_size=min(2000, args.num_base),
        seed=args.seed,
    )
    direct = build_lanns_index(base, config=config)
    direct_ids, direct_dists = direct.query_batch(queries, args.top_k)
    with tempfile.TemporaryDirectory() as root:
        fs = LocalHdfs(root)
        save_lanns_index(direct, fs, "bench-idx")
        service = OnlineService()
        service.deploy(fs, "bench-idx")
        served_ids, served_dists = service.query_batch(
            queries, args.top_k
        )
    if np.array_equal(served_ids, direct_ids) and np.array_equal(
        served_dists, direct_dists
    ):
        print(
            "OK: quantize=none through build/persist/deploy/serve is "
            "bit-identical to the direct float index"
        )
    else:
        print(
            "FAIL: quantize=none serving results differ from the "
            "direct float index"
        )
        ok = False

    if not args.smoke:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": "quantized_scoring",
            "rows": rows,
            "recall_ratio_int8": ratio,
            "qps": qps,
            "int8_shrink": shrink,
            "shared_candidates": compared,
        }
        (RESULTS_DIR / "quantized_scoring.json").write_text(
            json.dumps(payload, indent=2), encoding="utf-8"
        )
    if ok:
        print("quantized scoring benchmark: all assertions passed")
        return 0
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=(
            "Measure quantized beam search (int8 / PQ codes + exact "
            "rescore) against the float32 path"
        )
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI sizes; every assertion still runs -- the QPS win is a "
            "per-candidate memory-traffic effect that holds at small "
            "scale"
        ),
    )
    parser.add_argument("--num-base", type=int, default=20000)
    parser.add_argument("--num-queries", type=int, default=256)
    parser.add_argument("--dim", type=int, default=256)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument(
        "--ef", type=int, default=96, help="float and PQ serving beam"
    )
    parser.add_argument(
        "--int8-ef",
        type=int,
        default=84,
        help=(
            "int8 serving beam; leaner than --ef because the exact "
            "rescore keeps the returned top-k trustworthy"
        ),
    )
    parser.add_argument("--hnsw-m", type=int, default=16)
    parser.add_argument("--ef-construction", type=int, default=56)
    parser.add_argument(
        "--rescore-k",
        type=int,
        default=0,
        help="exact-rescore depth for the int8 path",
    )
    parser.add_argument(
        "--pq-rescore-k",
        type=int,
        default=192,
        help=(
            "exact-rescore depth for the PQ path; deeper than the "
            "beam because ADC codes are far lossier than int8"
        ),
    )
    parser.add_argument("--pq-subspaces", type=int, default=32)
    parser.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="lockstep serving batch size",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="interleaved timing passes per path (scored by fastest)",
    )
    parser.add_argument(
        "--min-recall-ratio",
        type=float,
        default=0.95,
        help="required int8/float recall@k ratio",
    )
    parser.add_argument(
        "--min-shrink",
        type=float,
        default=3.9,
        help="required float-bytes / int8-code-bytes ratio",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.num_base <= 0 or args.num_queries <= 0 or args.dim <= 0:
        parser.error("--num-base, --num-queries and --dim must be positive")
    if args.ef <= 0 or args.int8_ef <= 0:
        parser.error("--ef and --int8-ef must be positive")
    if args.smoke:
        # Shrink the builds, not the timing: passes are cheap and the
        # QPS assertion wants the full interleaved min-of-N.
        args.num_base = min(args.num_base, 12000)
        args.num_queries = min(args.num_queries, 128)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
