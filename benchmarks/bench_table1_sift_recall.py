"""Table 1: Recall on SIFT1M for HNSW vs RS/RH/APD partitionings.

Paper (1M vectors, d=128, topK=100, alpha=0.15, conf=0.95):

    Method     R@1     R@10    R@100
    HNSW       0.9912  0.9977  0.9981
    RS(1,8)    0.979   0.9865  0.987
    RH(1,8)    0.841   0.804   0.762
    APD(1,8)   0.9772  0.975   0.9616
    RS(2,4)    0.989   0.995   0.996
    RH(2,4)    0.9169  0.9068  0.885
    APD(2,4)   0.9898  0.9944  0.9908

Expected shape at our scale: HNSW ~= RS >= APD >> RH, and (2,4) beating
(1,8) for the learned segmenters (fewer segmentation levels per shard).
"""

from benchmarks.conftest import RECALL_KS, write_table

PAPER_R100 = {
    "HNSW": 0.9981,
    "RS(1,8)": 0.987,
    "RH(1,8)": 0.762,
    "APD(1,8)": 0.9616,
    "RS(2,4)": 0.996,
    "RH(2,4)": 0.885,
    "APD(2,4)": 0.9908,
}


def test_table1_recall(benchmark, sift_sweep, results_dir):
    sweep = sift_sweep  # heavy work happens in the shared fixture

    def collect_rows():
        ks = [k for k in RECALL_KS if k in sweep.hnsw_recalls]
        rows = [
            {
                "Method": "HNSW",
                **{f"R@{k}": sweep.hnsw_recalls[k] for k in ks},
                "paper_R@100": PAPER_R100["HNSW"],
            }
        ]
        for name in sweep.recalls:
            rows.append(
                {
                    "Method": name,
                    **{f"R@{k}": sweep.recalls[name][k] for k in ks},
                    "paper_R@100": PAPER_R100.get(name),
                }
            )
        return rows

    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    write_table(
        "table1_sift_recall",
        rows,
        title=(
            "Table 1 -- Recall on SIFT1M-like data "
            f"({sweep.dataset.num_base} base / "
            f"{sweep.dataset.num_queries} queries, d=128)"
        ),
        notes=(
            "Paper shape: HNSW ~= RS >= APD >> RH; (2,4) beats (1,8) for "
            "learned segmenters.  paper_R@100 column shows the published "
            "values for reference."
        ),
    )
    benchmark.extra_info["rows"] = rows

    # Shape assertions (the reproduction claim).
    by_method = {row["Method"]: row for row in rows}
    assert by_method["HNSW"]["R@100"] >= 0.9
    assert by_method["RS(1,8)"]["R@100"] >= 0.9
    # RH loses recall vs both HNSW and APD at the same partitioning.
    assert (
        by_method["RH(1,8)"]["R@100"]
        < by_method["APD(1,8)"]["R@100"]
    )
    assert (
        by_method["RH(1,8)"]["R@100"] < by_method["HNSW"]["R@100"] - 0.02
    )
    # Fewer segmentation levels per shard helps RH: (2,4) >= (1,8).
    assert (
        by_method["RH(2,4)"]["R@100"]
        >= by_method["RH(1,8)"]["R@100"] - 0.01
    )
