"""Table 3: SIFT1M query times (ms/query) with varying executor counts.

Paper (ms/query for 10k queries):

                 (1,8)-partitioning      (2,4)-partitioning
    Executors  HNSW   RS    RH    APD    RS    RH    APD
    2          50.4   58.8  21    16.8   49.2  46.8  44.4
    4          -      46.2  16.8  12.6   38.4  25.8  25.2
    8          -      25.8  13.2  10.2   33    17.4  17.4

Expected shape: RS slowest (probes all 8 segments), RH/APD much faster
(probe 1-2 segments under virtual spill); times fall with executors.
Reported numbers are the simulated E-executor makespan of the offline
query pipeline divided by the query count.
"""

from benchmarks.conftest import EXECUTOR_SWEEP, write_table


def test_table3_query_times(benchmark, sift_sweep, results_dir):
    sweep = sift_sweep

    def collect_rows():
        rows = []
        for executors in EXECUTOR_SWEEP:
            row = {"Executors": executors}
            row["HNSW"] = (
                sweep.hnsw_query_seconds_per_query * 1e3
                if executors == 2
                else None
            )
            for shards, segments in ((1, 8), (2, 4)):
                for segmenter in ("RS", "RH", "APD"):
                    name = f"{segmenter}({shards},{segments})"
                    row[f"{segmenter}({shards},{segments})"] = (
                        sweep.query_makespan_per_query(name, executors) * 1e3
                    )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    write_table(
        "table3_sift_query_times",
        rows,
        title=(
            "Table 3 -- Query time (ms/query) on SIFT1M-like data, "
            "simulated E-executor makespan"
        ),
        notes=(
            "Paper shape: RS probes all segments (slowest), APD/RH probe "
            "1-2 (fastest); times fall as executors grow."
        ),
    )
    benchmark.extra_info["rows"] = rows

    by_executors = {row["Executors"]: row for row in rows}
    # Learned segmenters beat RS at the same partitioning (segment pruning).
    assert by_executors[2]["APD(1,8)"] < by_executors[2]["RS(1,8)"]
    assert by_executors[2]["RH(1,8)"] < by_executors[2]["RS(1,8)"]
    # Scaling: 8 executors at least as fast as 2 for every method.
    for column in ("RS(1,8)", "RH(1,8)", "APD(1,8)", "RS(2,4)"):
        assert by_executors[8][column] <= by_executors[2][column] + 1e-9
