"""Ablation: HNSW neighbor-selection heuristic vs plain closest-M.

Section 3 of the paper builds on HNSW's ``SELECT-NEIGHBORS-HEURISTIC``.
This ablation shows why: on clustered data, plain closest-M selection
produces graphs whose links all point into the local cluster, recall
suffers at equal ef, and the effect is what the heuristic's
diversity-aware pruning prevents.
"""

import numpy as np
import pytest

from repro.data.datasets import load_dataset
from repro.eval.timing import measure_qps
from repro.hnsw.index import build_hnsw
from repro.hnsw.params import HnswParams
from repro.offline.recall import recall_at_k

from benchmarks.conftest import BENCH_HNSW, write_table

TOP_K = 10
EFS = [12, 24, 48, 96]


@pytest.fixture(scope="module")
def heuristic_setup():
    dataset = load_dataset("sift1m")
    limit = min(dataset.num_base, 6000)
    base = dataset.base[:limit]
    queries = dataset.queries
    from repro.offline.brute_force import exact_top_k

    truth, _ = exact_top_k(base, queries, TOP_K)
    with_heuristic = build_hnsw(base, params=BENCH_HNSW)
    simple_params = HnswParams(
        **{**BENCH_HNSW.to_dict(), "use_heuristic": False}
    )
    without_heuristic = build_hnsw(base, params=simple_params)
    return base, queries, truth, with_heuristic, without_heuristic


def test_ablation_neighbor_heuristic(benchmark, heuristic_setup, results_dir):
    base, queries, truth, with_h, without_h = heuristic_setup

    def run():
        rows = []
        for ef in EFS:
            row = {"ef": ef}
            for label, index in (
                ("heuristic", with_h),
                ("closest-M", without_h),
            ):
                ids = np.full((len(queries), TOP_K), -1, dtype=np.int64)
                for i, query in enumerate(queries):
                    found, _ = index.search(query, TOP_K, ef=ef)
                    ids[i, : len(found)] = found
                stats = measure_qps(
                    lambda q, idx=index, ef=ef: idx.search(q, TOP_K, ef=ef),
                    queries,
                )
                row[f"{label} R@{TOP_K}"] = recall_at_k(ids, truth, TOP_K)
                row[f"{label} QPS"] = stats["qps"]
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table(
        "ablation_neighbor_heuristic",
        rows,
        title=(
            "Ablation -- SELECT-NEIGHBORS-HEURISTIC vs closest-M "
            f"({len(base)} SIFT-like vectors, k={TOP_K})"
        ),
        notes=(
            "The diversity heuristic (the published HNSW default, used "
            "throughout LANNS) dominates plain closest-M selection at "
            "equal beam width on clustered data."
        ),
    )
    benchmark.extra_info["rows"] = rows

    # At every ef, the heuristic's recall is at least closest-M's.
    advantage = 0.0
    for row in rows:
        assert (
            row[f"heuristic R@{TOP_K}"]
            >= row[f"closest-M R@{TOP_K}"] - 0.005
        )
        advantage = max(
            advantage,
            row[f"heuristic R@{TOP_K}"] - row[f"closest-M R@{TOP_K}"],
        )
    # And it strictly wins somewhere in the sweep.
    assert advantage > 0.005
