"""Figure 4: probability of missing the true NN vs segmentation depth.

The paper plots ``P(L) = sum_{i=1..L} 1 / (2 (0.5+alpha)^i n)`` for
``n = 10000`` and increasing tree depth, concluding that only a few
levels (1-8 segments per shard) should be used.  We regenerate the
curves for the same ``n`` and several spill values, and additionally
validate the *empirical* failure rate of a real RH segmenter against
the Theorem 1 bound on a small dataset.
"""

import numpy as np

from repro.data.synthetic import clustered_gaussians, make_queries
from repro.segmenters.learner import learn_segmenter
from repro.segmenters.theory import (
    failure_bound_1nn,
    figure4_failure_probability,
)
from repro.offline.brute_force import exact_top_k

from benchmarks.conftest import write_table

ALPHAS = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30]
MAX_LEVEL = 10
N = 10_000  # the paper's n


def test_figure4_curves(benchmark, results_dir):
    def run():
        curves = {
            alpha: figure4_failure_probability(N, alpha, MAX_LEVEL)
            for alpha in ALPHAS
        }
        rows = []
        for level in range(1, MAX_LEVEL + 1):
            row = {"Level": level, "Segments": 2**level}
            for alpha in ALPHAS:
                row[f"alpha={alpha}"] = curves[alpha][level - 1]
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table(
        "figure4_failure_probability",
        rows,
        title=(
            f"Figure 4 -- P(missing true NN) vs tree depth, n={N} "
            "(analytic approximation from the paper)"
        ),
        notes=(
            "Paper shape: monotone increasing in depth, decreasing in "
            "alpha; tiny absolute values justify using only 1-8 segments "
            "(1-3 levels) per shard."
        ),
    )
    benchmark.extra_info["rows"] = rows

    # Monotone in depth for every alpha.
    for alpha in ALPHAS:
        column = [row[f"alpha={alpha}"] for row in rows]
        assert all(b > a for a, b in zip(column, column[1:]))
    # Decreasing in alpha at every depth.
    for row in rows:
        values = [row[f"alpha={alpha}"] for alpha in ALPHAS]
        assert all(b < a for a, b in zip(values, values[1:]))
    # The paper's operating range (<= 3 levels) keeps the bound small.
    assert rows[2][f"alpha={0.15}"] < 0.01


def test_figure4_empirical_vs_bound(benchmark, results_dir):
    """Measured RH miss rate stays under the Theorem 1 bound (averaged)."""

    def run():
        data = clustered_gaussians(2000, 16, num_clusters=12, seed=3)
        queries = make_queries(data, 150, seed=4, perturbation=0.25)
        truth, _ = exact_top_k(data, queries, 1)
        rows = []
        for depth, segments in ((1, 2), (2, 4), (3, 8)):
            segmenter = learn_segmenter(
                data, "rh", segments, alpha=0.15, seed=5,
                sample_size=len(data),
            )
            data_routes = segmenter.route_data_batch(data)
            query_routes = segmenter.route_query_batch(queries)
            misses = 0
            for row, query_route in enumerate(query_routes):
                nn_segment = data_routes[truth[row, 0]][0]
                if nn_segment not in query_route:
                    misses += 1
            measured = misses / len(queries)
            bound = float(
                np.mean(
                    [
                        failure_bound_1nn(query, data, 0.15, depth)
                        for query in queries[:40]
                    ]
                )
            )
            rows.append(
                {
                    "Levels": depth,
                    "Segments": segments,
                    "measured miss rate": measured,
                    "Theorem 1 bound (avg)": bound,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table(
        "figure4_empirical_validation",
        rows,
        title=(
            "Figure 4 companion -- measured RH miss rate vs Theorem 1 "
            "bound (n=2000, alpha=0.15)"
        ),
    )
    benchmark.extra_info["rows"] = rows
    for row in rows:
        assert row["measured miss rate"] <= row["Theorem 1 bound (avg)"] + 0.05
