"""Table 4: Recall on GIST1M (960-d) for HNSW vs RS/RH/APD (1,8).

Paper:

    Method     R@1    R@10   R@100
    HNSW       0.994  0.995  0.989
    RS(1,8)    0.995  0.999  0.999
    RH(1,8)    0.872  0.851  0.812
    APD(1,8)   0.931  0.912  0.905

Expected shape: RS ~= HNSW; RH drops ~15%; APD in between (GIST is
harder for APD than SIFT -- the paper sees 7% loss instead of 2%).
"""

from benchmarks.conftest import RECALL_KS, write_table

PAPER_R100 = {
    "HNSW": 0.989,
    "RS(1,8)": 0.999,
    "RH(1,8)": 0.812,
    "APD(1,8)": 0.905,
}


def test_table4_gist_recall(benchmark, gist_sweep, results_dir):
    sweep = gist_sweep

    def collect_rows():
        ks = [k for k in RECALL_KS if k in sweep.hnsw_recalls]
        rows = [
            {
                "Method": "HNSW",
                **{f"R@{k}": sweep.hnsw_recalls[k] for k in ks},
                "paper_R@100": PAPER_R100["HNSW"],
            }
        ]
        for name, recalls in sweep.recalls.items():
            rows.append(
                {
                    "Method": name,
                    **{f"R@{k}": recalls[k] for k in ks},
                    "paper_R@100": PAPER_R100.get(name),
                }
            )
        return rows

    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    write_table(
        "table4_gist_recall",
        rows,
        title=(
            "Table 4 -- Recall on GIST1M-like data "
            f"({sweep.dataset.num_base} base / "
            f"{sweep.dataset.num_queries} queries, d=960)"
        ),
        notes="Paper shape: RS ~= HNSW >= APD >> RH.",
    )
    benchmark.extra_info["rows"] = rows

    by_method = {row["Method"]: row for row in rows}
    assert by_method["HNSW"]["R@100"] >= 0.9
    assert by_method["RS(1,8)"]["R@100"] >= 0.9
    assert by_method["RH(1,8)"]["R@100"] < by_method["RS(1,8)"]["R@100"]
    assert by_method["RH(1,8)"]["R@100"] <= by_method["APD(1,8)"]["R@100"] + 0.02
