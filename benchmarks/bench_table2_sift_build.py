"""Table 2: SIFT1M build times with varying executor counts.

Paper (minutes for 1M points): HNSW 40 (2 executors, i.e. a single
machine); segmented builds ~8.2 at 2 executors down to ~4.3 at 8, nearly
identical across RS/RH/APD ("build times do not change across
segmenters ... because we pre-learn the segmenters").

Our build times for an E-executor cluster are the LPT simulated makespan
of the measured per-partition build tasks (DESIGN.md substitution #1).
Expected shape: partitioned builds several times faster than single
HNSW, improving with executor count; flat across segmenter kinds.
"""

from benchmarks.conftest import EXECUTOR_SWEEP, write_table

PAPER_MINUTES = {
    "HNSW": {2: 40.0},
    "RS": {2: 8.2, 4: 6.6, 8: 4.3},
    "RH": {2: 8.1, 4: 6.8, 8: 4.4},
    "APD": {2: 8.4, 4: 6.3, 8: 4.1},
}


def test_table2_build_times(benchmark, sift_sweep, results_dir):
    sweep = sift_sweep

    def collect_rows():
        rows = []
        for executors in EXECUTOR_SWEEP:
            row = {"Executors": executors}
            # The paper's HNSW column is a single-machine build.
            row["HNSW"] = (
                sweep.hnsw_build_seconds if executors == 2 else None
            )
            for segmenter in ("RS", "RH", "APD"):
                name = f"{segmenter}(1,8)"
                row[segmenter] = sweep.build_makespan(name, executors)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    write_table(
        "table2_sift_build_times",
        rows,
        title=(
            "Table 2 -- Build time (seconds) on SIFT1M-like data, "
            "(1,8)-partitioning, simulated E-executor makespan"
        ),
        notes=(
            "Paper, minutes at 1M scale: HNSW 40 | RS 8.2/6.6/4.3 | "
            "RH 8.1/6.8/4.4 | APD 8.4/6.3/4.1 for 2/4/8 executors. "
            "Shape to check: partitioned << HNSW; time falls with "
            "executors; flat across segmenters."
        ),
    )
    benchmark.extra_info["rows"] = rows

    by_executors = {row["Executors"]: row for row in rows}
    # Partitioned build at 2 executors is much faster than full HNSW.
    assert by_executors[2]["RS"] < sweep.hnsw_build_seconds * 0.7
    # More executors, less time (for every segmenter).
    for segmenter in ("RS", "RH", "APD"):
        assert by_executors[8][segmenter] <= by_executors[2][segmenter]
    # Build times are flat across segmenters (within 2x of each other).
    at2 = [by_executors[2][segmenter] for segmenter in ("RS", "RH", "APD")]
    assert max(at2) < 2.0 * min(at2)
