"""Batched serving throughput: `Broker.search_batch` vs sequential search.

The LANNS paper serves ~2.5k QPS per shard by amortising work across
concurrent traffic; this benchmark measures the reproduction's analogue,
the lockstep batched query engine.  One broker fronts a sharded index;
the same query stream is served twice:

1. *sequential* -- one `Broker.search` call per query (each internally a
   batch of one, so both modes exercise the identical kernel), and
2. *batched* -- `Broker.search_batch` over fixed-size batches, i.e. one
   shard fan-out and one vectorised multi-query merge per batch.

The batch path must deliver >= 2x the sequential QPS (the PR's
acceptance bar) and bit-identical per-query results.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py
    PYTHONPATH=src python benchmarks/bench_batch_throughput.py --smoke

``--smoke`` shrinks the workload to a few seconds and skips the speedup
assertion (tiny runs are timing noise); it still verifies parity, which
is what CI's benchmark smoke job guards.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.data.synthetic import clustered_gaussians, make_queries
from repro.eval.tables import format_table
from repro.eval.timing import measure_batch_qps, measure_qps
from repro.hnsw.params import HnswParams
from repro.online.broker import Broker
from repro.online.searcher import SearcherNode

RESULTS_DIR = Path(__file__).parent / "results"


def build_broker(args: argparse.Namespace) -> tuple[Broker, np.ndarray]:
    """Build the synthetic corpus, index it, and front it with a broker."""
    base = clustered_gaussians(args.num_base, args.dim, seed=args.seed)
    queries = make_queries(base, args.num_queries, seed=args.seed + 1)
    config = LannsConfig(
        num_shards=args.shards,
        num_segments=args.segments,
        segmenter="rh",
        hnsw=HnswParams(
            M=12, ef_construction=56, ef_search=args.ef, seed=args.seed
        ),
        segmenter_sample_size=min(2000, args.num_base),
        seed=args.seed,
    )
    index = build_lanns_index(base, config=config)
    searchers = [SearcherNode(shard_id) for shard_id in range(args.shards)]
    for shard_id, searcher in enumerate(searchers):
        searcher.host("default", index.shards[shard_id])
    broker = Broker(
        searchers, config, parallel_fanout=args.shards > 1
    )
    return broker, queries


def check_parity(
    broker: Broker, queries: np.ndarray, top_k: int, ef: int
) -> None:
    """Batched results must be identical to looping single-query search."""
    batch_ids, batch_dists = broker.search_batch(
        "default", queries, top_k, ef=ef
    )
    for row in range(queries.shape[0]):
        single_ids, single_dists = broker.search(
            "default", queries[row], top_k, ef=ef
        )
        count = len(single_ids)
        assert (batch_ids[row, :count] == single_ids).all(), (
            f"batch/single id mismatch at query {row}"
        )
        assert (batch_ids[row, count:] == -1).all(), (
            f"unexpected padding at query {row}"
        )
        assert (batch_dists[row, :count] == single_dists).all(), (
            f"batch/single distance mismatch at query {row}"
        )


def run(args: argparse.Namespace) -> int:
    broker, queries = build_broker(args)
    print(
        f"corpus: {args.num_base} x {args.dim}, {args.shards} shard(s) x "
        f"{args.segments} segment(s), {queries.shape[0]} queries, "
        f"top_k={args.top_k}, ef={args.ef}"
    )
    check_parity(broker, queries[: min(24, queries.shape[0])], args.top_k, args.ef)
    print("parity: batched results identical to sequential ✓")

    sequential_qps = measure_qps(
        lambda query: broker.search("default", query, args.top_k, ef=args.ef),
        queries,
    )["qps"]
    rows = []
    best_speedup = 0.0
    for batch_size in args.batch_sizes:
        batched_qps = measure_batch_qps(
            lambda batch: broker.search_batch(
                "default", batch, args.top_k, ef=args.ef
            ),
            queries,
            batch_size,
        )["qps"]
        speedup = batched_qps / sequential_qps
        best_speedup = max(best_speedup, speedup)
        rows.append(
            {
                "batch_size": batch_size,
                "sequential_qps": sequential_qps,
                "batched_qps": batched_qps,
                "speedup": speedup,
            }
        )
    text = format_table(
        rows,
        title=(
            "Batched serving throughput (Broker.search_batch vs "
            "sequential Broker.search)"
        ),
    )
    print("\n" + text + "\n")

    if not args.smoke:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "batch_throughput.txt").write_text(
            text + "\n", encoding="utf-8"
        )
        (RESULTS_DIR / "batch_throughput.json").write_text(
            json.dumps(
                {"name": "batch_throughput", "rows": rows},
                indent=2,
            ),
            encoding="utf-8",
        )
        if best_speedup < args.min_speedup:
            print(
                f"FAIL: best batched speedup {best_speedup:.2f}x is below "
                f"the required {args.min_speedup:.1f}x"
            )
            return 1
        print(
            f"OK: best batched speedup {best_speedup:.2f}x >= "
            f"{args.min_speedup:.1f}x"
        )
    else:
        print(
            f"smoke OK (best speedup {best_speedup:.2f}x; assertion "
            "skipped at smoke sizes)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=(
            "Measure batched vs sequential serving QPS through the broker"
        )
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, parity check only (for CI)",
    )
    parser.add_argument("--num-base", type=int, default=8000)
    parser.add_argument("--num-queries", type=int, default=256)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--segments", type=int, default=2)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--ef", type=int, default=48)
    parser.add_argument(
        "--batch-sizes",
        type=int,
        nargs="+",
        default=[16, 32, 64],
        help="batch sizes to sweep",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required batched/sequential QPS ratio (non-smoke runs)",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if any(size <= 0 for size in args.batch_sizes):
        parser.error(f"--batch-sizes must be positive, got {args.batch_sizes}")
    if args.num_base <= 0 or args.num_queries <= 0 or args.dim <= 0:
        parser.error("--num-base, --num-queries and --dim must be positive")
    if args.smoke:
        args.num_base = min(args.num_base, 1200)
        args.num_queries = min(args.num_queries, 48)
        args.batch_sizes = [16]
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
