"""Batched serving throughput: `Broker.search_batch` vs sequential search.

The LANNS paper serves ~2.5k QPS per shard by amortising work across
concurrent traffic; this benchmark measures the reproduction's analogue,
the lockstep batched query engine.  One broker fronts a sharded index;
the same query stream is served twice:

1. *sequential* -- one `Broker.search` call per query (each internally a
   batch of one, so both modes exercise the identical kernel), and
2. *batched* -- `Broker.search_batch` over fixed-size batches, i.e. one
   shard fan-out and one vectorised multi-query merge per batch.

The batch path must deliver >= 2x the sequential QPS (the PR-1
acceptance bar) and bit-identical per-query results.

With ``--clients N`` the benchmark instead load-tests the PR-2
concurrent serving core: ``N`` closed-loop client threads issue
*single-query* calls against the micro-batching broker (admission
coalesces them into lockstep batches), then the same query set is
re-served out of the broker's result cache.  Acceptance bars:
micro-batched concurrent singles >= 1.5x the PR-1 sequential path, and
cached repeat queries >= 5x uncached -- with per-query parity (identical
ids *and* distances) asserted in-run for both.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py
    PYTHONPATH=src python benchmarks/bench_batch_throughput.py --clients 8
    PYTHONPATH=src python benchmarks/bench_batch_throughput.py --smoke

``--smoke`` shrinks the workload to a few seconds and skips the speedup
assertions (tiny runs are timing noise); it still verifies parity, which
is what CI's benchmark smoke job guards.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.core.index import LannsIndex
from repro.data.synthetic import clustered_gaussians, make_queries
from repro.eval.harness import concurrent_serving_throughput
from repro.eval.tables import format_table
from repro.eval.timing import measure_batch_qps, measure_qps
from repro.hnsw.params import HnswParams
from repro.online.broker import Broker
from repro.online.searcher import SearcherNode

RESULTS_DIR = Path(__file__).parent / "results"


def build_index(args: argparse.Namespace) -> tuple[LannsIndex, np.ndarray]:
    """Build the synthetic corpus and index it."""
    base = clustered_gaussians(args.num_base, args.dim, seed=args.seed)
    queries = make_queries(base, args.num_queries, seed=args.seed + 1)
    config = LannsConfig(
        num_shards=args.shards,
        num_segments=args.segments,
        segmenter="rh",
        hnsw=HnswParams(
            M=12, ef_construction=56, ef_search=args.ef, seed=args.seed
        ),
        segmenter_sample_size=min(2000, args.num_base),
        seed=args.seed,
    )
    return build_lanns_index(base, config=config), queries


def build_broker(args: argparse.Namespace) -> tuple[Broker, np.ndarray]:
    """Build the synthetic corpus, index it, and front it with a broker."""
    index, queries = build_index(args)
    searchers = [SearcherNode(shard_id) for shard_id in range(args.shards)]
    for shard_id, searcher in enumerate(searchers):
        searcher.host("default", index.shards[shard_id])
    broker = Broker(
        searchers, index.config, parallel_fanout=args.shards > 1
    )
    return broker, queries


def check_parity(
    broker: Broker, queries: np.ndarray, top_k: int, ef: int
) -> None:
    """Batched results must be identical to looping single-query search."""
    batch_ids, batch_dists = broker.search_batch(
        "default", queries, top_k, ef=ef
    )
    for row in range(queries.shape[0]):
        single_ids, single_dists = broker.search(
            "default", queries[row], top_k, ef=ef
        )
        count = len(single_ids)
        assert (batch_ids[row, :count] == single_ids).all(), (
            f"batch/single id mismatch at query {row}"
        )
        assert (batch_ids[row, count:] == -1).all(), (
            f"unexpected padding at query {row}"
        )
        assert (batch_dists[row, :count] == single_dists).all(), (
            f"batch/single distance mismatch at query {row}"
        )


def run_concurrent(args: argparse.Namespace) -> int:
    """The ``--clients`` mode: concurrent singles + heavy-hitter cache."""
    index, queries = build_index(args)
    print(
        f"corpus: {args.num_base} x {args.dim}, {args.shards} shard(s) x "
        f"{args.segments} segment(s), {queries.shape[0]} queries, "
        f"top_k={args.top_k}, ef={args.ef}, clients={args.clients}, "
        f"max_batch={args.max_batch}, max_wait_ms={args.max_wait_ms}"
    )
    report = concurrent_serving_throughput(
        index,
        queries,
        args.top_k,
        ef=args.ef,
        clients=args.clients,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
    )
    print("parity: concurrent + cached results identical to sequential ✓")
    rows = [
        {
            "mode": "sequential (PR-1 path)",
            "qps": report["sequential"]["qps"],
            "p99_ms": report["sequential"]["p99_ms"],
            "speedup": 1.0,
        },
        {
            "mode": f"micro-batched x{report['clients']} clients",
            "qps": report["concurrent"]["qps"],
            "p99_ms": report["concurrent"]["p99_ms"],
            "speedup": report["concurrent_speedup"],
        },
        {
            "mode": "cached repeat queries",
            "qps": report["cached"]["qps"],
            "p99_ms": report["cached"]["p99_ms"],
            "speedup": report["cache_speedup"],
        },
    ]
    text = format_table(
        rows,
        title=(
            "Concurrent serving core (micro-batched singles + result "
            "cache vs sequential)"
        ),
    )
    print("\n" + text + "\n")
    core = report["core_stats"]
    micro = core["microbatch"]
    if micro is not None:
        print(
            f"micro-batches: {micro['batches_executed']} for "
            f"{micro['rows_executed']} rows "
            f"(largest {micro['largest_batch']}); cache: "
            f"{core['cache']['hits']} hits / {core['cache']['misses']} misses"
        )
    else:
        print(
            "micro-batching disabled (--max-batch 1); cache: "
            f"{core['cache']['hits']} hits / {core['cache']['misses']} misses"
        )
    stages = core["stages"]
    for stage in ("queue_wait", "fanout", "merge"):
        if stage in stages:
            print(
                f"  {stage:>10}: mean {stages[stage]['mean_ms']:.3f} ms  "
                f"p99 {stages[stage]['p99_ms']:.3f} ms  "
                f"(n={stages[stage]['count']})"
            )

    if args.smoke:
        print(
            f"smoke OK (concurrent {report['concurrent_speedup']:.2f}x, "
            f"cached {report['cache_speedup']:.2f}x; assertions skipped "
            "at smoke sizes)"
        )
        return 0
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "name": "concurrent_throughput",
        "clients": report["clients"],
        "rows": rows,
        "stages": stages,
    }
    (RESULTS_DIR / "concurrent_throughput.json").write_text(
        json.dumps(payload, indent=2), encoding="utf-8"
    )
    (RESULTS_DIR / "concurrent_throughput.txt").write_text(
        text + "\n", encoding="utf-8"
    )
    failed = False
    if report["concurrent_speedup"] < args.min_concurrent_speedup:
        print(
            f"FAIL: micro-batched concurrent speedup "
            f"{report['concurrent_speedup']:.2f}x is below the required "
            f"{args.min_concurrent_speedup:.1f}x"
        )
        failed = True
    if report["cache_speedup"] < args.min_cache_speedup:
        print(
            f"FAIL: cached repeat-query speedup "
            f"{report['cache_speedup']:.2f}x is below the required "
            f"{args.min_cache_speedup:.1f}x"
        )
        failed = True
    if failed:
        return 1
    print(
        f"OK: concurrent {report['concurrent_speedup']:.2f}x >= "
        f"{args.min_concurrent_speedup:.1f}x, cached "
        f"{report['cache_speedup']:.2f}x >= {args.min_cache_speedup:.1f}x"
    )
    return 0


def run(args: argparse.Namespace) -> int:
    broker, queries = build_broker(args)
    print(
        f"corpus: {args.num_base} x {args.dim}, {args.shards} shard(s) x "
        f"{args.segments} segment(s), {queries.shape[0]} queries, "
        f"top_k={args.top_k}, ef={args.ef}"
    )
    check_parity(broker, queries[: min(24, queries.shape[0])], args.top_k, args.ef)
    print("parity: batched results identical to sequential ✓")

    sequential_qps = measure_qps(
        lambda query: broker.search("default", query, args.top_k, ef=args.ef),
        queries,
    )["qps"]
    rows = []
    best_speedup = 0.0
    for batch_size in args.batch_sizes:
        batched_qps = measure_batch_qps(
            lambda batch: broker.search_batch(
                "default", batch, args.top_k, ef=args.ef
            ),
            queries,
            batch_size,
        )["qps"]
        speedup = batched_qps / sequential_qps
        best_speedup = max(best_speedup, speedup)
        rows.append(
            {
                "batch_size": batch_size,
                "sequential_qps": sequential_qps,
                "batched_qps": batched_qps,
                "speedup": speedup,
            }
        )
    text = format_table(
        rows,
        title=(
            "Batched serving throughput (Broker.search_batch vs "
            "sequential Broker.search)"
        ),
    )
    print("\n" + text + "\n")

    if not args.smoke:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "batch_throughput.txt").write_text(
            text + "\n", encoding="utf-8"
        )
        (RESULTS_DIR / "batch_throughput.json").write_text(
            json.dumps(
                {"name": "batch_throughput", "rows": rows},
                indent=2,
            ),
            encoding="utf-8",
        )
        if best_speedup < args.min_speedup:
            print(
                f"FAIL: best batched speedup {best_speedup:.2f}x is below "
                f"the required {args.min_speedup:.1f}x"
            )
            return 1
        print(
            f"OK: best batched speedup {best_speedup:.2f}x >= "
            f"{args.min_speedup:.1f}x"
        )
    else:
        print(
            f"smoke OK (best speedup {best_speedup:.2f}x; assertion "
            "skipped at smoke sizes)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=(
            "Measure batched vs sequential serving QPS through the broker"
        )
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, parity check only (for CI)",
    )
    parser.add_argument("--num-base", type=int, default=8000)
    parser.add_argument("--num-queries", type=int, default=256)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--segments", type=int, default=2)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--ef", type=int, default=48)
    parser.add_argument(
        "--batch-sizes",
        type=int,
        nargs="+",
        default=[16, 32, 64],
        help="batch sizes to sweep",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required batched/sequential QPS ratio (non-smoke runs)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=0,
        help=(
            "load-test the concurrent serving core with this many "
            "closed-loop client threads (0 = classic batched-vs-"
            "sequential mode)"
        ),
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="micro-batch flush size (--clients mode)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batch flush deadline in ms (--clients mode)",
    )
    parser.add_argument(
        "--min-concurrent-speedup",
        type=float,
        default=1.5,
        help=(
            "required micro-batched-concurrent/sequential QPS ratio "
            "(--clients mode, non-smoke)"
        ),
    )
    parser.add_argument(
        "--min-cache-speedup",
        type=float,
        default=5.0,
        help=(
            "required cached/uncached QPS ratio "
            "(--clients mode, non-smoke)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if any(size <= 0 for size in args.batch_sizes):
        parser.error(f"--batch-sizes must be positive, got {args.batch_sizes}")
    if args.num_base <= 0 or args.num_queries <= 0 or args.dim <= 0:
        parser.error("--num-base, --num-queries and --dim must be positive")
    if args.clients < 0:
        parser.error(f"--clients must be >= 0, got {args.clients}")
    if args.max_batch <= 0:
        parser.error(f"--max-batch must be positive, got {args.max_batch}")
    if args.max_wait_ms < 0:
        parser.error(f"--max-wait-ms must be >= 0, got {args.max_wait_ms}")
    if args.smoke:
        args.num_base = min(args.num_base, 1200)
        args.num_queries = min(args.num_queries, 48)
        args.batch_sizes = [16]
    if args.clients > 0:
        return run_concurrent(args)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
