"""``python -m repro.analysis`` — run the invariant linter."""

import sys

from .linter import main

sys.exit(main())
