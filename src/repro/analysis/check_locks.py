"""Lock-discipline checker: per-class guarded-by inference.

For every class that creates a ``threading.Lock`` / ``RLock`` /
``Condition`` attribute, infer which instance attributes the lock
guards: any attribute *written* (rebound, aug-assigned, stored through
a subscript/attribute, or mutated via a known mutating method such as
``append``/``setdefault``/``move_to_end``) inside a ``with
self.<lock>:`` block in a non-``__init__`` method is considered
guarded by that lock.  Every other access to a guarded attribute —
read *or* write — must then also happen while holding one of its
guarding locks.

Exemptions, matching the repo's concurrency conventions:

- ``__init__`` (and ``__post_init__``): the object is not yet shared,
  so unguarded construction-time writes are fine — this is the classic
  guarded-by false positive the checker must not emit.
- methods whose name ends in ``_locked``: the repo's convention for
  "caller already holds the lock" helpers (``_select_locked``,
  ``_pop_locked``); their bodies are treated as lock-held context.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .diagnostics import Finding, ModuleSource

CHECKER = "lock-discipline"

LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

# Method names that mutate their receiver in place.
MUTATORS = {
    "append", "appendleft", "add", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popleft", "popitem", "remove",
    "setdefault", "update", "move_to_end", "sort", "reverse",
    "__setitem__", "__delitem__",
}

EXEMPT_METHODS = {"__init__", "__post_init__", "__del__", "__repr__"}


def _is_lock_factory(call: ast.expr) -> bool:
    """True for ``threading.Lock()`` / ``Lock()``-style creations."""
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr in LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in LOCK_FACTORIES
    return False


def _self_attr(node: ast.expr) -> str | None:
    """Return ``X`` when node is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class _Access:
    attr: str
    lineno: int
    col: int
    held: frozenset[str]
    is_write: bool
    method: str
    exempt: bool = False


@dataclass
class _ClassInfo:
    name: str
    lock_attrs: set[str] = field(default_factory=set)
    accesses: list[_Access] = field(default_factory=list)


class _MethodWalker(ast.NodeVisitor):
    """Walk one method body tracking the set of held ``self.<lock>``s."""

    def __init__(
        self,
        info: _ClassInfo,
        method: str,
        parents: dict[ast.AST, ast.AST],
        exempt: bool,
    ) -> None:
        self.info = info
        self.method = method
        self.parents = parents
        self.exempt = exempt
        self.held: tuple[str, ...] = ()

    def visit_With(self, node: ast.With) -> None:
        acquired = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.info.lock_attrs:
                acquired.append(attr)
        if acquired:
            saved = self.held
            self.held = saved + tuple(acquired)
            for item in node.items:
                self.visit(item)
            for stmt in node.body:
                self.visit(stmt)
            self.held = saved
        else:
            self.generic_visit(node)

    # Nested defs run later with unknown lock state — skip their bodies
    # rather than misattribute the enclosing held set to them.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is None or attr in self.info.lock_attrs:
            self.generic_visit(node)
            return
        self.info.accesses.append(
            _Access(
                attr=attr,
                lineno=node.lineno,
                col=node.col_offset,
                held=frozenset(self.held),
                is_write=self._is_write(node),
                method=self.method,
                exempt=self.exempt,
            )
        )
        self.generic_visit(node)

    def _is_write(self, node: ast.expr) -> bool:
        """Classify a ``self.X`` occurrence as a write/mutation.

        Covers direct stores (``self.x = v``, ``self.x += v``, ``del
        self.x``), stores *through* the attribute (``self.x[k] = v``,
        ``self.x.field = v``), and in-place mutating calls
        (``self.x.append(v)``, ``self.x.setdefault(k, d).append(v)``).
        """
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            return True
        # Climb the Attribute/Subscript chain this node roots.
        current: ast.AST = node
        while True:
            parent = self.parents.get(current)
            if isinstance(parent, (ast.Attribute, ast.Subscript)) and (
                getattr(parent, "value", None) is current
            ):
                if isinstance(parent.ctx, (ast.Store, ast.Del)):
                    return True
                current = parent
                continue
            if (
                isinstance(parent, ast.Call)
                and isinstance(current, ast.Attribute)
                and parent.func is current
                and current.attr in MUTATORS
            ):
                return True
            return False


def _build_parent_map(root: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _collect_class(node: ast.ClassDef) -> _ClassInfo:
    info = _ClassInfo(name=node.name)
    # Pass 1: which self attributes hold locks.
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign) and _is_lock_factory(sub.value):
            for target in sub.targets:
                attr = _self_attr(target)
                if attr is not None:
                    info.lock_attrs.add(attr)
    if not info.lock_attrs:
        return info
    # Pass 2: every self.<attr> access per method, with held-lock sets.
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        exempt = stmt.name in EXEMPT_METHODS or stmt.name.endswith("_locked")
        parents = _build_parent_map(stmt)
        walker = _MethodWalker(info, stmt.name, parents, exempt)
        for body_stmt in stmt.body:
            walker.visit(body_stmt)
    return info


def run(module: ModuleSource) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = _collect_class(node)
        if not info.lock_attrs:
            continue
        # Guarded-by inference: attr -> locks it was written under,
        # outside exempt methods.
        guarded: dict[str, set[str]] = {}
        write_sites: dict[str, int] = {}
        for acc in info.accesses:
            if acc.is_write and acc.held and not acc.exempt:
                guarded.setdefault(acc.attr, set()).update(acc.held)
                write_sites.setdefault(acc.attr, acc.lineno)
        for acc in info.accesses:
            locks = guarded.get(acc.attr)
            if not locks or acc.exempt:
                continue
            if acc.held & locks:
                continue
            kind = "written" if acc.is_write else "read"
            lock_list = ", ".join(f"self.{lock}" for lock in sorted(locks))
            findings.append(
                Finding(
                    checker=CHECKER,
                    rule="unguarded-access",
                    path=module.path,
                    line=acc.lineno,
                    col=acc.col,
                    symbol=f"{info.name}.{acc.method}",
                    message=(
                        f"'self.{acc.attr}' is guarded by {lock_list} "
                        f"(first guarded write at line "
                        f"{write_sites[acc.attr]}) but {kind} here without "
                        "holding it"
                    ),
                )
            )
    return findings
