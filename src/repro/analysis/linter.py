"""Driver for the repo-specific invariant linter.

Usage (equivalent)::

    python -m repro.cli lint [--format github] [paths...]
    python -m repro.analysis [--format github] [paths...]

Walks ``src/repro``, dispatches each module to the checkers whose
scope covers it, filters findings against ``analysis/baseline.toml``
and exits non-zero when anything unsuppressed remains.  See
``README.md`` ("Static analysis & sanitizers") for how to read a
diagnostic and when a baseline entry is acceptable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import check_async, check_determinism, check_errors, check_locks
from .baseline import BaselineError, apply_baseline, load_baseline
from .check_wire import run_wire
from .diagnostics import Finding, ModuleSource

#: Kernel modules whose outputs are pinned bit-identical.
DETERMINISM_SCOPE = ("repro/hnsw/", "repro/distance/", "repro/segmenters/")
#: Event-loop modules where a blocking call stalls the fan-out.
ASYNC_SCOPE = ("repro/net/", "repro/online/")
#: Modules whose exceptions are routed on by type.
ERROR_SCOPE = ("repro/net/", "repro/online/", "repro/cli.py")

WIRE_TRIO = (
    "repro/net/protocol.py",
    "repro/net/client.py",
    "repro/net/server.py",
)


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _in_scope(rel_path: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        rel_path.endswith(p) if p.endswith(".py") else p in rel_path
        for p in prefixes
    )


def default_repo_root() -> Path:
    # .../src/repro/analysis/linter.py -> repo root three levels up from src
    return Path(__file__).resolve().parents[3]


def collect_files(root: Path, paths: list[Path] | None = None) -> list[Path]:
    if paths:
        out: list[Path] = []
        for p in paths:
            if p.is_dir():
                out.extend(sorted(p.rglob("*.py")))
            else:
                out.append(p)
        return out
    src = root / "src" / "repro"
    return sorted(src.rglob("*.py"))


def run_lint(
    root: Path, paths: list[Path] | None = None
) -> tuple[list[Finding], list[str]]:
    """Returns (findings, parse_errors); the baseline is *not* applied."""
    findings: list[Finding] = []
    errors: list[str] = []
    taxonomy: set[str] = set()
    errors_py = root / "src" / "repro" / "errors.py"
    if errors_py.exists():
        taxonomy = check_errors.load_taxonomy(errors_py)

    modules: dict[str, ModuleSource] = {}
    for path in collect_files(root, paths):
        rel = _rel(path, root)
        try:
            module = ModuleSource.parse(rel, path.read_text())
        except (OSError, SyntaxError) as exc:
            errors.append(f"{rel}: {exc}")
            continue
        modules[rel] = module
        findings.extend(check_locks.run(module))
        if _in_scope(rel, ASYNC_SCOPE):
            findings.extend(check_async.run(module))
        if _in_scope(rel, DETERMINISM_SCOPE):
            findings.extend(check_determinism.run(module))
        if _in_scope(rel, ERROR_SCOPE):
            findings.extend(check_errors.run(module, taxonomy))

    trio = [
        next((m for r, m in modules.items() if r.endswith(part)), None)
        for part in WIRE_TRIO
    ]
    if trio[0] is not None:
        findings.extend(run_wire(trio[0], trio[1], trio[2]))
    findings.sort(key=Finding.sort_key)
    return findings, errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli lint",
        description="Repo-specific invariant linter "
        "(lock discipline, asyncio hygiene, determinism, "
        "error discipline, wire-protocol sync).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="diagnostic format: human text or GitHub ::error annotations",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="suppression baseline (default: src/repro/analysis/baseline.toml)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    args = parser.parse_args(argv)

    root = default_repo_root()
    baseline_path = args.baseline or Path(__file__).parent / "baseline.toml"

    findings, errors = run_lint(root, args.paths or None)
    for err in errors:
        print(f"lint: cannot analyse {err}", file=sys.stderr)

    stale = []
    if not args.no_baseline:
        try:
            suppressions = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"lint: invalid baseline: {exc}", file=sys.stderr)
            return 2
        findings, stale = apply_baseline(findings, suppressions)

    for finding in findings:
        print(
            finding.format_github()
            if args.format == "github"
            else finding.format_text()
        )
    for supp in stale:
        print(
            f"lint: stale baseline entry at "
            f"{baseline_path.name}:{supp.lineno} "
            f"({supp.checker}/{supp.file}) matched nothing — remove it",
            file=sys.stderr,
        )

    if findings or errors:
        total = len(findings)
        print(
            f"lint: {total} finding{'s' if total != 1 else ''}"
            + (f", {len(errors)} unparseable file(s)" if errors else ""),
            file=sys.stderr,
        )
        return 1
    print("lint: clean", file=sys.stderr)
    return 0
