"""Error-discipline checker for the serving tier.

``net/`` and ``online/`` surface failures to callers that route on
exception type (retry vs fail vs degrade), so every exception raised
there must come from the ``repro.errors`` taxonomy or a small builtin
whitelist.  Silent swallows — ``except Exception: pass`` (or bare
``except``, or ``contextlib.suppress(Exception)``) — are banned: catch
the specific exception, or log and re-raise.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .diagnostics import Finding, ModuleSource, enclosing_symbol

CHECKER = "error-discipline"

BUILTIN_WHITELIST = {
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "RuntimeError",
    "NotImplementedError",
    "TimeoutError",
    "OSError",
    "FileNotFoundError",
    "FileExistsError",
    "InterruptedError",
    "StopIteration",
    "StopAsyncIteration",
    "AssertionError",
    "SystemExit",
    "KeyboardInterrupt",
}

# Dotted constructors that are fine to raise (stdlib error types with
# established contracts).
DOTTED_WHITELIST = {
    ("argparse", "ArgumentTypeError"),
    ("asyncio", "TimeoutError"),
    ("asyncio", "CancelledError"),
}

BROAD_HANDLERS = {"Exception", "BaseException"}


def load_taxonomy(errors_path: Path) -> set[str]:
    """Class names defined in ``repro/errors.py`` (parsed, not imported)."""
    tree = ast.parse(errors_path.read_text(), filename=str(errors_path))
    return {
        node.name for node in ast.walk(tree) if isinstance(node, ast.ClassDef)
    }


def _is_silent_body(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        if isinstance(stmt, ast.Continue):
            continue
        return False
    return True


def _handler_is_broad(handler: ast.ExceptHandler) -> str | None:
    if handler.type is None:
        return "bare except"
    names = []
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for t in types:
        if isinstance(t, ast.Name):
            names.append(t.id)
    for name in names:
        if name in BROAD_HANDLERS:
            return f"except {name}"
    return None


def run(module: ModuleSource, taxonomy: set[str] | None = None) -> list[Finding]:
    taxonomy = taxonomy or set()
    findings: list[Finding] = []

    def flag(node: ast.AST, rule: str, message: str) -> None:
        findings.append(
            Finding(
                checker=CHECKER,
                rule=rule,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                symbol=enclosing_symbol(module.tree, node.lineno),
                message=message,
            )
        )

    # Locally defined exception classes are part of the module's contract.
    local_classes = {
        node.name
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ClassDef)
        and any(
            isinstance(base, ast.Name)
            and (
                base.id in taxonomy
                or base.id.endswith("Error")
                or base.id in ("Exception", "BaseException")
            )
            or isinstance(base, ast.Attribute)
            for base in node.bases
        )
    }

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Raise) and node.exc is not None:
            ctor = node.exc
            if isinstance(ctor, ast.Call):
                ctor = ctor.func
            if isinstance(ctor, ast.Name):
                name = ctor.id
                if name[:1].isupper() and not (
                    name in taxonomy
                    or name in BUILTIN_WHITELIST
                    or name in local_classes
                ):
                    flag(
                        node,
                        "off-taxonomy-raise",
                        f"raising '{name}', which is neither a "
                        "repro.errors taxonomy class nor a whitelisted "
                        "builtin; callers route on exception type",
                    )
            elif isinstance(ctor, ast.Attribute):
                dotted_parts: list[str] = []
                cur: ast.expr = ctor
                while isinstance(cur, ast.Attribute):
                    dotted_parts.append(cur.attr)
                    cur = cur.value
                if isinstance(cur, ast.Name):
                    dotted_parts.append(cur.id)
                dotted = tuple(reversed(dotted_parts))
                # Lowercase tails (`failures.get(...)`) re-raise a stored
                # exception *instance*; only class-looking constructors
                # (Capitalised final attribute) answer to the taxonomy.
                if (
                    len(dotted) >= 2
                    and dotted[-1][:1].isupper()
                    and dotted not in DOTTED_WHITELIST
                ):
                    flag(
                        node,
                        "off-taxonomy-raise",
                        f"raising '{'.'.join(dotted)}', which is not a "
                        "whitelisted dotted exception constructor",
                    )
        elif isinstance(node, ast.ExceptHandler):
            broad = _handler_is_broad(node)
            if broad and _is_silent_body(node.body):
                flag(
                    node,
                    "silent-swallow",
                    f"'{broad}: pass' silently swallows every failure; "
                    "catch the specific exception or log and re-raise",
                )
        elif isinstance(node, ast.withitem):
            expr = node.context_expr
            if isinstance(expr, ast.Call):
                func = expr.func
                fname = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id
                    if isinstance(func, ast.Name)
                    else ""
                )
                if fname == "suppress" and any(
                    isinstance(arg, ast.Name) and arg.id in BROAD_HANDLERS
                    for arg in expr.args
                ):
                    flag(
                        expr,
                        "silent-swallow",
                        "'contextlib.suppress(Exception)' silently swallows "
                        "every failure; suppress the specific exception "
                        "types instead",
                    )
    return findings
