"""Repo-specific static analysis + runtime concurrency sanitizer.

Two halves:

- an AST invariant linter (``python -m repro.analysis`` /
  ``repro.cli lint``) with five checkers tuned to this codebase:
  lock-discipline, asyncio-hygiene, determinism, error-discipline and
  wire-protocol sync, filtered through a justified suppression
  baseline (``baseline.toml``);
- a runtime concurrency sanitizer (:mod:`repro.analysis.sanitizer`)
  enabled by ``REPRO_SANITIZE=1`` that instruments every lock created
  after install, detects lock-order inversions and blocking calls made
  while holding a lock, and is wired into tier-1 via a conftest
  fixture.
"""

from .baseline import BaselineError, Suppression, load_baseline, parse_baseline
from .diagnostics import Finding, ModuleSource
from .linter import main, run_lint

__all__ = [
    "BaselineError",
    "Finding",
    "ModuleSource",
    "Suppression",
    "load_baseline",
    "main",
    "parse_baseline",
    "run_lint",
]
