"""Runtime concurrency sanitizer.

``install()`` monkeypatches the ``threading.Lock`` / ``RLock`` /
``Condition`` factories so every lock created afterwards is a tracked
wrapper, keyed by its creation site (``file:line``).  Two properties
are checked continuously, per process:

- **lock-order inversions**: a global acquisition-order graph gains an
  edge ``A -> B`` whenever a thread acquires ``B`` while holding
  ``A``; a new edge that closes a cycle is a potential deadlock, even
  if the schedule that would actually deadlock never ran.
- **hold-while-blocking**: blocking primitives (``time.sleep``,
  ``concurrent.futures.Future.result``, ``socket.create_connection``
  and blocking ``socket.socket`` methods) called while the thread
  holds any tracked lock — the classic way one slow peer stalls every
  thread queued on that lock.

Violations are *recorded*, not raised, so a full test run reports all
of them; the tier-1 conftest installs the sanitizer when
``REPRO_SANITIZE=1`` and asserts ``violations()`` is empty at session
end.  Locks are identified by creation site rather than instance so
the order graph generalises across e.g. per-client lock instances;
edges between two locks from the *same* site are ignored (same-site
instances are siblings, not an ordering).
"""

from __future__ import annotations

import concurrent.futures
import socket
import threading
import time
import traceback
from dataclasses import dataclass, field

_real_lock = threading.Lock
_real_rlock = threading.RLock
_real_condition = threading.Condition
_real_sleep = time.sleep
_real_future_result = concurrent.futures.Future.result
_real_create_connection = socket.create_connection


@dataclass
class Violation:
    kind: str  # "lock-order" | "blocking-call"
    message: str
    stack: str = ""

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


@dataclass
class _State:
    installed: bool = False
    # site -> set of sites acquired while holding it
    order_graph: dict[str, set[str]] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)
    # bookkeeping lock: a *raw* primitive so instrumentation never
    # recurses into itself
    guard: object = field(default_factory=_real_lock)
    seen_edges: set[tuple[str, str]] = field(default_factory=set)
    seen_blocking: set[tuple[str, str]] = field(default_factory=set)


_state = _State()
_tls = threading.local()


def _held() -> list:
    stack = getattr(_tls, "held", None)
    if stack is None:
        stack = []
        _tls.held = stack
    return stack


def _creation_site() -> str:
    # First frame outside this module (exact path match: a *caller*
    # file merely named ...sanitizer.py must still count as the site).
    for frame in reversed(traceback.extract_stack()):
        if frame.filename == __file__:
            continue
        return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


def _record_violation(kind: str, message: str) -> None:
    stack = "".join(traceback.format_stack(limit=12))
    with _state.guard:
        _state.violations.append(Violation(kind, message, stack))


def _note_acquired(lock: "_SanitizedLock | _SanitizedRLock") -> None:
    held = _held()
    if held:
        with _state.guard:
            for prior in held:
                if prior._site == lock._site:
                    continue
                edge = (prior._site, lock._site)
                if edge in _state.seen_edges:
                    continue
                _state.seen_edges.add(edge)
                _state.order_graph.setdefault(prior._site, set()).add(
                    lock._site
                )
                if _path_exists(lock._site, prior._site):
                    _state.violations.append(
                        Violation(
                            "lock-order",
                            f"lock-order inversion: acquiring lock from "
                            f"{lock._site} while holding lock from "
                            f"{prior._site}, but the opposite order was "
                            "also observed — potential deadlock cycle",
                            "".join(traceback.format_stack(limit=12)),
                        )
                    )
    held.append(lock)


def _path_exists(src: str, dst: str) -> bool:
    """DFS reachability in the order graph (guard held by caller)."""
    if src == dst:
        return True
    stack, seen = [src], {src}
    while stack:
        node = stack.pop()
        for nxt in _state.order_graph.get(node, ()):
            if nxt == dst:
                return True
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return False


def _note_released(lock: object) -> None:
    held = _held()
    for i in range(len(held) - 1, -1, -1):
        if held[i] is lock:
            del held[i]
            return


def _check_blocking(what: str) -> None:
    held = _held()
    if not held:
        return
    sites = ", ".join(lock._site for lock in held)
    key = (what, sites)
    with _state.guard:
        if key in _state.seen_blocking:
            return
        _state.seen_blocking.add(key)
    _record_violation(
        "blocking-call",
        f"{what} called while holding lock(s) created at {sites}",
    )


class _SanitizedLock:
    """Tracked non-reentrant lock (wraps a raw ``threading.Lock``)."""

    def __init__(self) -> None:
        self._inner = _real_lock()
        self._site = _creation_site()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            _note_acquired(self)
        return got

    def release(self) -> None:
        _note_released(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def _at_fork_reinit(self) -> None:
        self._inner = _real_lock()

    def __repr__(self) -> str:
        return f"<SanitizedLock site={self._site} {self._inner!r}>"


class _SanitizedRLock:
    """Tracked reentrant lock.

    Exposes ``_is_owned`` / ``_acquire_restore`` / ``_release_save`` so
    ``threading.Condition`` built on top of it keeps full RLock
    semantics (recursive hold released wholesale across ``wait()``),
    with the tracking adjusted symmetrically.
    """

    def __init__(self) -> None:
        self._inner = _real_rlock()
        self._site = _creation_site()
        self._depth = 0  # touched only by the owning thread

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._depth += 1
            if self._depth == 1:
                _note_acquired(self)
        return got

    def release(self) -> None:
        if self._depth == 1:
            _note_released(self)
        self._depth -= 1
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    # Condition integration -------------------------------------------------
    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def _release_save(self):
        depth = self._depth
        self._depth = 0
        _note_released(self)
        return (self._inner._release_save(), depth)

    def _acquire_restore(self, state) -> None:
        inner_state, depth = state
        self._inner._acquire_restore(inner_state)
        self._depth = depth
        _note_acquired(self)

    def _at_fork_reinit(self) -> None:
        self._inner = _real_rlock()
        self._depth = 0

    def __repr__(self) -> str:
        return f"<SanitizedRLock site={self._site} {self._inner!r}>"


def _sanitized_condition(lock=None):
    """``threading.Condition`` over a tracked lock.

    The real Condition drives the wrapper's acquire/release (and, for
    RLocks, ``_release_save``/``_acquire_restore``), so held-tracking
    stays exact across ``wait()`` — the lock leaves the held set while
    the thread sleeps on the condition and re-enters it on wakeup.
    """
    if lock is None:
        lock = _SanitizedRLock()
    return _real_condition(lock)


def _patched_sleep(seconds: float) -> None:
    _check_blocking(f"time.sleep({seconds!r})")
    _real_sleep(seconds)


def _patched_future_result(self, timeout=None):
    _check_blocking("concurrent.futures.Future.result()")
    return _real_future_result(self, timeout)


def _patched_create_connection(*args, **kwargs):
    _check_blocking("socket.create_connection()")
    return _real_create_connection(*args, **kwargs)


_SOCKET_METHODS = ("recv", "recv_into", "recvfrom", "sendall", "accept")
_real_socket_methods = {
    name: getattr(socket.socket, name) for name in _SOCKET_METHODS
}


def _make_socket_patch(name: str, original):
    def patched(self, *args, **kwargs):
        # Non-blocking sockets (asyncio's) never park the thread.
        if self.gettimeout() != 0:
            _check_blocking(f"socket.socket.{name}()")
        return original(self, *args, **kwargs)

    patched.__name__ = name
    return patched


def install() -> None:
    """Instrument lock factories and blocking primitives (idempotent)."""
    if _state.installed:
        return
    _state.installed = True
    threading.Lock = _SanitizedLock
    threading.RLock = _SanitizedRLock
    threading.Condition = _sanitized_condition
    time.sleep = _patched_sleep
    concurrent.futures.Future.result = _patched_future_result
    socket.create_connection = _patched_create_connection
    for name in _SOCKET_METHODS:
        setattr(
            socket.socket,
            name,
            _make_socket_patch(name, _real_socket_methods[name]),
        )


def uninstall() -> None:
    """Restore the original primitives.

    Wrappers created while installed keep working (they delegate to
    real locks) — only *new* locks stop being tracked.
    """
    if not _state.installed:
        return
    _state.installed = False
    threading.Lock = _real_lock
    threading.RLock = _real_rlock
    threading.Condition = _real_condition
    time.sleep = _real_sleep
    concurrent.futures.Future.result = _real_future_result
    socket.create_connection = _real_create_connection
    for name in _SOCKET_METHODS:
        setattr(socket.socket, name, _real_socket_methods[name])


def reset() -> None:
    """Clear the order graph and recorded violations."""
    with _state.guard:
        _state.order_graph.clear()
        _state.violations.clear()
        _state.seen_edges.clear()
        _state.seen_blocking.clear()


def violations() -> list[Violation]:
    with _state.guard:
        return list(_state.violations)


def format_violations() -> str:
    lines = []
    for i, v in enumerate(violations(), start=1):
        lines.append(f"--- sanitizer violation {i}: {v}")
        if v.stack:
            lines.append(v.stack.rstrip())
    return "\n".join(lines)
