"""Shared diagnostic types for the invariant linter.

Every checker emits :class:`Finding` records; the driver sorts them,
filters them against the suppression baseline, and renders them in one
of two formats: human-oriented ``file:line: [checker/rule] message``
lines, or GitHub workflow commands (``::error ...``) that turn into
inline PR annotations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a checker.

    ``symbol`` is the dotted in-file location (``Class.method`` or a
    function name) when the checker can attribute the finding to one;
    baselines can match on it so entries survive line drift.
    """

    checker: str
    rule: str
    path: str
    line: int
    message: str
    col: int = 0
    symbol: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.checker, self.rule)

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"[{self.checker}/{self.rule}] {self.message}"
        )

    def format_github(self) -> str:
        # Workflow-command escaping: %, CR and LF are significant.
        msg = (
            f"[{self.checker}/{self.rule}] {self.message}"
            .replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A")
        )
        return (
            f"::error file={self.path},line={self.line},"
            f"col={self.col},title={self.checker}::{msg}"
        )


@dataclass
class ModuleSource:
    """A parsed module handed to each checker: path, text and AST."""

    path: str  # repo-relative, forward slashes
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleSource":
        return cls(
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            lines=source.splitlines(),
        )


def qualname_collector(tree: ast.Module) -> dict[int, str]:
    """Map every def/class line to its dotted qualname (``Cls.meth``).

    Used by checkers to stamp ``Finding.symbol`` without each one
    re-implementing scope tracking.
    """

    out: dict[int, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                out[child.lineno] = qual
                visit(child, qual)
            else:
                visit(child, prefix)

    visit(tree, "")
    return out


def enclosing_symbol(tree: ast.Module, lineno: int) -> str:
    """Best-effort dotted symbol containing ``lineno``."""

    best = ""
    best_span = None

    def visit(node: ast.AST, prefix: str) -> None:
        nonlocal best, best_span
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                end = getattr(child, "end_lineno", child.lineno)
                if child.lineno <= lineno <= end:
                    span = end - child.lineno
                    if best_span is None or span <= best_span:
                        best, best_span = qual, span
                    visit(child, qual)
            else:
                visit(child, prefix)

    visit(tree, "")
    return best
