"""Suppression baseline for the invariant linter.

``analysis/baseline.toml`` holds ``[[suppression]]`` tables, one per
accepted finding.  Every entry **must** carry a non-empty
``justification`` — a baseline line without a written reason is itself
a lint error, so the file documents *why* each exception to the rules
is sound rather than silently hiding it.

The file is parsed with a deliberately small TOML-subset reader
(tables of ``key = "string"`` / ``key = int`` pairs, ``#`` comments)
because the tier-1 CI floor is Python 3.10, which has no ``tomllib``,
and the repo takes no third-party lint dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .diagnostics import Finding


class BaselineError(ValueError):
    """Raised when baseline.toml is malformed or missing a justification."""


@dataclass
class Suppression:
    """One accepted finding.

    Matching: ``checker`` and ``file`` are required and must match
    exactly.  ``rule``, ``symbol`` and ``line`` are optional narrowing
    keys — when present they must match too.  Prefer ``symbol`` over
    ``line`` so entries survive unrelated edits to the file.
    """

    checker: str
    file: str
    justification: str
    rule: str = ""
    symbol: str = ""
    line: int = 0
    lineno: int = 0  # where the entry lives in baseline.toml
    hits: int = field(default=0, compare=False)

    def matches(self, finding: Finding) -> bool:
        if self.checker != finding.checker or self.file != finding.path:
            return False
        if self.rule and self.rule != finding.rule:
            return False
        if self.symbol and self.symbol != finding.symbol:
            return False
        if self.line and self.line != finding.line:
            return False
        return True


_STR_KEYS = {"checker", "file", "rule", "symbol", "justification"}
_INT_KEYS = {"line"}


def _parse_value(raw: str, lineno: int) -> str | int:
    raw = raw.strip()
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        body = raw[1:-1]
        # The subset supports the escapes a justification might need.
        return (
            body.replace('\\"', '"').replace("\\\\", "\\").replace("\\n", "\n")
        )
    if raw.lstrip("-").isdigit():
        return int(raw)
    raise BaselineError(
        f"baseline.toml:{lineno}: unsupported value {raw!r} "
        "(only quoted strings and integers)"
    )


def parse_baseline(text: str, origin: str = "baseline.toml") -> list[Suppression]:
    entries: list[Suppression] = []
    current: dict[str, str | int] | None = None
    current_line = 0

    def flush() -> None:
        nonlocal current
        if current is None:
            return
        missing = {"checker", "file"} - current.keys()
        if missing:
            raise BaselineError(
                f"{origin}:{current_line}: suppression missing "
                f"required key(s): {', '.join(sorted(missing))}"
            )
        justification = str(current.get("justification", "")).strip()
        if not justification:
            raise BaselineError(
                f"{origin}:{current_line}: suppression for "
                f"{current.get('checker')}/{current.get('file')} has no "
                "justification — every baseline entry must explain why "
                "the finding is accepted"
            )
        entries.append(
            Suppression(
                checker=str(current["checker"]),
                file=str(current["file"]),
                justification=justification,
                rule=str(current.get("rule", "")),
                symbol=str(current.get("symbol", "")),
                line=int(current.get("line", 0)),
                lineno=current_line,
            )
        )
        current = None

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[suppression]]":
            flush()
            current = {}
            current_line = lineno
            continue
        if line.startswith("["):
            raise BaselineError(
                f"{origin}:{lineno}: unexpected table {line!r} "
                "(only [[suppression]] is supported)"
            )
        if "=" not in line:
            raise BaselineError(f"{origin}:{lineno}: expected 'key = value'")
        if current is None:
            raise BaselineError(
                f"{origin}:{lineno}: key outside a [[suppression]] table"
            )
        key, _, raw_value = line.partition("=")
        key = key.strip()
        if key not in _STR_KEYS | _INT_KEYS:
            raise BaselineError(f"{origin}:{lineno}: unknown key {key!r}")
        current[key] = _parse_value(raw_value, lineno)
    flush()
    return entries


def load_baseline(path: Path) -> list[Suppression]:
    if not path.exists():
        return []
    return parse_baseline(path.read_text(), origin=str(path))


def apply_baseline(
    findings: list[Finding], suppressions: list[Suppression]
) -> tuple[list[Finding], list[Suppression]]:
    """Drop suppressed findings; return (kept, stale_suppressions).

    A suppression may absorb multiple findings (e.g. a symbol-scoped
    entry covering several accesses in one method).  Entries that match
    nothing are *stale* — reported so the baseline shrinks as code gets
    fixed instead of accreting dead exceptions.
    """

    kept: list[Finding] = []
    for finding in findings:
        matched = False
        for supp in suppressions:
            if supp.matches(finding):
                supp.hits += 1
                matched = True
                break
        if not matched:
            kept.append(finding)
    stale = [s for s in suppressions if s.hits == 0]
    return kept, stale
