"""Determinism checker for the bit-identical kernel modules.

``hnsw/``, ``distance/`` and ``segmenters/`` outputs are pinned
byte-identical by parity tests and benchmarks (same-seed builds, batch
composition invariance, wire-boundary parity).  Any nondeterministic
source inside them is a latent parity break, so this checker bans:

- the legacy ``np.random.*`` global-state API (``np.random.seed``,
  ``np.random.rand``, ``np.random.shuffle``, ...) — all randomness must
  flow through an explicitly seeded ``np.random.default_rng(seed)`` /
  ``Generator`` threaded from the caller
- ``default_rng()`` with no seed argument (fresh OS entropy per call)
- stdlib ``random`` module-level calls and unseeded ``random.Random()``
- wall-clock reads (``time.time``, ``time.time_ns``,
  ``datetime.now/utcnow/today``) — ``perf_counter``/``monotonic`` are
  allowed for instrumentation because they never feed results
"""

from __future__ import annotations

import ast

from .diagnostics import Finding, ModuleSource, enclosing_symbol

CHECKER = "determinism"

# np.random attributes that are legitimate under the Generator API.
NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

WALL_CLOCKS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
    ("datetime", "datetime", "now"),
    ("datetime", "datetime", "utcnow"),
    ("datetime", "datetime", "today"),
    ("datetime", "date", "today"),
}


def _dotted(node: ast.expr) -> tuple[str, ...]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def run(module: ModuleSource) -> list[Finding]:
    findings: list[Finding] = []

    def flag(node: ast.AST, rule: str, message: str) -> None:
        findings.append(
            Finding(
                checker=CHECKER,
                rule=rule,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                symbol=enclosing_symbol(module.tree, node.lineno),
                message=message,
            )
        )

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if len(dotted) >= 3 and dotted[-3:-1] == ("np", "random") or (
            len(dotted) == 3 and dotted[:2] == ("numpy", "random")
        ):
            attr = dotted[-1]
            if attr not in NP_RANDOM_ALLOWED:
                flag(
                    node,
                    "legacy-np-random",
                    f"legacy global-state 'np.random.{attr}()' in a "
                    "kernel module; use an explicitly seeded "
                    "np.random.default_rng(seed) threaded from the caller",
                )
            elif attr == "default_rng" and not node.args and not node.keywords:
                flag(
                    node,
                    "unseeded-rng",
                    "'default_rng()' with no seed draws OS entropy; pass "
                    "an explicit seed",
                )
        elif dotted == ("default_rng",) or (
            dotted and dotted[-1] == "default_rng"
        ):
            if not node.args and not node.keywords:
                flag(
                    node,
                    "unseeded-rng",
                    "'default_rng()' with no seed draws OS entropy; pass "
                    "an explicit seed",
                )
        elif len(dotted) == 2 and dotted[0] == "random":
            if dotted[1] == "Random":
                if not node.args and not node.keywords:
                    flag(
                        node,
                        "unseeded-rng",
                        "'random.Random()' with no seed; pass one",
                    )
            elif dotted[1][0].islower():
                flag(
                    node,
                    "stdlib-random",
                    f"module-level 'random.{dotted[1]}()' uses hidden "
                    "global state; use a seeded random.Random or "
                    "np.random.default_rng(seed)",
                )
        if dotted in WALL_CLOCKS:
            flag(
                node,
                "wall-clock",
                f"wall-clock read '{'.'.join(dotted)}()' in a kernel "
                "module; kernels must be a pure function of their "
                "inputs (perf_counter/monotonic are fine for timing)",
            )
    return findings
