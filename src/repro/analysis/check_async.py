"""Asyncio-hygiene checker.

The fan-out hot path (``net/``, ``online/broker.py``) runs on a single
event-loop thread; one blocking call stalls every in-flight shard RPC.
Inside ``async def`` bodies this checker bans:

- ``time.sleep(...)`` (use ``asyncio.sleep``)
- synchronous socket operations (``sock.recv``/``sendall``/``accept``,
  ``socket.create_connection``, the sync ``send_frame``/``recv_frame``
  protocol helpers)
- ``.result()`` on futures — blocking when called on a
  ``concurrent.futures.Future``; calls on names bound to
  ``asyncio.create_task``/``ensure_future`` in the same function are
  recognised as non-blocking and skipped
- constructing or naming the sync ``RemoteSearcherClient`` (the async
  path must use ``AsyncRemoteSearcherClient``)

Bodies of ``def``/``lambda`` nested inside an ``async def`` (executor
thunks) run on worker threads and are deliberately out of scope.
"""

from __future__ import annotations

import ast

from .diagnostics import Finding, ModuleSource

CHECKER = "asyncio-hygiene"

BLOCKING_SOCKET_METHODS = {"recv", "recv_into", "recvfrom", "sendall", "accept"}
BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): ("blocking-sleep", "time.sleep() blocks the event loop"),
    ("socket", "create_connection"): (
        "sync-socket",
        "socket.create_connection() is a blocking dial",
    ),
}
SYNC_PROTOCOL_HELPERS = {"send_frame", "recv_frame"}
SYNC_CLIENT = "RemoteSearcherClient"


def _dotted(node: ast.expr) -> tuple[str, ...]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _asyncio_task_names(fn: ast.AsyncFunctionDef) -> set[str]:
    """Names assigned from asyncio.create_task / ensure_future."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            dotted = _dotted(node.value.func)
            if dotted in (
                ("asyncio", "create_task"),
                ("asyncio", "ensure_future"),
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


class _AsyncBodyWalker(ast.NodeVisitor):
    def __init__(
        self, module: ModuleSource, fn: ast.AsyncFunctionDef, symbol: str
    ) -> None:
        self.module = module
        self.symbol = symbol
        self.task_names = _asyncio_task_names(fn)
        self.findings: list[Finding] = []

    # Executor thunks and nested coroutines get their own analysis scope.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                checker=CHECKER,
                rule=rule,
                path=self.module.path,
                line=node.lineno,
                col=node.col_offset,
                symbol=self.symbol,
                message=f"{message} (inside 'async def')",
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted in BLOCKING_MODULE_CALLS:
            rule, msg = BLOCKING_MODULE_CALLS[dotted]
            self._flag(node, rule, msg)
        elif isinstance(node.func, ast.Name):
            if node.func.id in SYNC_PROTOCOL_HELPERS:
                self._flag(
                    node,
                    "sync-socket",
                    f"sync protocol helper '{node.func.id}()' does blocking "
                    "socket I/O; use the *_async variants",
                )
            elif node.func.id == SYNC_CLIENT:
                self._flag(
                    node,
                    "sync-client",
                    f"constructing sync '{SYNC_CLIENT}'; use "
                    f"Async{SYNC_CLIENT}",
                )
        elif isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in BLOCKING_SOCKET_METHODS:
                self._flag(
                    node,
                    "sync-socket",
                    f"blocking socket op '.{attr}()'",
                )
            elif attr == "result" and not node.args and not node.keywords:
                receiver = node.func.value
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id in self.task_names
                ):
                    pass  # .result() on a completed asyncio.Task is sync-safe
                else:
                    self._flag(
                        node,
                        "future-result",
                        "'.result()' blocks when the receiver is a "
                        "concurrent.futures.Future; await it instead",
                    )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id == SYNC_CLIENT:
            self._flag(
                node,
                "sync-client",
                f"reference to sync '{SYNC_CLIENT}'",
            )
        self.generic_visit(node)


def run(module: ModuleSource) -> list[Finding]:
    findings: list[Finding] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                walker = _AsyncBodyWalker(module, child, qual)
                for stmt in child.body:
                    walker.visit(stmt)
                findings.extend(walker.findings)
                visit(child, qual)  # nested defs inside the coroutine
            elif isinstance(child, (ast.FunctionDef, ast.ClassDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                visit(child, qual)
            else:
                visit(child, prefix)

    visit(module.tree, "")
    return findings
