"""Wire-protocol sync checker.

``net/protocol.py`` declares :data:`FRAME_FIELDS` — the canonical
per-message-type, per-version list of JSON header fields (``"name"``
required, ``"name?"`` optional).  This checker cross-references that
registry against what the code *actually* does:

- registry self-consistency: every :class:`MsgType` member has an
  entry, version keys are supported, and each version's field list is
  a strict prefix of the next (the protocol evolves additively — new
  fields append, nothing reorders or disappears);
- client/server encoders only write declared fields, and write every
  required field;
- decoders only read declared fields, and ``header["x"]`` (required
  read, raises on absence) is only used for fields that are required
  in the *base* version — otherwise a v1 peer kills the connection.

The three modules are analysed purely syntactically so the checker
also runs on fixture snippets in tests.
"""

from __future__ import annotations

import ast

from .diagnostics import Finding, ModuleSource

CHECKER = "wire-protocol"

# Request type -> response type carrying its reply header.
RESPONSE_OF = {
    "SEARCH": "RESULT",
    "DEPLOY": "OK",
    "UNDEPLOY": "OK",
    "STATS": "OK",
    "PING": "OK",
}
#: Response headers multiplex several request types, so requiredness
#: is per-request and not checkable from the union declaration.
UNION_TYPES = {"OK"}


def _field_name(field: str) -> str:
    return field[:-1] if field.endswith("?") else field


def _required(fields: tuple[str, ...]) -> set[str]:
    return {f for f in fields if not f.endswith("?")}


def _names(fields: tuple[str, ...]) -> set[str]:
    return {_field_name(f) for f in fields}


class _Registry:
    def __init__(
        self,
        frame_fields: dict[str, dict[int, tuple[str, ...]]],
        msg_types: set[str],
        supported_versions: tuple[int, ...],
    ) -> None:
        self.frame_fields = frame_fields
        self.msg_types = msg_types
        self.supported_versions = supported_versions

    def all_names(self, msg: str) -> set[str]:
        out: set[str] = set()
        for fields in self.frame_fields.get(msg, {}).values():
            out |= _names(fields)
        return out

    def base_required(self, msg: str) -> set[str]:
        versions = self.frame_fields.get(msg, {})
        if not versions:
            return set()
        return _required(versions[min(versions)])

    def max_required(self, msg: str) -> set[str]:
        versions = self.frame_fields.get(msg, {})
        if not versions:
            return set()
        return _required(versions[max(versions)])


def _extract_registry(
    protocol: ModuleSource, findings: list[Finding]
) -> _Registry | None:
    frame_fields = None
    supported: tuple[int, ...] = ()
    msg_types: set[str] = set()
    for node in ast.walk(protocol.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "FRAME_FIELDS":
                    try:
                        frame_fields = ast.literal_eval(node.value)
                    except ValueError:
                        findings.append(
                            Finding(
                                checker=CHECKER,
                                rule="registry",
                                path=protocol.path,
                                line=node.lineno,
                                message="FRAME_FIELDS must be a literal "
                                "dict of {msg: {version: (fields...)}}",
                            )
                        )
                elif target.id == "SUPPORTED_VERSIONS":
                    try:
                        supported = tuple(ast.literal_eval(node.value))
                    except ValueError:
                        pass
        elif isinstance(node, ast.ClassDef) and node.name == "MsgType":
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            msg_types.add(target.id)
    if frame_fields is None:
        findings.append(
            Finding(
                checker=CHECKER,
                rule="registry",
                path=protocol.path,
                line=1,
                message="protocol module declares no FRAME_FIELDS registry",
            )
        )
        return None
    return _Registry(frame_fields, msg_types, supported)


def _check_registry(
    reg: _Registry, protocol: ModuleSource, findings: list[Finding]
) -> None:
    def flag(message: str) -> None:
        findings.append(
            Finding(
                checker=CHECKER,
                rule="registry",
                path=protocol.path,
                line=1,
                symbol="FRAME_FIELDS",
                message=message,
            )
        )

    for msg in sorted(reg.msg_types - reg.frame_fields.keys()):
        flag(f"MsgType.{msg} has no FRAME_FIELDS entry")
    for msg in sorted(reg.frame_fields.keys() - reg.msg_types):
        flag(f"FRAME_FIELDS declares unknown message type {msg!r}")
    for msg, versions in reg.frame_fields.items():
        ordered = sorted(versions)
        for version in ordered:
            if reg.supported_versions and version not in reg.supported_versions:
                flag(
                    f"{msg}: version {version} is not in SUPPORTED_VERSIONS "
                    f"{reg.supported_versions}"
                )
        if reg.supported_versions and min(reg.supported_versions) not in versions:
            flag(
                f"{msg}: missing the base version "
                f"{min(reg.supported_versions)} field list"
            )
        for lower, higher in zip(ordered, ordered[1:]):
            low, high = versions[lower], versions[higher]
            if tuple(high[: len(low)]) != tuple(low):
                flag(
                    f"{msg}: v{lower} fields {low} are not a prefix of "
                    f"v{higher} fields {high} — the protocol must evolve "
                    "additively (append only, same order)"
                )


def _header_keys_of_function(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, param: str = "header"
) -> tuple[set[str], set[str], set[str]]:
    """(written, required_reads, optional_reads) on ``param`` inside fn."""
    written: set[str] = set()
    required: set[str] = set()
    optional: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                written.add(node.slice.value)
            else:
                required.add(node.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == param
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            optional.add(node.args[0].value)
    return written, required, optional


def _dict_literal_keys(node: ast.expr) -> set[str] | None:
    if isinstance(node, ast.Dict):
        keys = set()
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.add(key.value)
        return keys
    return None


def _functions(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _msgtype_refs(node: ast.AST) -> set[str]:
    out = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "MsgType"
        ):
            out.add(sub.attr)
    return out


def _check_encoders(
    reg: _Registry, module: ModuleSource, findings: list[Finding]
) -> None:
    """Every ``call(MsgType.X, <header>)`` / ``encode_frame(MsgType.X,
    <header>)`` site writes only declared fields and all required ones."""

    # Header-builder helpers: local functions returning a dict literal
    # they then extend via header["k"] = ... .
    helper_keys: dict[str, set[str]] = {}
    # Forwarding encoders: functions whose body passes their own
    # parameter straight into encode_frame(MsgType.X, <param>), like the
    # server's _ok/_result — a call to them encodes X.
    forwarders: dict[str, str] = {}
    for fn in _functions(module.tree):
        keys: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
                literal = _dict_literal_keys(node.value)
                if literal is not None:
                    keys |= literal
            elif isinstance(node, ast.Return) and node.value is not None:
                literal = _dict_literal_keys(node.value)
                if literal:
                    keys |= literal
        written, _, _ = _header_keys_of_function(fn)
        header_arg = keys | written
        if header_arg:
            helper_keys[fn.name] = header_arg
        params = {a.arg for a in fn.args.args}
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("encode_frame", "encode_frame_bytes")
                and len(node.args) >= 2
                and isinstance(node.args[0], ast.Attribute)
                and isinstance(node.args[0].value, ast.Name)
                and node.args[0].value.id == "MsgType"
                and isinstance(node.args[1], ast.Name)
                and node.args[1].id in params
            ):
                forwarders[fn.name] = node.args[0].attr

    def local_dict_keys(fn: ast.AST, name: str) -> set[str] | None:
        """Keys of a dict variable built inside ``fn``: its literal
        initialiser plus every ``name["k"] = ...`` store."""
        keys: set[str] | None = None
        for node in ast.walk(fn):
            value = None
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name for t in node.targets
            ):
                value = node.value
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == name
            ):
                value = node.value
            if value is not None:
                literal = _dict_literal_keys(value)
                if literal is not None:
                    keys = (keys or set()) | literal
        if keys is None:
            return None
        written, _, _ = _header_keys_of_function(fn, param=name)
        return keys | written

    def encoded_keys(expr: ast.expr, enclosing: ast.AST) -> set[str] | None:
        literal = _dict_literal_keys(expr)
        if literal is not None:
            return literal
        if isinstance(expr, ast.Call):
            name = (
                expr.func.id
                if isinstance(expr.func, ast.Name)
                else expr.func.attr
                if isinstance(expr.func, ast.Attribute)
                else ""
            )
            return helper_keys.get(name)
        if isinstance(expr, ast.Name):
            return local_dict_keys(enclosing, expr.id)
        return None

    sites: list[tuple[str, ast.Call, ast.AST]] = []
    for fn in _functions(module.tree):
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func_name = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else node.func.id
                if isinstance(node.func, ast.Name)
                else ""
            )
            if func_name in forwarders:
                sites.append((forwarders[func_name], node, fn))
                continue
            if func_name not in ("call", "encode_frame", "encode_frame_bytes"):
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Attribute)
                and isinstance(first.value, ast.Name)
                and first.value.id == "MsgType"
            ):
                continue
            if len(node.args) < 2:
                continue
            sites.append((first.attr, node, fn))

    for msg, node, enclosing in sites:
        header_expr = (
            node.args[0]
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in forwarders
            )
            or (isinstance(node.func, ast.Name) and node.func.id in forwarders)
            else node.args[1]
        )
        keys = encoded_keys(header_expr, enclosing)
        if keys is None:
            continue
        declared = reg.all_names(msg)
        required = reg.max_required(msg)
        for key in sorted(keys - declared):
            findings.append(
                Finding(
                    checker=CHECKER,
                    rule="undeclared-field",
                    path=module.path,
                    line=node.lineno,
                    message=(
                        f"{msg} frame encodes header field {key!r} which "
                        "FRAME_FIELDS does not declare — add it to the "
                        "registry (new version) or drop it"
                    ),
                )
            )
        if msg not in UNION_TYPES:
            for key in sorted(required - keys):
                findings.append(
                    Finding(
                        checker=CHECKER,
                        rule="missing-required-field",
                        path=module.path,
                        line=node.lineno,
                        message=(
                            f"{msg} frame omits required header field "
                            f"{key!r} declared in FRAME_FIELDS"
                        ),
                    )
                )


def _check_server_decoders(
    reg: _Registry, server: ModuleSource, findings: list[Finding]
) -> None:
    """Attribute ``header[...]``/``header.get(...)`` reads to the
    ``msg_type == MsgType.X`` branch they sit in (following helper
    methods that take a ``header`` parameter)."""

    helper_reads: dict[str, tuple[set[str], set[str]]] = {}
    for fn in _functions(server.tree):
        params = {a.arg for a in fn.args.args}
        if "header" in params:
            _, required, optional = _header_keys_of_function(fn)
            if required or optional:
                helper_reads[fn.name] = (required, optional)

    def check_branch(msg: str, body: list[ast.stmt]) -> None:
        required: set[str] = set()
        optional: set[str] = set()
        wrapper = ast.Module(body=body, type_ignores=[])
        for node in ast.walk(wrapper):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == "header"
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
                and not isinstance(node.ctx, (ast.Store, ast.Del))
            ):
                required.add(node.slice.value)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "header"
                and node.args
                and isinstance(node.args[0], ast.Constant)
            ):
                optional.add(node.args[0].value)
            # Helper dispatch: self._deploy(header), partial(self._deploy, header)
            if isinstance(node, (ast.Name, ast.Attribute)):
                name = node.attr if isinstance(node, ast.Attribute) else node.id
                if name in helper_reads:
                    helper_req, helper_opt = helper_reads[name]
                    required |= helper_req
                    optional |= helper_opt
        declared = reg.all_names(msg)
        base_required = reg.base_required(msg)
        lineno = body[0].lineno if body else 1
        for key in sorted((required | optional) - declared):
            findings.append(
                Finding(
                    checker=CHECKER,
                    rule="undeclared-field",
                    path=server.path,
                    line=lineno,
                    message=(
                        f"{msg} handler reads header field {key!r} which "
                        "FRAME_FIELDS does not declare for it"
                    ),
                )
            )
        if msg not in UNION_TYPES:
            for key in sorted(required & declared - base_required):
                findings.append(
                    Finding(
                        checker=CHECKER,
                        rule="optional-read-as-required",
                        path=server.path,
                        line=lineno,
                        message=(
                            f"{msg} handler reads header[{key!r}] "
                            "unconditionally, but FRAME_FIELDS declares it "
                            "optional/versioned — use header.get() so "
                            "older peers stay compatible"
                        ),
                    )
                )

    for node in ast.walk(server.tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
        ):
            sides = [test.left] + list(test.comparators)
            for side in sides:
                if (
                    isinstance(side, ast.Attribute)
                    and isinstance(side.value, ast.Name)
                    and side.value.id == "MsgType"
                    and side.attr in reg.frame_fields
                ):
                    check_branch(side.attr, node.body)


def _check_client_decoders(
    reg: _Registry, module: ModuleSource, findings: list[Finding]
) -> None:
    """Response-header reads in functions that speak exactly one
    request type must stay within the declared response fields."""
    for fn in _functions(module.tree):
        refs = _msgtype_refs(fn) & RESPONSE_OF.keys()
        if len(refs) != 1:
            continue
        response = RESPONSE_OF[next(iter(refs))]
        _, required, optional = _header_keys_of_function(fn)
        declared = reg.all_names(response)
        for key in sorted((required | optional) - declared):
            findings.append(
                Finding(
                    checker=CHECKER,
                    rule="undeclared-field",
                    path=module.path,
                    line=fn.lineno,
                    symbol=fn.name,
                    message=(
                        f"{fn.name}() reads {response} header field "
                        f"{key!r} which FRAME_FIELDS does not declare"
                    ),
                )
            )


def run_wire(
    protocol: ModuleSource,
    client: ModuleSource | None = None,
    server: ModuleSource | None = None,
) -> list[Finding]:
    findings: list[Finding] = []
    reg = _extract_registry(protocol, findings)
    if reg is None:
        return findings
    _check_registry(reg, protocol, findings)
    _check_encoders(reg, protocol, findings)  # error_frame lives here
    if client is not None:
        _check_encoders(reg, client, findings)
        _check_client_decoders(reg, client, findings)
    if server is not None:
        _check_encoders(reg, server, findings)
        _check_server_decoders(reg, server, findings)
    return findings
