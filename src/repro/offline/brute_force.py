"""Distributed brute-force search (Section 5.4, Figure 8).

Used for ground truth on datasets too large for a single in-memory exact
scan: the *dataset* is partitioned over executors, every executor scores
the whole query set against its slice, and partial top-k lists are merged
per query on the driver side -- "we once again load these partial results
and repartition based on the query Id and merge results within
executors".
"""

from __future__ import annotations

import numpy as np

from repro.core.merge import merge_shard_results
from repro.distance.metrics import get_metric
from repro.sparklite.cluster import LocalCluster
from repro.utils.validation import as_matrix


def exact_top_k(
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    metric: str = "euclidean",
    block_size: int = 1024,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k-NN by blocked full scan (single process).

    Blocks the data axis so memory stays at ``O(block_size * queries)``.

    Returns
    -------
    (ids, dists): ``(num_queries, k)`` arrays, ascending by distance.
    """
    data = as_matrix(data, name="data")
    queries = as_matrix(queries, dim=data.shape[1], name="queries")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, data.shape[0])
    metric_obj = get_metric(metric)
    num_queries = queries.shape[0]
    best_dists = np.full((num_queries, k), np.inf, dtype=np.float64)
    best_ids = np.full((num_queries, k), -1, dtype=np.int64)
    for start in range(0, data.shape[0], block_size):
        block = data[start : start + block_size]
        dists = metric_obj.pairwise(queries, block).astype(np.float64)
        block_ids = np.arange(start, start + block.shape[0], dtype=np.int64)
        merged_dists = np.concatenate([best_dists, dists], axis=1)
        merged_ids = np.concatenate(
            [best_ids, np.broadcast_to(block_ids, dists.shape)], axis=1
        )
        order = np.argsort(merged_dists, axis=1, kind="stable")[:, :k]
        best_dists = np.take_along_axis(merged_dists, order, axis=1)
        best_ids = np.take_along_axis(merged_ids, order, axis=1)
    return best_ids, best_dists


def brute_force_job(
    cluster: LocalCluster,
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    metric: str = "euclidean",
    ids: np.ndarray | None = None,
    num_partitions: int | None = None,
    checkpoint: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k-NN with the data partitioned across executors (Figure 8).

    Parameters
    ----------
    ids:
        Optional external ids of ``data`` rows (default 0..n-1).

    Returns
    -------
    (ids, dists): ``(num_queries, k)`` arrays, ascending by distance.
    """
    data = as_matrix(data, name="data")
    queries = as_matrix(queries, dim=data.shape[1], name="queries")
    if ids is None:
        ids = np.arange(data.shape[0], dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    if num_partitions is None:
        num_partitions = cluster.num_executors
    k = min(k, data.shape[0])
    row_parts = [
        part
        for part in np.array_split(np.arange(data.shape[0]), num_partitions)
        if part.size
    ]

    def make_task(rows: np.ndarray):
        def task():
            part_ids, part_dists = exact_top_k(
                data[rows], queries, k, metric=metric
            )
            # Map partition-local row numbers back to external ids.
            local_ids = ids[rows]
            mapped = np.where(part_ids >= 0, local_ids[part_ids], -1)
            return mapped, part_dists

        return task

    outcome = cluster.run_tasks(
        [make_task(rows) for rows in row_parts],
        stage="brute-force",
        checkpoint=checkpoint,
    )

    def make_merge_task(query_rows: np.ndarray):
        def task():
            merged_ids = np.full((query_rows.size, k), -1, dtype=np.int64)
            merged_dists = np.full((query_rows.size, k), np.inf)
            for position, query_row in enumerate(query_rows.tolist()):
                candidate_lists = [
                    [
                        (float(dist), int(item))
                        for dist, item in zip(
                            part_dists[query_row], part_ids[query_row]
                        )
                        if item >= 0
                    ]
                    for part_ids, part_dists in outcome.results
                ]
                merged = merge_shard_results(candidate_lists, k)
                for rank, (dist, item) in enumerate(merged):
                    merged_ids[position, rank] = item
                    merged_dists[position, rank] = dist
            return query_rows, merged_ids, merged_dists

        return task

    query_parts = [
        part
        for part in np.array_split(
            np.arange(queries.shape[0]), cluster.num_executors
        )
        if part.size
    ]
    merge_outcome = cluster.run_tasks(
        [make_merge_task(rows) for rows in query_parts],
        stage="brute-force-merge",
        checkpoint=checkpoint,
    )
    final_ids = np.full((queries.shape[0], k), -1, dtype=np.int64)
    final_dists = np.full((queries.shape[0], k), np.inf)
    for query_rows, merged_ids, merged_dists in merge_outcome.results:
        final_ids[query_rows] = merged_ids
        final_dists[query_rows] = merged_dists
    return final_ids, final_dists
