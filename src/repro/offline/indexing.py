"""Distributed index build (Section 5.2, Figure 6).

The flow mirrors the paper: every document is tagged with a shard id
(stable hash) and one or more segment ids (pre-learnt segmenter; several
under physical spill), the tagged dataset is repartitioned by
(shard, segment), one HNSW index is built *inside each executor task* and
serialized to the filesystem from the executor, and the driver finally
writes the coupled metadata (manifest + segmenter).
"""

from __future__ import annotations

import numpy as np

from repro.core.builder import LannsBuilder, _build_segment_index
from repro.core.config import LannsConfig
from repro.segmenters.base import Segmenter
from repro.sparklite.cluster import LocalCluster
from repro.sparklite.metrics import StageMetrics
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import (
    IndexManifest,
    _checksum,
    hnsw_to_bytes,
    segment_file,
)
from repro.utils.rng import spawn_seeds
from repro.utils.validation import as_matrix
from repro.version import __version__

import json

from functools import partial


def _build_and_persist_partition(
    key: tuple[int, int],
    part_vectors: np.ndarray,
    part_ids: np.ndarray,
    config: LannsConfig,
    seed: int,
    fs: LocalHdfs,
    output_path: str,
) -> tuple[tuple[int, int], str, int]:
    """Build one partition and write it from "the executor".

    Module-level and picklable, so the build stage can run under any
    cluster execution mode (inline / threads / processes).
    """
    index = _build_segment_index(part_vectors, part_ids, config, seed)
    data = hnsw_to_bytes(index)
    shard, segment = key
    relative = segment_file(shard, segment)
    fs.write_bytes(f"{output_path}/{relative}", data)
    return key, _checksum(data), len(index)


def build_index_job(
    cluster: LocalCluster,
    fs: LocalHdfs,
    vectors: np.ndarray,
    config: LannsConfig,
    output_path: str,
    *,
    ids: np.ndarray | None = None,
    segmenter: Segmenter | None = None,
    checkpoint: bool = False,
) -> tuple[IndexManifest, StageMetrics]:
    """Build and persist a LANNS index on the cluster.

    Parameters
    ----------
    segmenter:
        Optional pre-learnt segmenter (Figure 5 output); learnt on the
        fly when omitted -- exactly the optional input of Figure 6.

    Returns
    -------
    (manifest, build_stage_metrics):
        The manifest written to ``<output_path>/metadata.json``, and the
        metrics of the per-partition HNSW build stage (whose simulated
        makespan is what Tables 2 and 5 report).
    """
    vectors = as_matrix(vectors, name="vectors")
    n = vectors.shape[0]
    if ids is None:
        ids = np.arange(n, dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)

    builder = LannsBuilder(config)
    if segmenter is None:
        segmenter = builder.learn_segmenter(vectors)
    partitions = builder.partition(vectors, ids, segmenter)
    seeds = spawn_seeds(config.seed, config.total_partitions)
    keys = sorted(partitions)

    # functools.partial of a module-level function, not a closure: the
    # cluster's "processes" mode pickles each task into a worker process
    # (which is what lets multi-partition builds escape the GIL).
    tasks = [
        partial(
            _build_and_persist_partition,
            key,
            partitions[key][1],
            partitions[key][0],
            config,
            seeds[position],
            fs,
            output_path,
        )
        for position, key in enumerate(keys)
    ]
    outcome = cluster.run_tasks(
        tasks, stage="hnsw-build", checkpoint=checkpoint
    )

    # Driver side: couple metadata + segmenter with the written indices.
    checksums: dict[str, str] = {}
    shard_sizes = [0] * config.num_shards
    segment_sizes = [
        [0] * config.num_segments for _ in range(config.num_shards)
    ]
    for key, checksum, count in outcome.results:
        shard, segment = key
        checksums[segment_file(shard, segment)] = checksum
        shard_sizes[shard] += count
        segment_sizes[shard][segment] = count
    segmenter_raw = json.dumps(segmenter.to_dict()).encode()
    fs.write_bytes(f"{output_path}/segmenter.json", segmenter_raw)
    checksums["segmenter.json"] = _checksum(segmenter_raw)
    manifest = IndexManifest(
        config=config.to_dict(),
        dim=vectors.shape[1],
        total_vectors=sum(shard_sizes),
        shard_sizes=shard_sizes,
        checksums=checksums,
        segment_sizes=segment_sizes,
        created_by=f"repro-lanns/{__version__}",
    )
    fs.write_json(f"{output_path}/metadata.json", manifest.to_dict())
    return manifest, outcome.metrics
