"""Recall computation.

"The recall, measured as the fraction of true k-nearest neighbors
returned in a result set of size k" (Section 1).  Computed per query
against exact ground truth and averaged.
"""

from __future__ import annotations

import numpy as np


def recall_at_k(
    result_ids: np.ndarray, truth_ids: np.ndarray, k: int
) -> float:
    """Mean fraction of the true top-``k`` present in the results' top-``k``.

    Parameters
    ----------
    result_ids:
        ``(num_queries, >=k)`` approximate ids (may contain -1 padding).
    truth_ids:
        ``(num_queries, >=k)`` exact ids.
    k:
        Cutoff; both arrays must have at least ``k`` columns.
    """
    result_ids = np.asarray(result_ids)
    truth_ids = np.asarray(truth_ids)
    if result_ids.ndim != 2 or truth_ids.ndim != 2:
        raise ValueError("result_ids and truth_ids must be 2-D")
    if result_ids.shape[0] != truth_ids.shape[0]:
        raise ValueError(
            f"query counts differ: {result_ids.shape[0]} vs "
            f"{truth_ids.shape[0]}"
        )
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if result_ids.shape[1] < k or truth_ids.shape[1] < k:
        raise ValueError(
            f"need at least k={k} columns, got {result_ids.shape[1]} and "
            f"{truth_ids.shape[1]}"
        )
    total = 0.0
    for found, truth in zip(result_ids[:, :k], truth_ids[:, :k]):
        valid_truth = {int(item) for item in truth if item >= 0}
        if not valid_truth:
            continue
        found_set = {int(item) for item in found if item >= 0}
        total += len(found_set & valid_truth) / len(valid_truth)
    return total / result_ids.shape[0]


def recall_curve(
    result_ids: np.ndarray,
    truth_ids: np.ndarray,
    ks: list[int],
) -> dict[int, float]:
    """Recall at several cutoffs, e.g. the R@1..R@100 columns of Table 1."""
    return {k: recall_at_k(result_ids, truth_ids, k) for k in ks}
