"""Offline LANNS: the Spark-style batch pipelines of Section 5.

- :func:`~repro.offline.learn.learn_segmenter_job` -- Figure 5.
- :func:`~repro.offline.indexing.build_index_job` -- Figure 6.
- :func:`~repro.offline.querying.query_index_job` -- Figure 7, including
  the two-level merge and HDFS checkpointing of partial results.
- :func:`~repro.offline.brute_force.brute_force_job` -- Figure 8, the
  distributed exact search used for ground truth on large datasets.
"""

from repro.offline.learn import learn_segmenter_job
from repro.offline.indexing import build_index_job
from repro.offline.querying import query_index_job
from repro.offline.brute_force import brute_force_job, exact_top_k
from repro.offline.recall import recall_at_k, recall_curve

__all__ = [
    "learn_segmenter_job",
    "build_index_job",
    "query_index_job",
    "brute_force_job",
    "exact_top_k",
    "recall_at_k",
    "recall_curve",
]
