"""Distributed querying with two-level merging (Section 5.3, Figure 7).

Pipeline stages (each a cluster stage with its own metrics):

1. ``partial-search`` -- one task per (query-partition, shard, segment)
   triple that the segmenter routes at least one query to.  Each task
   loads "its" segment index (executor-cached) and searches its queries
   with the shard-level ``perShardTopK`` budget.  Partial results are
   checkpointed to a temporary filesystem path, which is the paper's
   defence against cascading executor time-outs (Section 5.3.1).
2. ``segment-merge`` -- one task per (query-partition, shard): merge the
   segment candidates into shard results (the merge that happens inside a
   server node in the online system).
3. ``shard-merge`` -- one task per query-partition: merge shard results
   into the final topK (the broker-side merge).

The temporary checkpoint path is cleaned as soon as the final merge
finishes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.merge import merge_segment_results, merge_shard_results
from repro.core.topk import per_shard_top_k
from repro.sparklite.cluster import LocalCluster
from repro.sparklite.metrics import StageMetrics
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import (
    hnsw_from_bytes,
    load_manifest,
    load_segmenter,
    segment_file,
)
from repro.utils.validation import as_matrix


@dataclass
class QueryJobResult:
    """Output of :func:`query_index_job`.

    Attributes
    ----------
    ids, dists:
        ``(num_queries, top_k)`` arrays (padded with -1 / inf).
    stages:
        Metrics of the three pipeline stages, in execution order; the
        total simulated makespan of these is what Tables 3 and 6 report.
    """

    ids: np.ndarray
    dists: np.ndarray
    stages: list[StageMetrics]

    def stage(self, name: str) -> StageMetrics:
        """Metrics of the named stage."""
        for metrics in self.stages:
            if metrics.stage == name:
                return metrics
        raise KeyError(f"no stage named {name!r}")

    def total_makespan(self, num_executors: int) -> float:
        """Simulated end-to-end time on ``num_executors`` executors."""
        return sum(
            metrics.makespan(num_executors) for metrics in self.stages
        )


class _SegmentCache:
    """Executor-local cache of deserialized segment indices.

    "The respective HNSW Indices and query partitions are loaded inside
    the executor"; loading once per (shard, segment) mirrors an executor
    keeping its assigned index in memory across its task queue.
    """

    def __init__(self, fs: LocalHdfs, index_path: str) -> None:
        self._fs = fs
        self._index_path = index_path
        self._cache: dict[tuple[int, int], object] = {}

    def get(self, shard: int, segment: int):
        key = (shard, segment)
        if key not in self._cache:
            raw = self._fs.read_bytes(
                f"{self._index_path}/{segment_file(shard, segment)}"
            )
            self._cache[key] = hnsw_from_bytes(raw)
        return self._cache[key]


def query_index_job(
    cluster: LocalCluster,
    fs: LocalHdfs,
    index_path: str,
    queries: np.ndarray,
    top_k: int,
    *,
    ef: int | None = None,
    num_query_partitions: int | None = None,
    checkpoint: bool = True,
    output_path: str | None = None,
) -> QueryJobResult:
    """Run a (large) query set against a persisted index (Figure 7).

    Parameters
    ----------
    queries:
        Query matrix; row index is the query id.
    top_k:
        Global neighbor count; each shard is only asked for the
        ``perShardTopK`` budget (Eq. 5-6).
    checkpoint:
        Persist partial results to a temp path (Section 5.3.1).  Keep on
        when ``cluster.failure_rate > 0`` or stages may time out.
    output_path:
        Optional final-results destination (one npz with ids/dists).
    """
    if top_k <= 0:
        raise ValueError(f"top_k must be positive, got {top_k}")
    manifest = load_manifest(fs, index_path)
    config = manifest.lanns_config
    segmenter = load_segmenter(fs, index_path, manifest)
    queries = as_matrix(queries, dim=manifest.dim, name="queries")
    num_queries = queries.shape[0]
    if num_query_partitions is None:
        num_query_partitions = cluster.num_executors
    query_parts = [
        part
        for part in np.array_split(np.arange(num_queries), num_query_partitions)
        if part.size
    ]

    budget = (
        per_shard_top_k(
            top_k,
            config.num_shards,
            config.topk_confidence,
            paper_literal=config.paper_literal_probit,
        )
        if config.use_per_shard_topk
        else top_k
    )

    # Driver-side routing: which segments does each query probe?
    routes = segmenter.route_query_batch(queries)
    cache = _SegmentCache(fs, index_path)
    stages: list[StageMetrics] = []

    # -- stage 1: partial search ------------------------------------------------
    contexts: list[tuple[int, int, int, np.ndarray]] = []
    for part_index, part_rows in enumerate(query_parts):
        for shard in range(config.num_shards):
            segment_rows: dict[int, list[int]] = {}
            for row in part_rows.tolist():
                for segment in routes[row]:
                    segment_rows.setdefault(segment, []).append(row)
            for segment, rows in sorted(segment_rows.items()):
                contexts.append(
                    (part_index, shard, segment, np.asarray(rows, dtype=np.int64))
                )

    def make_search_task(context):
        part_index, shard, segment, rows = context

        def task():
            index = cache.get(shard, segment)
            if len(index) == 0:
                return (part_index, shard, rows, None, None)
            k = min(budget, len(index))
            ids, dists = index.search_batch(queries[rows], k, ef=ef)
            return (part_index, shard, rows, ids, dists)

        return task

    outcome = cluster.run_tasks(
        [make_search_task(context) for context in contexts],
        stage="partial-search",
        checkpoint=checkpoint,
    )
    stages.append(outcome.metrics)

    # -- stage 2: segment-level merge per (query partition, shard) ----------------
    by_part_shard: dict[tuple[int, int], list] = {}
    for partial in outcome.results:
        part_index, shard, rows, ids, dists = partial
        if ids is None:
            continue
        by_part_shard.setdefault((part_index, shard), []).append(
            (rows, ids, dists)
        )

    def make_segment_merge_task(key):
        partials = by_part_shard[key]

        def task():
            merged: dict[int, list[tuple[float, int]]] = {}
            per_query: dict[int, list] = {}
            for rows, ids, dists in partials:
                for position, row in enumerate(rows.tolist()):
                    found = [
                        (float(dist), int(item))
                        for dist, item in zip(dists[position], ids[position])
                        if item >= 0
                    ]
                    per_query.setdefault(row, []).append(found)
            for row, candidate_lists in per_query.items():
                merged[row] = merge_segment_results(candidate_lists, budget)
            return key, merged

        return task

    part_shard_keys = sorted(by_part_shard)
    outcome = cluster.run_tasks(
        [make_segment_merge_task(key) for key in part_shard_keys],
        stage="segment-merge",
        checkpoint=checkpoint,
    )
    stages.append(outcome.metrics)

    # -- stage 3: shard-level merge per query partition ----------------------------
    by_part: dict[int, list[dict]] = {}
    for (part_index, _shard), merged in outcome.results:
        by_part.setdefault(part_index, []).append(merged)

    def make_shard_merge_task(part_index):
        shard_maps = by_part.get(part_index, [])

        def task():
            final: dict[int, list[tuple[float, int]]] = {}
            rows = set()
            for shard_map in shard_maps:
                rows.update(shard_map)
            for row in rows:
                shard_lists = [
                    shard_map[row]
                    for shard_map in shard_maps
                    if row in shard_map
                ]
                final[row] = merge_shard_results(shard_lists, top_k)
            return final

        return task

    outcome = cluster.run_tasks(
        [make_shard_merge_task(part_index) for part_index in range(len(query_parts))],
        stage="shard-merge",
        checkpoint=checkpoint,
    )
    stages.append(outcome.metrics)

    # -- assemble ---------------------------------------------------------------------
    ids = np.full((num_queries, top_k), -1, dtype=np.int64)
    dists = np.full((num_queries, top_k), np.inf, dtype=np.float64)
    for final in outcome.results:
        for row, results in final.items():
            for rank, (dist, item) in enumerate(results[:top_k]):
                ids[row, rank] = item
                dists[row, rank] = dist
    if output_path is not None:
        import io

        buffer = io.BytesIO()
        np.savez_compressed(buffer, ids=ids, dists=dists)
        fs.write_bytes(output_path, buffer.getvalue())
    return QueryJobResult(ids=ids, dists=dists, stages=stages)
