"""Segmenter learning job (Section 5.1, Figure 5).

Subsamples the dataset uniformly at random, fits the configured segmenter
on the sample, and persists the learnt tree of hyperplanes (with split
points and spill boundaries) so the indexing job -- and every shard -- can
share one copy.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.config import LannsConfig
from repro.segmenters.base import Segmenter, segmenter_from_dict
from repro.segmenters.learner import learn_segmenter
from repro.sparklite.cluster import LocalCluster
from repro.storage.hdfs import LocalHdfs


def learn_segmenter_job(
    cluster: LocalCluster,
    fs: LocalHdfs | None,
    vectors: np.ndarray,
    config: LannsConfig,
    *,
    output_path: str | None = None,
) -> Segmenter:
    """Learn the shared segmenter as a (timed) cluster stage.

    Parameters
    ----------
    cluster:
        Execution engine; the fit runs as a single-task stage named
        ``"learn-segmenter"`` so its duration lands in the metrics.
    fs, output_path:
        When both given, the learnt segmenter is persisted to
        ``<output_path>`` as JSON.

    Returns
    -------
    The fitted segmenter.
    """

    def fit_task() -> Segmenter:
        return learn_segmenter(
            vectors,
            config.segmenter,
            config.num_segments,
            alpha=config.alpha,
            spill_mode=config.spill_mode,
            sample_size=config.segmenter_sample_size,
            seed=config.seed,
        )

    outcome = cluster.run_tasks([fit_task], stage="learn-segmenter")
    segmenter = outcome.results[0]
    if fs is not None and output_path is not None:
        fs.write_text(output_path, json.dumps(segmenter.to_dict()))
    return segmenter


def load_learnt_segmenter(fs: LocalHdfs, path: str) -> Segmenter:
    """Load a segmenter persisted by :func:`learn_segmenter_job`."""
    return segmenter_from_dict(json.loads(fs.read_text(path)))
