"""Exception hierarchy for the LANNS reproduction.

All library-raised exceptions derive from :class:`LannsError` so callers can
catch one base class.  Programming errors (bad arguments) raise the standard
``ValueError`` / ``TypeError`` where that is the idiomatic choice, but
domain-level failures use this hierarchy.
"""


class LannsError(Exception):
    """Base class for all LANNS-specific errors."""


class ConfigError(LannsError):
    """An invalid or inconsistent :class:`~repro.core.config.LannsConfig`."""


class IndexNotBuiltError(LannsError):
    """An operation requires a built index but the index is empty."""


class SegmenterNotFittedError(LannsError):
    """A data-dependent segmenter was used before ``fit`` was called."""


class CodecNotFittedError(LannsError):
    """A vector codec (PQ / scalar quantizer) was used before ``fit``.

    Encoding, decoding or table construction on an untrained codec is a
    caller bug; this replaces the bare ``TypeError`` that indexing into
    ``None`` codebooks used to raise.
    """


class SerializationError(LannsError):
    """An index or segmenter payload could not be (de)serialized."""


class MetadataMismatchError(SerializationError):
    """Persisted metadata disagrees with the loading configuration.

    The paper stresses that coupling the segmenter and distance metadata
    with the serialized index "ensures that the platform doesn't allow
    accidental differences in the algorithm configuration between offline
    index build and online serving" (Section 7).  This error enforces that.
    """


class StorageError(LannsError):
    """A failure inside the :mod:`repro.storage` filesystem layer."""


class ClusterError(LannsError):
    """A failure inside the :mod:`repro.sparklite` execution engine."""


class TransportError(LannsError):
    """Base class for failures in the :mod:`repro.net` RPC layer."""


class ProtocolError(TransportError):
    """A malformed, truncated, oversized or wrong-version wire frame.

    Raised by the framing layer on decode; a peer speaking garbage is
    indistinguishable from a broken connection, so the broker's
    ``degrade`` policy treats this like a connectivity failure.
    """


class ConnectionLostError(TransportError):
    """A searcher connection could not be established or died mid-call.

    Covers connection refused, resets, and EOF in the middle of a frame
    -- the failure modes of a crashed or unreachable searcher process.
    """


class DeadlineExceededError(TransportError):
    """A remote call (or broker fan-out) ran past its deadline."""


class OverloadedError(TransportError):
    """A searcher shed the request at admission instead of executing it.

    Raised when a searcher's in-flight limit and admission queue are both
    full.  Unlike :class:`DeadlineExceededError` the work was refused
    *instantly*, so the caller still has budget to fail over to a sibling
    replica -- the broker treats this as failover-eligible and honors the
    optional ``retry_after_s`` backoff hint from the server.
    """

    def __init__(
        self, message: str, *, retry_after_s: float | None = None
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class RemoteCallError(TransportError):
    """The searcher *executed* the request and returned a structured error.

    Unlike the connectivity failures above, the remote process is alive
    and answered; this usually signals a caller bug (unknown index name,
    bad shapes).  The broker therefore re-raises it even under the
    ``degrade`` partial-result policy.
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.remote_message = message


class StageTimeoutError(ClusterError):
    """Cascading executor failures exhausted all retries for a stage.

    This models the "time-out errors" of Section 5.3.1 of the paper: when
    executors die repeatedly before a stage completes, the stage restarts
    cascade and the job never finishes.  Checkpointing partial results to
    HDFS (``checkpoint=True``) prevents this failure mode.
    """
