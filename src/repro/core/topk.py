"""The ``perShardTopK`` optimisation (Section 5.3.2, Eq. 5-6).

When a dataset is hash-sharded uniformly across ``S`` shards, the number
of a query's true top-``K`` neighbors landing in one shard is
``Binomial(K, 1/S)``.  Asking each shard for the full ``K`` results wastes
network and merge cost; LANNS instead fetches the upper end of the normal
approximation interval of that binomial:

    s' = 1 / S
    cI = s' + f(p) * sqrt(s' (1 - s') / topK)          (Eq. 5)
    perShardTopK = min(topK, ceil(cI * topK))          (Eq. 6)

where ``f(p)`` is a standard-normal quantile for confidence ``p``.

The paper's text defines ``f(p)`` as the ``1 - p/2`` quantile with
``p = 0.95``, which evaluates to z = 0.063 -- clearly a typo for the usual
Wald interval (at confidence 0.95 one wants z = 1.96).  We default to the
standard ``(1 + p) / 2`` quantile and expose the literal reading behind
``paper_literal=True`` so the difference can be measured (see
``benchmarks/bench_ablation_per_shard_topk.py``).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

from repro.utils.validation import check_positive


def probit(quantile: float) -> float:
    """Inverse CDF of the standard normal distribution."""
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    return float(norm.ppf(quantile))


def per_shard_top_k(
    top_k: int,
    num_shards: int,
    confidence: float = 0.95,
    *,
    paper_literal: bool = False,
) -> int:
    """How many neighbors to request from each of ``num_shards`` shards.

    Parameters
    ----------
    top_k:
        The global number of neighbors requested.
    num_shards:
        Number of uniform hash shards.
    confidence:
        ``topK.confidence``: the probability that a shard's share of the
        true top-K fits within the returned budget.
    paper_literal:
        Use the paper's literal ``1 - p/2`` quantile (see module docs).

    Returns
    -------
    An integer in ``[1, top_k]``.  With one shard this is exactly
    ``top_k``; the budget shrinks as shards are added but never below 1.

    Notes
    -----
    Segments deliberately do NOT get their own budget: "Employing a per
    segment topK could lead to fewer than topK results as the final
    output. Thus ... we propagate the shard level perShardTopK to the
    associated segments" (Section 5.3.2).
    """
    check_positive(top_k, "top_k")
    check_positive(num_shards, "num_shards")
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if num_shards == 1:
        return int(top_k)
    share = 1.0 / num_shards
    quantile = (1.0 - confidence / 2.0) if paper_literal else (1.0 + confidence) / 2.0
    z = probit(quantile)
    interval = share + z * math.sqrt(share * (1.0 - share) / top_k)
    budget = min(top_k, math.ceil(interval * top_k))
    return max(int(budget), 1)


def batch_top_k(
    dists: np.ndarray,
    ids: np.ndarray,
    k: int,
    *,
    dedupe: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised per-row top-k over ``(B, C)`` candidate arrays.

    The multi-query counterpart of :func:`repro.utils.heap.merge_top_k`:
    every row is reduced to its ``k`` best ``(distance, id)`` pairs,
    ordered ascending by ``(distance, id)`` -- the same tie-break the
    single-query :class:`~repro.utils.heap.TopKHeap` uses -- with one
    ``lexsort`` over the whole batch instead of B Python heaps.

    Parameters
    ----------
    dists, ids:
        ``(B, C)`` candidate distances (float) and ids (int).  Padding
        entries are id ``-1`` / distance ``inf``.
    k:
        Results per row.
    dedupe:
        Keep each id once per row, at its best distance (physical spill
        can surface a point from several segments).

    Returns
    -------
    ``(B, k)`` id and distance arrays, padded with ``-1`` / ``inf``.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    dists = np.asarray(dists, dtype=np.float64)
    ids = np.asarray(ids, dtype=np.int64)
    if dists.shape != ids.shape or ids.ndim != 2:
        raise ValueError(
            f"dists/ids must be matching 2-D arrays, got {dists.shape} "
            f"and {ids.shape}"
        )
    num_rows, num_cols = ids.shape
    out_ids = np.full((num_rows, k), -1, dtype=np.int64)
    out_dists = np.full((num_rows, k), np.inf, dtype=np.float64)
    if num_rows == 0 or num_cols == 0:
        return out_ids, out_dists

    order = np.lexsort((ids, dists), axis=-1)
    ids_sorted = np.take_along_axis(ids, order, axis=1)
    dists_sorted = np.take_along_axis(dists, order, axis=1)
    if dedupe:
        # Keep an entry iff its id has no earlier (better-distance)
        # occurrence in the same row.  A stable per-row argsort on id
        # groups duplicates adjacently while preserving distance order
        # inside each group, so the first element of every run is the
        # best; scattering that mask back through the argsort gives the
        # keep mask.  No arithmetic on ids, so any int64 ids are safe.
        by_id = np.argsort(ids_sorted, axis=1, kind="stable")
        grouped = np.take_along_axis(ids_sorted, by_id, axis=1)
        first_of_run = np.ones((num_rows, num_cols), dtype=bool)
        first_of_run[:, 1:] = grouped[:, 1:] != grouped[:, :-1]
        keep = np.empty((num_rows, num_cols), dtype=bool)
        np.put_along_axis(keep, by_id, first_of_run, axis=1)
    else:
        keep = np.ones((num_rows, num_cols), dtype=bool)
    rank = np.cumsum(keep, axis=1)
    take = keep & (rank <= k)
    rows, cols = np.nonzero(take)
    slots = rank[rows, cols] - 1
    out_ids[rows, slots] = ids_sorted[rows, cols]
    out_dists[rows, slots] = dists_sorted[rows, cols]
    return out_ids, out_dists
