"""The ``perShardTopK`` optimisation (Section 5.3.2, Eq. 5-6).

When a dataset is hash-sharded uniformly across ``S`` shards, the number
of a query's true top-``K`` neighbors landing in one shard is
``Binomial(K, 1/S)``.  Asking each shard for the full ``K`` results wastes
network and merge cost; LANNS instead fetches the upper end of the normal
approximation interval of that binomial:

    s' = 1 / S
    cI = s' + f(p) * sqrt(s' (1 - s') / topK)          (Eq. 5)
    perShardTopK = min(topK, ceil(cI * topK))          (Eq. 6)

where ``f(p)`` is a standard-normal quantile for confidence ``p``.

The paper's text defines ``f(p)`` as the ``1 - p/2`` quantile with
``p = 0.95``, which evaluates to z = 0.063 -- clearly a typo for the usual
Wald interval (at confidence 0.95 one wants z = 1.96).  We default to the
standard ``(1 + p) / 2`` quantile and expose the literal reading behind
``paper_literal=True`` so the difference can be measured (see
``benchmarks/bench_ablation_per_shard_topk.py``).
"""

from __future__ import annotations

import math

from scipy.stats import norm

from repro.utils.validation import check_positive


def probit(quantile: float) -> float:
    """Inverse CDF of the standard normal distribution."""
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    return float(norm.ppf(quantile))


def per_shard_top_k(
    top_k: int,
    num_shards: int,
    confidence: float = 0.95,
    *,
    paper_literal: bool = False,
) -> int:
    """How many neighbors to request from each of ``num_shards`` shards.

    Parameters
    ----------
    top_k:
        The global number of neighbors requested.
    num_shards:
        Number of uniform hash shards.
    confidence:
        ``topK.confidence``: the probability that a shard's share of the
        true top-K fits within the returned budget.
    paper_literal:
        Use the paper's literal ``1 - p/2`` quantile (see module docs).

    Returns
    -------
    An integer in ``[1, top_k]``.  With one shard this is exactly
    ``top_k``; the budget shrinks as shards are added but never below 1.

    Notes
    -----
    Segments deliberately do NOT get their own budget: "Employing a per
    segment topK could lead to fewer than topK results as the final
    output. Thus ... we propagate the shard level perShardTopK to the
    associated segments" (Section 5.3.2).
    """
    check_positive(top_k, "top_k")
    check_positive(num_shards, "num_shards")
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if num_shards == 1:
        return int(top_k)
    share = 1.0 / num_shards
    quantile = (1.0 - confidence / 2.0) if paper_literal else (1.0 + confidence) / 2.0
    z = probit(quantile)
    interval = share + z * math.sqrt(share * (1.0 - share) / top_k)
    budget = min(top_k, math.ceil(interval * top_k))
    return max(int(budget), 1)
