"""In-memory construction of a LANNS index (Figures 5 and 6, sans HDFS).

The builder performs the same steps as the offline Spark pipeline:

1. learn (or accept) a shared segmenter from a uniform subsample;
2. tag every document with a shard id (stable hash of its key) and one or
   more segment ids (segmenter routing; >1 only under physical spill);
3. build one HNSW index per (shard, segment) partition -- in parallel on a
   :class:`~repro.sparklite.cluster.LocalCluster` when one is supplied.

The HDFS-integrated version of the same flow lives in
:mod:`repro.offline.indexing`.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.core.config import LannsConfig
from repro.core.index import LannsIndex, ShardIndex
from repro.hnsw.index import HnswIndex
from repro.hnsw.params import HnswParams
from repro.segmenters.base import Segmenter
from repro.segmenters.learner import learn_segmenter
from repro.sharding.sharder import HashSharder
from repro.utils.rng import spawn_seeds
from repro.utils.validation import as_matrix


class LannsBuilder:
    """Builds :class:`~repro.core.index.LannsIndex` instances.

    Parameters
    ----------
    config:
        The platform configuration.
    """

    def __init__(self, config: LannsConfig | None = None) -> None:
        self.config = config or LannsConfig()

    # -- segmenter ---------------------------------------------------------------
    def learn_segmenter(self, vectors: np.ndarray) -> Segmenter:
        """Pre-learn the shared segmenter on a uniform subsample."""
        config = self.config
        return learn_segmenter(
            vectors,
            config.segmenter,
            config.num_segments,
            alpha=config.alpha,
            spill_mode=config.spill_mode,
            sample_size=config.segmenter_sample_size,
            seed=config.seed,
        )

    # -- partitioning -------------------------------------------------------------
    def partition(
        self,
        vectors: np.ndarray,
        ids: np.ndarray,
        segmenter: Segmenter,
    ) -> dict[tuple[int, int], tuple[np.ndarray, np.ndarray]]:
        """Tag and split the dataset by (shard, segment).

        Returns
        -------
        Mapping ``(shard_id, segment_id) -> (ids, vectors)``.  Every pair
        is present, possibly with empty arrays.  Under physical spill a
        document can appear in several segments of its shard.

        With ``sharding="segment"`` the shard id *is* the segment id:
        each (document, segment) assignment lands on the shard aligned
        with that segment, so shard ``s`` hosts segment ``s`` and every
        other segment of shard ``s`` stays empty.  That placement is what
        lets the online router prune fan-out per query.
        """
        config = self.config
        partitions: dict[tuple[int, int], tuple[list, list]] = {
            (shard, segment): ([], [])
            for shard in range(config.num_shards)
            for segment in range(config.num_segments)
        }
        if config.sharding == "segment":
            routes = segmenter.route_data_batch(vectors)
            for position, segments in enumerate(routes):
                for segment in segments:
                    id_list, vec_list = partitions[(segment, segment)]
                    id_list.append(int(ids[position]))
                    vec_list.append(position)
        else:
            sharder = HashSharder(config.num_shards)
            shard_rows = sharder.partition(ids.tolist())
            for shard, rows in enumerate(shard_rows):
                if rows.size == 0:
                    continue
                shard_vectors = vectors[rows]
                shard_ids = ids[rows]
                routes = segmenter.route_data_batch(shard_vectors)
                for position, segments in enumerate(routes):
                    for segment in segments:
                        id_list, vec_list = partitions[(shard, segment)]
                        id_list.append(int(shard_ids[position]))
                        vec_list.append(rows[position])
        dim = vectors.shape[1]
        result: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        for key, (id_list, row_list) in partitions.items():
            part_ids = np.asarray(id_list, dtype=np.int64)
            part_vectors = (
                vectors[np.asarray(row_list, dtype=np.int64)]
                if row_list
                else np.empty((0, dim), dtype=np.float32)
            )
            result[key] = (part_ids, part_vectors)
        return result

    # -- build ---------------------------------------------------------------------
    def build(
        self,
        vectors: np.ndarray,
        ids: np.ndarray | None = None,
        *,
        segmenter: Segmenter | None = None,
        cluster=None,
    ) -> LannsIndex:
        """Build the full index.

        Parameters
        ----------
        vectors:
            Dataset of shape ``(n, dim)``.
        ids:
            Optional external keys (default ``0..n-1``); sharding hashes
            these.
        segmenter:
            A pre-learnt segmenter to reuse (the paper shares one across
            shards); learnt from ``vectors`` when omitted.
        cluster:
            Optional :class:`~repro.sparklite.cluster.LocalCluster`; when
            given, per-partition HNSW builds run as cluster tasks (and are
            timed for the build-time experiments).
        """
        vectors = as_matrix(vectors, name="vectors")
        n = vectors.shape[0]
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (n,):
                raise ValueError(f"ids has shape {ids.shape}, expected ({n},)")
        config = self.config
        if segmenter is None:
            segmenter = self.learn_segmenter(vectors)
        if segmenter.num_segments != config.num_segments:
            raise ValueError(
                f"segmenter has {segmenter.num_segments} segments, config "
                f"expects {config.num_segments}"
            )
        partitions = self.partition(vectors, ids, segmenter)
        seeds = spawn_seeds(config.seed, config.total_partitions)

        keys = sorted(partitions)
        # functools.partial of a module-level function, not a closure:
        # cluster mode "processes" has to pickle each task.
        tasks = [
            partial(
                _build_partition_task,
                key,
                partitions[key][1],
                partitions[key][0],
                config,
                seeds[position],
            )
            for position, key in enumerate(keys)
        ]
        if cluster is not None:
            outcome = cluster.run_tasks(tasks, stage="hnsw-build")
            built = dict(outcome.results)
        else:
            built = dict(task() for task in tasks)

        shards = []
        for shard in range(config.num_shards):
            segments = [
                built[(shard, segment)] for segment in range(config.num_segments)
            ]
            shards.append(ShardIndex(shard, segments, segmenter))
        return LannsIndex(config, shards, segmenter)


def _build_partition_task(
    key: tuple[int, int],
    part_vectors: np.ndarray,
    part_ids: np.ndarray,
    config: LannsConfig,
    seed: int,
) -> tuple[tuple[int, int], HnswIndex]:
    """Build one (shard, segment) partition; picklable for any cluster mode."""
    return key, _build_segment_index(part_vectors, part_ids, config, seed)


def _build_segment_index(
    vectors: np.ndarray,
    ids: np.ndarray,
    config: LannsConfig,
    seed: int,
) -> HnswIndex:
    """Build one segment's HNSW index (runs inside an executor)."""
    params_dict = config.hnsw.to_dict()
    params_dict["seed"] = seed % (2**31)
    params = HnswParams.from_dict(params_dict)
    index = HnswIndex(dim=vectors.shape[1], metric=config.metric, params=params)
    if vectors.shape[0]:
        index.add(vectors, ids=ids)
    return index


def build_lanns_index(
    vectors: np.ndarray,
    ids: np.ndarray | None = None,
    *,
    config: LannsConfig | None = None,
    segmenter: Segmenter | None = None,
    cluster=None,
) -> LannsIndex:
    """One-call LANNS index construction (see :class:`LannsBuilder`)."""
    return LannsBuilder(config).build(
        vectors, ids, segmenter=segmenter, cluster=cluster
    )
