"""Configuration for a LANNS index.

``LannsConfig`` bundles every tunable of the platform: the ``(n, m)``
partitioning of the paper (``num_shards``, ``num_segments``), the
segmentation strategy and its spill parameters, the HNSW hyper-parameters
used inside each segment, and the ``perShardTopK`` confidence.

The config serializes to a plain dict; the storage layer couples it with
every exported index so offline build and online serving can never drift
apart (Section 7 of the paper, enforced by
:class:`repro.errors.MetadataMismatchError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.hnsw.params import HnswParams

#: Segmenter kinds accepted by the platform.
SEGMENTER_KINDS = ("rs", "rh", "apd")
#: Spill modes (Section 4.3.2 / Table 7).
SPILL_MODES = ("virtual", "physical")
#: Metrics supported end-to-end.
METRICS = ("euclidean", "cosine", "inner_product")
#: First-level placement strategies.
SHARDING_MODES = ("hash", "segment")


@dataclass(frozen=True)
class LannsConfig:
    """All tunables of a LANNS deployment.

    Parameters
    ----------
    num_shards:
        First-level partitions; each shard is hosted on its own (simulated)
        server node and every query visits every shard.
    sharding:
        First-level placement.  ``"hash"`` (default) spreads documents by
        stable key hash, so every shard hosts every segment and queries
        must visit every shard.  ``"segment"`` aligns shards with
        segments (requires ``num_shards == num_segments``): shard ``s``
        hosts exactly segment ``s``, which lets the online router prune
        fan-out to the top-``spill`` segments' shards.
    num_segments:
        Second-level partitions per shard.  Must be a power of two for the
        hyperplane segmenters (the tree is binary).
    segmenter:
        ``"rs"``, ``"rh"`` or ``"apd"``.
    alpha:
        Spill fraction; the paper uses 0.15 ("we route about 30% of
        queries to both partitions at any level").
    spill_mode:
        ``"virtual"`` (query-side spill, production default) or
        ``"physical"`` (data-side duplication).
    metric:
        Distance function shared by segmenter and HNSW.
    hnsw:
        Per-segment HNSW hyper-parameters.
    topk_confidence:
        ``topK.confidence`` for the perShardTopK optimisation (Eq. 5-6);
        paper default 0.95.
    use_per_shard_topk:
        Disable to always fetch full topK from each shard.
    paper_literal_probit:
        Use the paper's literal ``(1 - p/2)`` quantile instead of the
        standard ``(1 + p)/2``; see DESIGN.md substitution #7.
    segmenter_sample_size:
        Subsample budget for segmenter learning (paper: 250k).
    seed:
        Master seed; per-segment HNSW seeds are derived from it.
    """

    num_shards: int = 1
    num_segments: int = 1
    sharding: str = "hash"
    segmenter: str = "rs"
    alpha: float = 0.15
    spill_mode: str = "virtual"
    metric: str = "euclidean"
    hnsw: HnswParams = field(default_factory=HnswParams)
    topk_confidence: float = 0.95
    use_per_shard_topk: bool = True
    paper_literal_probit: bool = False
    segmenter_sample_size: int = 250_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.num_segments < 1:
            raise ConfigError(
                f"num_segments must be >= 1, got {self.num_segments}"
            )
        if self.sharding not in SHARDING_MODES:
            raise ConfigError(
                f"sharding must be one of {SHARDING_MODES}, "
                f"got {self.sharding!r}"
            )
        if self.sharding == "segment" and self.num_shards != self.num_segments:
            raise ConfigError(
                "segment-aligned sharding requires num_shards == "
                f"num_segments, got {self.num_shards} shards for "
                f"{self.num_segments} segments"
            )
        if self.segmenter not in SEGMENTER_KINDS:
            raise ConfigError(
                f"segmenter must be one of {SEGMENTER_KINDS}, "
                f"got {self.segmenter!r}"
            )
        if self.segmenter in ("rh", "apd") and (
            self.num_segments & (self.num_segments - 1)
        ):
            raise ConfigError(
                "hyperplane segmenters need a power-of-two num_segments, "
                f"got {self.num_segments}"
            )
        if not 0.0 <= self.alpha < 0.5:
            raise ConfigError(f"alpha must be in [0, 0.5), got {self.alpha}")
        if self.spill_mode not in SPILL_MODES:
            raise ConfigError(
                f"spill_mode must be one of {SPILL_MODES}, "
                f"got {self.spill_mode!r}"
            )
        if self.metric not in METRICS:
            raise ConfigError(
                f"metric must be one of {METRICS}, got {self.metric!r}"
            )
        if not 0.0 < self.topk_confidence < 1.0:
            raise ConfigError(
                f"topk_confidence must be in (0, 1), got {self.topk_confidence}"
            )
        if self.segmenter_sample_size < 1:
            raise ConfigError(
                "segmenter_sample_size must be positive, got "
                f"{self.segmenter_sample_size}"
            )

    @property
    def partitioning(self) -> tuple[int, int]:
        """The paper's ``(n, m)`` notation: (num_shards, num_segments)."""
        return (self.num_shards, self.num_segments)

    @property
    def quantize(self) -> str:
        """Compressed-domain scoring backend (``hnsw.quantize``).

        ``"none"``, ``"int8"`` or ``"pq"``; surfaced here because the
        manifest, serving stats and CLI all report it at deployment
        granularity even though it lives on the per-segment HNSW params.
        """
        return self.hnsw.quantize

    @property
    def total_partitions(self) -> int:
        """Number of (shard, segment) HNSW indices built."""
        return self.num_shards * self.num_segments

    def with_updates(self, **changes) -> "LannsConfig":
        """A copy with the given fields replaced (validates again)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """Plain-dict form (used in persisted index metadata)."""
        return {
            "num_shards": self.num_shards,
            "num_segments": self.num_segments,
            "sharding": self.sharding,
            "segmenter": self.segmenter,
            "alpha": self.alpha,
            "spill_mode": self.spill_mode,
            "metric": self.metric,
            "hnsw": self.hnsw.to_dict(),
            "topk_confidence": self.topk_confidence,
            "use_per_shard_topk": self.use_per_shard_topk,
            "paper_literal_probit": self.paper_literal_probit,
            "segmenter_sample_size": self.segmenter_sample_size,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LannsConfig":
        """Inverse of :meth:`to_dict`."""
        payload = dict(payload)
        hnsw_payload = payload.pop("hnsw", None)
        hnsw = HnswParams.from_dict(hnsw_payload) if hnsw_payload else HnswParams()
        known = {f for f in cls.__dataclass_fields__ if f != "hnsw"}
        return cls(
            hnsw=hnsw, **{k: v for k, v in payload.items() if k in known}
        )
