"""The LANNS core: two-level partitioned ANN index (Sections 4 and 5).

- :class:`~repro.core.config.LannsConfig` -- every tunable in one place.
- :class:`~repro.core.index.LannsIndex` -- shards -> segments -> HNSW with
  two-level merging and ``perShardTopK``.
- :func:`~repro.core.builder.build_lanns_index` -- one-call construction.
"""

from repro.core.config import LannsConfig
from repro.core.topk import per_shard_top_k
from repro.core.merge import merge_segment_results, merge_shard_results
from repro.core.index import LannsIndex, ShardIndex
from repro.core.builder import LannsBuilder, build_lanns_index
from repro.core.contextual import ContextualLannsIndex, build_contextual_index

__all__ = [
    "LannsConfig",
    "per_shard_top_k",
    "merge_segment_results",
    "merge_shard_results",
    "LannsIndex",
    "ShardIndex",
    "LannsBuilder",
    "build_lanns_index",
    "ContextualLannsIndex",
    "build_contextual_index",
]
