"""The LANNS index: shards -> segments -> HNSW, with two-level merging.

This is the in-memory form of the platform.  The offline pipelines
(:mod:`repro.offline`) build the same structure through the sparklite
cluster and persist it through :mod:`repro.storage`; the online tier
(:mod:`repro.online`) hosts one :class:`ShardIndex` per searcher node.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import LannsConfig
from repro.core.merge import merge_segment_results, merge_shard_results
from repro.core.topk import per_shard_top_k
from repro.errors import IndexNotBuiltError
from repro.hnsw.index import HnswIndex
from repro.segmenters.base import Segmenter
from repro.sharding.sharder import HashSharder
from repro.utils.validation import as_matrix, as_vector


class ShardIndex:
    """One shard: a set of segment HNSW indices plus the shared segmenter.

    Parameters
    ----------
    shard_id:
        Position of this shard in the LANNS index.
    segments:
        One :class:`~repro.hnsw.index.HnswIndex` per segment (some may be
        empty and are skipped at query time).
    segmenter:
        The shared, pre-learnt segmenter used for query routing.
    """

    def __init__(
        self,
        shard_id: int,
        segments: list[HnswIndex],
        segmenter: Segmenter,
    ) -> None:
        if len(segments) != segmenter.num_segments:
            raise ValueError(
                f"shard {shard_id}: {len(segments)} segment indices but "
                f"segmenter expects {segmenter.num_segments}"
            )
        self.shard_id = int(shard_id)
        self.segments = segments
        self.segmenter = segmenter

    def __len__(self) -> int:
        """Number of stored vectors (counting physical-spill duplicates)."""
        return sum(len(segment) for segment in self.segments)

    @property
    def segment_sizes(self) -> list[int]:
        """Vector count per segment."""
        return [len(segment) for segment in self.segments]

    def probed_segments(self, query: np.ndarray) -> tuple[int, ...]:
        """Segment ids the segmenter would probe for ``query``."""
        return self.segmenter.route_query(query)

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
    ) -> list[tuple[float, int]]:
        """Search the shard: probe routed segments, merge (level 1).

        Returns ``(distance, external_id)`` pairs, ascending, at most
        ``k`` of them.
        """
        segment_ids = self.segmenter.route_query(query)
        partials = []
        for segment_id in segment_ids:
            segment = self.segments[segment_id]
            if len(segment) == 0:
                continue
            ids, dists = segment.search(query, min(k, len(segment)), ef=ef)
            partials.append(list(zip(dists.tolist(), ids.tolist())))
        if not partials:
            return []
        return merge_segment_results(partials, k)


class LannsIndex:
    """The full two-level LANNS index.

    Build with :func:`repro.core.builder.build_lanns_index`; query with
    :meth:`query` / :meth:`query_batch`.
    """

    def __init__(
        self,
        config: LannsConfig,
        shards: list[ShardIndex],
        segmenter: Segmenter,
    ) -> None:
        if len(shards) != config.num_shards:
            raise ValueError(
                f"{len(shards)} shards but config expects {config.num_shards}"
            )
        self.config = config
        self.shards = shards
        self.segmenter = segmenter
        self.sharder = HashSharder(config.num_shards)

    # -- introspection ----------------------------------------------------------
    def __len__(self) -> int:
        """Stored vector count, including physical-spill duplicates."""
        return sum(len(shard) for shard in self.shards)

    @property
    def dim(self) -> int:
        """Vector dimensionality (from the first non-empty segment)."""
        for shard in self.shards:
            for segment in shard.segments:
                if len(segment):
                    return segment.dim
        raise IndexNotBuiltError("index has no vectors")

    def stats(self) -> dict:
        """Shape summary used by examples, logs and tests."""
        return {
            "partitioning": self.config.partitioning,
            "segmenter": self.config.segmenter,
            "spill_mode": self.config.spill_mode,
            "total_vectors": len(self),
            "shard_sizes": [len(shard) for shard in self.shards],
            "segment_sizes": [shard.segment_sizes for shard in self.shards],
        }

    # -- querying ----------------------------------------------------------------
    def per_shard_budget(self, top_k: int) -> int:
        """The perShardTopK each shard is asked for (Eq. 5-6)."""
        if not self.config.use_per_shard_topk:
            return int(top_k)
        return per_shard_top_k(
            top_k,
            self.config.num_shards,
            self.config.topk_confidence,
            paper_literal=self.config.paper_literal_probit,
        )

    def query(
        self,
        query: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-k over the whole index.

        Every query visits every shard (sharding is locality-free); inside
        a shard the segmenter decides which segments to probe.  Shard
        results are capped at ``perShardTopK`` and merged at this "broker"
        level (level-2 merge).

        Returns
        -------
        (ids, distances): int64 and float64 arrays, ascending by distance.
        """
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        if len(self) == 0:
            raise IndexNotBuiltError("query on an empty LANNS index")
        query = as_vector(query, name="query")
        budget = self.per_shard_budget(top_k)
        shard_results = [
            shard.search(query, budget, ef=ef) for shard in self.shards
        ]
        merged = merge_shard_results(shard_results, top_k)
        ids = np.asarray([item_id for _, item_id in merged], dtype=np.int64)
        dists = np.asarray([dist for dist, _ in merged], dtype=np.float64)
        return ids, dists

    def query_batch(
        self,
        queries: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Query many vectors; rows padded with id -1 / distance inf."""
        queries = as_matrix(queries, name="queries")
        n = queries.shape[0]
        ids = np.full((n, top_k), -1, dtype=np.int64)
        dists = np.full((n, top_k), np.inf, dtype=np.float64)
        for i in range(n):
            found_ids, found_dists = self.query(queries[i], top_k, ef=ef)
            count = len(found_ids)
            ids[i, :count] = found_ids
            dists[i, :count] = found_dists
        return ids, dists
