"""The LANNS index: shards -> segments -> HNSW, with two-level merging.

This is the in-memory form of the platform.  The offline pipelines
(:mod:`repro.offline`) build the same structure through the sparklite
cluster and persist it through :mod:`repro.storage`; the online tier
(:mod:`repro.online`) hosts one :class:`ShardIndex` per searcher node.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import LannsConfig
from repro.core.merge import (
    merge_segment_results_batch,
    merge_shard_results_batch,
)
from repro.core.topk import per_shard_top_k
from repro.errors import IndexNotBuiltError
from repro.hnsw.index import HnswIndex
from repro.segmenters.base import Segmenter
from repro.sharding.sharder import HashSharder
from repro.utils.validation import as_matrix, as_vector


class ShardIndex:
    """One shard: a set of segment HNSW indices plus the shared segmenter.

    Parameters
    ----------
    shard_id:
        Position of this shard in the LANNS index.
    segments:
        One :class:`~repro.hnsw.index.HnswIndex` per segment (some may be
        empty and are skipped at query time).
    segmenter:
        The shared, pre-learnt segmenter used for query routing.
    """

    def __init__(
        self,
        shard_id: int,
        segments: list[HnswIndex],
        segmenter: Segmenter,
    ) -> None:
        if len(segments) != segmenter.num_segments:
            raise ValueError(
                f"shard {shard_id}: {len(segments)} segment indices but "
                f"segmenter expects {segmenter.num_segments}"
            )
        self.shard_id = int(shard_id)
        self.segments = segments
        self.segmenter = segmenter

    def __len__(self) -> int:
        """Number of stored vectors (counting physical-spill duplicates)."""
        return sum(len(segment) for segment in self.segments)

    @property
    def segment_sizes(self) -> list[int]:
        """Vector count per segment."""
        return [len(segment) for segment in self.segments]

    def probed_segments(self, query: np.ndarray) -> tuple[int, ...]:
        """Segment ids the segmenter would probe for ``query``."""
        return self.segmenter.route_query(query)

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
    ) -> list[tuple[float, int]]:
        """Search the shard: probe routed segments, merge (level 1).

        A thin wrapper over :meth:`search_batch` with a batch of one.
        Returns ``(distance, external_id)`` pairs, ascending, at most
        ``k`` of them.
        """
        query = as_vector(query, name="query")
        ids, dists = self.search_batch(query[np.newaxis, :], k, ef=ef)
        return [
            (float(dist), int(item))
            for dist, item in zip(dists[0], ids[0])
            if item >= 0
        ]

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
        probes: list[tuple[int, ...]] | None = None,
        cost=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched shard search: route, lockstep-search, merge (level 1).

        Query routing is one vectorised ``route_query_batch`` call; each
        probed segment searches its sub-batch in lockstep; the segment
        candidates merge per query through the vectorised batch merge.

        ``probes`` (one segment-id tuple per row) overrides the
        segmenter's routing -- the broker's router pushes its spilled
        segment choice down here, since under the segment-aligned layout
        a query's *natural* segment may be empty on this shard.

        ``cost`` optionally accumulates this batch's search work (see
        :class:`~repro.obs.cost.SearchCost`); every executed
        ``(query row, segment)`` probe adds one to ``segments_probed``
        and the segment kernels fill in the rest.  Results are identical
        with or without it.

        Returns
        -------
        ``(B, k)`` id and distance arrays, padded with ``-1`` / ``inf``.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = as_matrix(queries, name="queries")
        num_queries = queries.shape[0]
        empty_ids = np.full((num_queries, k), -1, dtype=np.int64)
        empty_dists = np.full((num_queries, k), np.inf, dtype=np.float64)
        if num_queries == 0:
            return empty_ids, empty_dists
        if probes is not None:
            if len(probes) != num_queries:
                raise ValueError(
                    f"probes has {len(probes)} rows for "
                    f"{num_queries} queries"
                )
            num_segments = self.segmenter.num_segments
            for row, probed in enumerate(probes):
                for segment_id in probed:
                    if not 0 <= segment_id < num_segments:
                        raise ValueError(
                            f"probe segment {segment_id} of row {row} out "
                            f"of range for {num_segments} segments"
                        )
            routes = probes
        else:
            routes = self.segmenter.route_query_batch(queries)
        segment_rows: dict[int, list[int]] = {}
        for row, probed in enumerate(routes):
            for segment_id in probed:
                segment_rows.setdefault(segment_id, []).append(row)
        # Pack each query's segment candidates into per-row probe slots,
        # so the merge width scales with probes-per-query (1-2 under
        # virtual spill), not with the shard's total segment count.
        max_probes = max((len(probed) for probed in routes), default=0)
        if max_probes == 0:
            return empty_ids, empty_dists
        cand_ids = np.full(
            (num_queries, max_probes * k), -1, dtype=np.int64
        )
        cand_dists = np.full(
            (num_queries, max_probes * k), np.inf, dtype=np.float64
        )
        next_slot = np.zeros(num_queries, dtype=np.int64)
        any_results = False
        for segment_id in sorted(segment_rows):
            segment = self.segments[segment_id]
            if len(segment) == 0:
                continue
            rows = np.asarray(segment_rows[segment_id], dtype=np.int64)
            budget = min(k, len(segment))
            if cost is not None:
                cost.segments_probed += len(rows)
            found_ids, found_dists = segment.search_batch(
                queries[rows], budget, ef=ef, cost=cost
            )
            columns = next_slot[rows, np.newaxis] * k + np.arange(budget)
            cand_ids[rows[:, np.newaxis], columns] = found_ids
            cand_dists[rows[:, np.newaxis], columns] = found_dists
            next_slot[rows] += 1
            any_results = True
        if not any_results:
            return empty_ids, empty_dists
        return merge_segment_results_batch(cand_ids, cand_dists, k)


class LannsIndex:
    """The full two-level LANNS index.

    Build with :func:`repro.core.builder.build_lanns_index`; query with
    :meth:`query` / :meth:`query_batch`.
    """

    def __init__(
        self,
        config: LannsConfig,
        shards: list[ShardIndex],
        segmenter: Segmenter,
    ) -> None:
        if len(shards) != config.num_shards:
            raise ValueError(
                f"{len(shards)} shards but config expects {config.num_shards}"
            )
        self.config = config
        self.shards = shards
        self.segmenter = segmenter
        self.sharder = HashSharder(config.num_shards)

    # -- introspection ----------------------------------------------------------
    def __len__(self) -> int:
        """Stored vector count, including physical-spill duplicates."""
        return sum(len(shard) for shard in self.shards)

    @property
    def dim(self) -> int:
        """Vector dimensionality (from the first non-empty segment)."""
        for shard in self.shards:
            for segment in shard.segments:
                if len(segment):
                    return segment.dim
        raise IndexNotBuiltError("index has no vectors")

    def stats(self) -> dict:
        """Shape summary used by examples, logs and tests."""
        return {
            "partitioning": self.config.partitioning,
            "segmenter": self.config.segmenter,
            "spill_mode": self.config.spill_mode,
            "total_vectors": len(self),
            "shard_sizes": [len(shard) for shard in self.shards],
            "segment_sizes": [shard.segment_sizes for shard in self.shards],
        }

    # -- querying ----------------------------------------------------------------
    def per_shard_budget(self, top_k: int) -> int:
        """The perShardTopK each shard is asked for (Eq. 5-6).

        Eq. 5-6 model a query's neighbors as uniformly hashed across
        shards; the segment-aligned layout concentrates them in a few
        nearby segments instead, so there the only budget that cannot
        truncate answers below ``top_k`` is ``top_k`` itself.
        """
        if not self.config.use_per_shard_topk:
            return int(top_k)
        if self.config.sharding == "segment":
            return int(top_k)
        return per_shard_top_k(
            top_k,
            self.config.num_shards,
            self.config.topk_confidence,
            paper_literal=self.config.paper_literal_probit,
        )

    def query(
        self,
        query: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-k over the whole index.

        A thin wrapper over :meth:`query_batch` with a batch of one.
        Every query visits every shard (sharding is locality-free); inside
        a shard the segmenter decides which segments to probe.  Shard
        results are capped at ``perShardTopK`` and merged at this "broker"
        level (level-2 merge).

        Returns
        -------
        (ids, distances): int64 and float64 arrays, ascending by distance.
        """
        query = as_vector(query, name="query")
        ids, dists = self.query_batch(query[np.newaxis, :], top_k, ef=ef)
        valid = ids[0] >= 0
        return ids[0][valid], dists[0][valid]

    def query_batch(
        self,
        queries: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched top-k: one shard sweep and one vectorised merge per batch.

        Per-query results are identical to calling :meth:`query` in a
        loop.  Rows are padded with id ``-1`` / distance ``inf``.
        """
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        if len(self) == 0:
            raise IndexNotBuiltError("query on an empty LANNS index")
        queries = as_matrix(queries, name="queries")
        if queries.shape[0] == 0:
            return (
                np.full((0, top_k), -1, dtype=np.int64),
                np.full((0, top_k), np.inf, dtype=np.float64),
            )
        budget = self.per_shard_budget(top_k)
        parts = [
            shard.search_batch(queries, budget, ef=ef)
            for shard in self.shards
        ]
        return merge_shard_results_batch(parts, top_k)
