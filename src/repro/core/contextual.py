"""Context-scoped LANNS indices (the Section 8 extension, end to end).

Builds a sharded LANNS index whose segments are *contexts* (language,
country, surface, ...).  At query time the caller names the contexts to
search and only those segments are probed -- inside every shard, with
the usual in-shard merge and perShardTopK budgeting on top.

Example::

    index = build_contextual_index(
        vectors, labels, contexts=["en", "de", "fr"], num_shards=2
    )
    ids, dists = index.query(vector, top_k=10, contexts=["en", "de"])
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import LannsConfig
from repro.core.index import ShardIndex
from repro.core.merge import merge_segment_results, merge_shard_results
from repro.errors import ConfigError
from repro.hnsw.index import HnswIndex
from repro.hnsw.params import HnswParams
from repro.segmenters.context import ContextSegmenter
from repro.sharding.sharder import HashSharder
from repro.utils.rng import spawn_seeds
from repro.utils.validation import as_matrix, as_vector


class ContextualLannsIndex:
    """A LANNS index partitioned by (shard, context).

    Construct with :func:`build_contextual_index`.
    """

    def __init__(
        self,
        config: LannsConfig,
        shards: list[ShardIndex],
        segmenter: ContextSegmenter,
    ) -> None:
        self.config = config
        self.shards = shards
        self.segmenter = segmenter

    def __len__(self) -> int:
        """Total stored vectors."""
        return sum(len(shard) for shard in self.shards)

    @property
    def contexts(self) -> list[str]:
        """The context labels this index can scope queries to."""
        return list(self.segmenter.contexts)

    def context_sizes(self) -> dict[str, int]:
        """Stored vector count per context (across shards)."""
        sizes = {context: 0 for context in self.contexts}
        for shard in self.shards:
            for context, segment in zip(self.contexts, shard.segments):
                sizes[context] += len(segment)
        return sizes

    def query(
        self,
        query: np.ndarray,
        top_k: int,
        *,
        contexts: Sequence[str] | None = None,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Search, scoped to ``contexts`` (all contexts when omitted).

        Every shard is visited (sharding is locality-free); within each
        shard only the named contexts' segments are probed and merged.
        """
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        query = as_vector(query, name="query")
        segments = (
            self.segmenter.route_contexts(contexts)
            if contexts is not None
            else tuple(range(self.segmenter.num_segments))
        )
        from repro.core.topk import per_shard_top_k

        budget = (
            per_shard_top_k(
                top_k,
                self.config.num_shards,
                self.config.topk_confidence,
                paper_literal=self.config.paper_literal_probit,
            )
            if self.config.use_per_shard_topk
            else top_k
        )
        shard_results = []
        for shard in self.shards:
            partials = []
            for segment_id in segments:
                segment = shard.segments[segment_id]
                if len(segment) == 0:
                    continue
                ids, dists = segment.search(
                    query, min(budget, len(segment)), ef=ef
                )
                partials.append(list(zip(dists.tolist(), ids.tolist())))
            if partials:
                shard_results.append(
                    merge_segment_results(partials, budget)
                )
        merged = merge_shard_results(shard_results, top_k)
        ids = np.asarray([item for _, item in merged], dtype=np.int64)
        dists = np.asarray([dist for dist, _ in merged], dtype=np.float64)
        return ids, dists


def build_contextual_index(
    vectors: np.ndarray,
    labels: Sequence[str],
    *,
    contexts: Sequence[str] | None = None,
    ids: np.ndarray | None = None,
    num_shards: int = 1,
    metric: str = "euclidean",
    hnsw: HnswParams | None = None,
    topk_confidence: float = 0.95,
    seed: int = 0,
) -> ContextualLannsIndex:
    """Build a context-segmented LANNS index.

    Parameters
    ----------
    vectors, labels:
        The corpus and one context label per row.
    contexts:
        Known labels in segment order; inferred (sorted unique) when
        omitted.
    num_shards:
        Level-1 hash shards, as in the base platform.
    """
    vectors = as_matrix(vectors, name="vectors")
    n = vectors.shape[0]
    labels = [str(label) for label in labels]
    if len(labels) != n:
        raise ValueError(
            f"{len(labels)} labels for {n} vectors"
        )
    if contexts is None:
        contexts = sorted(set(labels))
    segmenter = ContextSegmenter(contexts)
    if ids is None:
        ids = np.arange(n, dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape != (n,):
            raise ValueError(f"ids has shape {ids.shape}, expected ({n},)")

    hnsw = hnsw or HnswParams()
    try:
        config = LannsConfig(
            num_shards=num_shards,
            num_segments=segmenter.num_segments,
            segmenter="rs",  # placeholder; routing is handled here
            metric=metric,
            hnsw=hnsw,
            topk_confidence=topk_confidence,
            seed=seed,
        )
    except ConfigError as error:
        raise ConfigError(
            f"invalid contextual index parameters: {error}"
        ) from error

    sharder = HashSharder(num_shards)
    shard_rows = sharder.partition(ids.tolist())
    seeds = spawn_seeds(seed, num_shards * segmenter.num_segments)
    shards = []
    for shard_id, rows in enumerate(shard_rows):
        shard_labels = [labels[row] for row in rows.tolist()]
        routes = segmenter.route_labels(shard_labels)
        segments = []
        for segment_id in range(segmenter.num_segments):
            member_rows = rows[
                [position for position, route in enumerate(routes)
                 if route[0] == segment_id]
            ]
            params_dict = hnsw.to_dict()
            params_dict["seed"] = (
                seeds[shard_id * segmenter.num_segments + segment_id]
                % (2**31)
            )
            segment = HnswIndex(
                dim=vectors.shape[1],
                metric=metric,
                params=HnswParams.from_dict(params_dict),
            )
            if member_rows.size:
                segment.add(vectors[member_rows], ids=ids[member_rows])
            segments.append(segment)
        shards.append(ShardIndex(shard_id, segments, segmenter))
    return ContextualLannsIndex(config, shards, segmenter)
