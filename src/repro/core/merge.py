"""Two-level result merging (Section 5.3 / Figure 7).

LANNS merges in two stages that mirror the serving topology:

1. *Segment-level* merge happens inside the server node hosting the shard
   ("does not require additional network I/O").
2. *Shard-level* merge happens at the broker / driver.

Both stages are top-k merges over ``(distance, id)`` pairs; physical spill
can surface the same id from two segments, so the segment-level merge
dedupes by id (keeping the best distance).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.topk import batch_top_k
from repro.utils.heap import merge_top_k

#: A search result: list of (distance, external_id), ascending distance.
ResultList = "list[tuple[float, int]]"


def merge_segment_results(
    segment_results: Sequence[Sequence[tuple[float, int]]],
    k: int,
) -> list[tuple[float, int]]:
    """First-level merge: segment candidates -> shard result.

    Physical spill stores boundary points in several segments of the same
    shard, so duplicates are possible and are deduped here.
    """
    return merge_top_k(segment_results, k, dedupe=True)


def merge_shard_results(
    shard_results: Sequence[Sequence[tuple[float, int]]],
    k: int,
) -> list[tuple[float, int]]:
    """Second-level merge: shard results -> final topK.

    Hash sharding stores every id in exactly one shard, so no dedupe is
    needed; we keep it anyway for safety (it is O(total results)).
    """
    return merge_top_k(shard_results, k, dedupe=True)


# -- batched (multi-query) merges -----------------------------------------------------
#
# The batch serving path carries ``(B, k_i)`` id/distance arrays instead of
# per-query Python lists; both merge levels reduce to one vectorised
# :func:`~repro.core.topk.batch_top_k` call over the horizontally stacked
# candidates.  Ordering and dedupe semantics match the list-based merges
# exactly (ascending ``(distance, id)``, best distance kept per id).


def merge_candidates_batch(
    parts: Sequence[tuple[np.ndarray, np.ndarray]],
    k: int,
    *,
    dedupe: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge several aligned ``(B, k_i)`` (ids, dists) blocks per query.

    Padding entries (id ``-1`` / distance ``inf``) pass through and pad
    the output rows.
    """
    if not parts:
        raise ValueError("merge_candidates_batch needs at least one block")
    ids = np.concatenate([block_ids for block_ids, _ in parts], axis=1)
    dists = np.concatenate([block_dists for _, block_dists in parts], axis=1)
    out_ids, out_dists = batch_top_k(dists, ids, k, dedupe=dedupe)
    return out_ids, out_dists


def merge_segment_results_batch(
    ids: np.ndarray,
    dists: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched first-level merge (dedupes physical-spill duplicates).

    Takes one pre-packed ``(B, C)`` candidate matrix pair -- the shard
    packs each query's probed-segment results into per-row slots.
    """
    return batch_top_k(dists, ids, k, dedupe=True)


def merge_shard_results_batch(
    parts: Sequence[tuple[np.ndarray, np.ndarray]],
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched second-level merge: per-shard blocks -> final topK."""
    return merge_candidates_batch(parts, k, dedupe=True)
