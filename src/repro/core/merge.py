"""Two-level result merging (Section 5.3 / Figure 7).

LANNS merges in two stages that mirror the serving topology:

1. *Segment-level* merge happens inside the server node hosting the shard
   ("does not require additional network I/O").
2. *Shard-level* merge happens at the broker / driver.

Both stages are top-k merges over ``(distance, id)`` pairs; physical spill
can surface the same id from two segments, so the segment-level merge
dedupes by id (keeping the best distance).
"""

from __future__ import annotations

from typing import Sequence

from repro.utils.heap import merge_top_k

#: A search result: list of (distance, external_id), ascending distance.
ResultList = "list[tuple[float, int]]"


def merge_segment_results(
    segment_results: Sequence[Sequence[tuple[float, int]]],
    k: int,
) -> list[tuple[float, int]]:
    """First-level merge: segment candidates -> shard result.

    Physical spill stores boundary points in several segments of the same
    shard, so duplicates are possible and are deduped here.
    """
    return merge_top_k(segment_results, k, dedupe=True)


def merge_shard_results(
    shard_results: Sequence[Sequence[tuple[float, int]]],
    k: int,
) -> list[tuple[float, int]]:
    """Second-level merge: shard results -> final topK.

    Hash sharding stores every id in exactly one shard, so no dedupe is
    needed; we keep it anyway for safety (it is O(total results)).
    """
    return merge_top_k(shard_results, k, dedupe=True)
