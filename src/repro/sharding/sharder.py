"""Stable hash sharding.

"When a point is inserted, it is hashed to one particular shard using the
key of the data point. Since this partitioning does not exploit any
locality information, each query is routed to *all* shards" (Section 4.1).

The hash must be stable across processes and Python versions (the builtin
``hash`` is salted per process), so we use the first 8 bytes of MD5 of the
key's decimal representation.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(key: int | str) -> int:
    """A 63-bit, process-stable hash of an integer or string key.

    63 bits (not 64) so values fit in a signed int64 numpy array.
    """
    digest = hashlib.md5(str(key).encode()).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


class HashSharder:
    """Assigns record keys to shards by stable hashing.

    Parameters
    ----------
    num_shards:
        Number of shards; keys map uniformly onto ``0..num_shards-1``.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)

    def shard_of(self, key: int | str) -> int:
        """Shard id for one key."""
        return stable_hash(key) % self.num_shards

    def shard_of_batch(self, keys) -> np.ndarray:
        """Shard ids for a sequence of keys, as an int64 array."""
        return np.asarray(
            [stable_hash(key) for key in keys], dtype=np.int64
        ) % self.num_shards

    def partition(self, keys) -> list[np.ndarray]:
        """Row indices per shard: ``partition(keys)[s]`` selects shard s."""
        shard_ids = self.shard_of_batch(keys)
        return [
            np.flatnonzero(shard_ids == shard) for shard in range(self.num_shards)
        ]

    def __repr__(self) -> str:
        return f"HashSharder(num_shards={self.num_shards})"
