"""Sharding: the first level of LANNS partitioning (Section 4.1)."""

from repro.sharding.sharder import HashSharder

__all__ = ["HashSharder"]
