"""A directory-backed stand-in for HDFS.

Gives the offline pipelines the same contract the paper relies on:

- namespaced paths (``jobs/my-job/part-00000``) under one root;
- *atomic* file writes (write temp + rename), so a reader never observes a
  half-written file -- this is what makes executor-checkpointing safe in
  :mod:`repro.sparklite`;
- recursive listing and deletion for temp-path cleanup (Section 5.3.1:
  "As soon as our two-level merging finishes, this temporary directory is
  cleaned").
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import tempfile
import uuid
from collections.abc import Iterator
from pathlib import Path

from repro.errors import StorageError


class LocalHdfs:
    """A tiny filesystem abstraction rooted at a local directory.

    Paths are POSIX-style strings relative to the root; escaping the root
    (``..``) is rejected.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).resolve()
        self.root.mkdir(parents=True, exist_ok=True)

    # -- path handling -------------------------------------------------------------
    def _resolve(self, path: str) -> Path:
        candidate = (self.root / path.lstrip("/")).resolve()
        if not candidate.is_relative_to(self.root):
            raise StorageError(f"path {path!r} escapes the filesystem root")
        return candidate

    # -- writes ----------------------------------------------------------------------
    def write_bytes(self, path: str, data: bytes) -> None:
        """Atomically write ``data`` to ``path`` (parents auto-created)."""
        target = self._resolve(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=target.parent, prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(temp_name, target)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temp_name)
            raise

    def write_text(self, path: str, text: str) -> None:
        """Atomically write UTF-8 text."""
        self.write_bytes(path, text.encode())

    def write_json(self, path: str, payload) -> None:
        """Atomically write a JSON document."""
        self.write_text(path, json.dumps(payload, indent=2, sort_keys=True))

    # -- reads ------------------------------------------------------------------------
    def read_bytes(self, path: str) -> bytes:
        """Read a file's bytes; raises :class:`StorageError` if missing."""
        target = self._resolve(path)
        if not target.is_file():
            raise StorageError(f"no such file: {path!r}")
        return target.read_bytes()

    def read_text(self, path: str) -> str:
        """Read a file as UTF-8 text."""
        return self.read_bytes(path).decode("utf-8")

    def read_json(self, path: str):
        """Read and parse a JSON document."""
        return json.loads(self.read_text(path))

    # -- namespace operations ------------------------------------------------------------
    def exists(self, path: str) -> bool:
        """Whether a file or directory exists at ``path``."""
        return self._resolve(path).exists()

    def ls(self, path: str = "") -> list[str]:
        """Sorted names directly under ``path`` (files and directories)."""
        target = self._resolve(path) if path else self.root
        if not target.exists():
            return []
        if not target.is_dir():
            raise StorageError(f"not a directory: {path!r}")
        return sorted(entry.name for entry in target.iterdir())

    def ls_recursive(self, path: str = "") -> list[str]:
        """Sorted relative paths of all *files* under ``path``."""
        target = self._resolve(path) if path else self.root
        if not target.exists():
            return []
        base = target if target.is_dir() else target.parent
        return sorted(
            str(found.relative_to(self.root))
            for found in base.rglob("*")
            if found.is_file()
        )

    def delete(self, path: str) -> bool:
        """Delete a file or directory tree; returns whether it existed."""
        target = self._resolve(path)
        if target == self.root:
            raise StorageError("refusing to delete the filesystem root")
        if target.is_dir():
            shutil.rmtree(target)
            return True
        if target.exists():
            target.unlink()
            return True
        return False

    def rename(self, source: str, destination: str) -> None:
        """Atomically move ``source`` to ``destination``."""
        src = self._resolve(source)
        dst = self._resolve(destination)
        if not src.exists():
            raise StorageError(f"no such path: {source!r}")
        dst.parent.mkdir(parents=True, exist_ok=True)
        os.replace(src, dst)

    # -- temp paths -------------------------------------------------------------------------
    def make_temp_path(self, prefix: str = "tmp") -> str:
        """A fresh path under ``_tmp/`` (not created yet)."""
        return f"_tmp/{prefix}-{uuid.uuid4().hex}"

    @contextlib.contextmanager
    def temp_path(self, prefix: str = "tmp") -> Iterator[str]:
        """Context manager: a temp namespace cleaned up on exit.

        Mirrors the paper's use of temporary HDFS paths for partial search
        results, deleted "as soon as our two-level merging finishes".
        """
        path = self.make_temp_path(prefix)
        try:
            yield path
        finally:
            with contextlib.suppress(StorageError):
                self.delete(path)

    def __repr__(self) -> str:
        return f"LocalHdfs(root={str(self.root)!r})"
