"""A compact, schema'd binary record format ("Avro-like").

The paper ships serialized indices and search results between systems as
Avro datasets.  This module provides the same role without the Avro
dependency: a self-describing binary container whose header carries a JSON
schema, so a reader needs no out-of-band knowledge.

Supported field types:

======== ======================================= =================
type     Python value                            encoding
======== ======================================= =================
int      int                                     little-endian i64
float    float                                   little-endian f64
str      str                                     u32 length + UTF-8
bytes    bytes                                   u32 length + raw
vector   1-D float32 numpy array (any length)    u32 length + f32*n
======== ======================================= =================
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.errors import SerializationError

_MAGIC = b"LREC"
_VERSION = 1
_TYPES = ("int", "float", "str", "bytes", "vector")


class RecordSchema:
    """An ordered list of ``(field_name, field_type)`` pairs."""

    def __init__(self, fields: list[tuple[str, str]]) -> None:
        if not fields:
            raise SerializationError("schema needs at least one field")
        names = [name for name, _ in fields]
        if len(set(names)) != len(names):
            raise SerializationError(f"duplicate field names in {names}")
        for name, field_type in fields:
            if field_type not in _TYPES:
                raise SerializationError(
                    f"field {name!r} has unknown type {field_type!r}; "
                    f"valid types: {_TYPES}"
                )
        self.fields = [(str(name), str(field_type)) for name, field_type in fields]

    def to_json(self) -> str:
        return json.dumps(self.fields)

    @classmethod
    def from_json(cls, text: str) -> "RecordSchema":
        return cls([tuple(pair) for pair in json.loads(text)])

    def __eq__(self, other) -> bool:
        return isinstance(other, RecordSchema) and self.fields == other.fields

    def __repr__(self) -> str:
        return f"RecordSchema({self.fields})"


def _encode_field(field_type: str, value) -> bytes:
    if field_type == "int":
        return struct.pack("<q", int(value))
    if field_type == "float":
        return struct.pack("<d", float(value))
    if field_type == "str":
        raw = str(value).encode()
        return struct.pack("<I", len(raw)) + raw
    if field_type == "bytes":
        raw = bytes(value)
        return struct.pack("<I", len(raw)) + raw
    # vector
    array = np.asarray(value, dtype=np.float32)
    if array.ndim != 1:
        raise SerializationError(
            f"vector fields must be 1-D, got shape {array.shape}"
        )
    return struct.pack("<I", array.shape[0]) + array.tobytes()


class _Reader:
    """Cursor over a byte buffer with typed reads."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise SerializationError("record file truncated")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def read_u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def read_field(self, field_type: str):
        if field_type == "int":
            return struct.unpack("<q", self.take(8))[0]
        if field_type == "float":
            return struct.unpack("<d", self.take(8))[0]
        if field_type == "str":
            return self.take(self.read_u32()).decode("utf-8")
        if field_type == "bytes":
            return self.take(self.read_u32())
        length = self.read_u32()
        return np.frombuffer(self.take(4 * length), dtype=np.float32).copy()


def write_records(schema: RecordSchema, records: list[dict]) -> bytes:
    """Serialize ``records`` (dicts keyed by field name) under ``schema``."""
    parts = [_MAGIC, struct.pack("<B", _VERSION)]
    schema_raw = schema.to_json().encode()
    parts.append(struct.pack("<I", len(schema_raw)))
    parts.append(schema_raw)
    parts.append(struct.pack("<I", len(records)))
    for record in records:
        for name, field_type in schema.fields:
            if name not in record:
                raise SerializationError(f"record is missing field {name!r}")
            parts.append(_encode_field(field_type, record[name]))
    return b"".join(parts)


def read_records(data: bytes) -> tuple[RecordSchema, list[dict]]:
    """Parse a buffer written by :func:`write_records`."""
    reader = _Reader(data)
    if reader.take(4) != _MAGIC:
        raise SerializationError("not a record file (bad magic)")
    version = struct.unpack("<B", reader.take(1))[0]
    if version != _VERSION:
        raise SerializationError(f"unsupported record file version {version}")
    schema = RecordSchema.from_json(reader.take(reader.read_u32()).decode("utf-8"))
    count = reader.read_u32()
    records = []
    for _ in range(count):
        record = {}
        for name, field_type in schema.fields:
            record[name] = reader.read_field(field_type)
        records.append(record)
    if reader.offset != len(data):
        raise SerializationError("trailing bytes after final record")
    return schema, records
