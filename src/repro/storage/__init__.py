"""Storage: a local HDFS stand-in, record files, and the index export format.

The paper's pipelines write segmenters, per-partition HNSW indices,
checkpointed partial results and final search output to HDFS, and ship
serialized indices (Avro datasets) to online searcher nodes.
:class:`LocalHdfs` reproduces the filesystem contract (atomic writes,
namespaced paths, recursive listing/cleanup) on a local directory;
:mod:`repro.storage.records` provides the schema'd "Avro-like" record
format; :mod:`repro.storage.manifest` defines the index export layout with
the metadata coupling that prevents offline/online config drift.
"""

from repro.storage.hdfs import LocalHdfs
from repro.storage.records import RecordSchema, read_records, write_records
from repro.storage.manifest import IndexManifest, load_lanns_index, save_lanns_index

__all__ = [
    "LocalHdfs",
    "RecordSchema",
    "read_records",
    "write_records",
    "IndexManifest",
    "save_lanns_index",
    "load_lanns_index",
]
