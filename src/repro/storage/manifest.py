"""Index export format: persisted LANNS indices with coupled metadata.

Layout under an index root path on the filesystem::

    <root>/metadata.json                 -- manifest: config, layout, checksums
    <root>/segmenter.json                -- the shared pre-learnt segmenter
    <root>/shard=<s>/segment=<g>.npz     -- one serialized HNSW per partition

"The serialized index consists of the graph index, the actual embeddings
(vectors) and additional metadata (like the segmenter, distance function
used during index build, etc) ... This ensures that the platform doesn't
allow accidental differences in the algorithm configuration between
offline index build and online serving." (Section 7)

That guarantee is enforced here: loading validates per-file SHA-256
checksums, and :func:`load_lanns_index` raises
:class:`~repro.errors.MetadataMismatchError` when the caller's expected
configuration disagrees with the persisted one.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LannsConfig
from repro.core.index import LannsIndex, ShardIndex
from repro.errors import MetadataMismatchError, SerializationError
from repro.hnsw.index import HnswIndex
from repro.segmenters.base import Segmenter, segmenter_from_dict
from repro.storage.hdfs import LocalHdfs
from repro.version import __version__

_FORMAT_VERSION = 1


def hnsw_to_bytes(index: HnswIndex) -> bytes:
    """Serialize an HNSW index to compressed npz bytes."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **index.to_arrays())
    return buffer.getvalue()


def hnsw_from_bytes(data: bytes) -> HnswIndex:
    """Inverse of :func:`hnsw_to_bytes`."""
    buffer = io.BytesIO(data)
    with np.load(buffer, allow_pickle=False) as archive:
        payload = {key: archive[key] for key in archive.files}
    return HnswIndex.from_arrays(payload)


def _checksum(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def segment_file(shard: int, segment: int) -> str:
    """Relative path of one partition's serialized index."""
    return f"shard={shard}/segment={segment}.npz"


@dataclass
class IndexManifest:
    """The ``metadata.json`` document coupled with every exported index."""

    config: dict
    dim: int
    total_vectors: int
    shard_sizes: list[int]
    checksums: dict[str, str] = field(default_factory=dict)
    #: Per-shard per-segment vector counts (``[shard][segment]``), the
    #: occupancy table the online router prunes fan-out with.  Optional:
    #: indices exported before it existed load fine and simply fan out
    #: to every shard.
    segment_sizes: list[list[int]] | None = None
    #: Compressed-domain scoring backend the segments were built with
    #: (``"none"``, ``"int8"`` or ``"pq"``).  A summary of
    #: ``config["hnsw"]["quantize"]``: the codec itself (scale/offset or
    #: codebooks plus the per-row codes) is persisted inside each
    #: segment ``.npz`` and covered by the per-file checksums, exactly
    #: like the segmenter rides in ``segmenter.json``.  Optional so
    #: manifests written before the field existed still load.
    quantize: str | None = None
    format_version: int = _FORMAT_VERSION
    created_by: str = f"repro-lanns/{__version__}"

    def to_dict(self) -> dict:
        payload = {
            "format_version": self.format_version,
            "created_by": self.created_by,
            "config": self.config,
            "dim": self.dim,
            "total_vectors": self.total_vectors,
            "shard_sizes": self.shard_sizes,
            "checksums": self.checksums,
        }
        if self.segment_sizes is not None:
            payload["segment_sizes"] = self.segment_sizes
        if self.quantize is not None:
            payload["quantize"] = self.quantize
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "IndexManifest":
        if payload.get("format_version") != _FORMAT_VERSION:
            raise SerializationError(
                f"unsupported index format version "
                f"{payload.get('format_version')!r}"
            )
        segment_sizes = payload.get("segment_sizes")
        return cls(
            config=payload["config"],
            dim=int(payload["dim"]),
            total_vectors=int(payload["total_vectors"]),
            shard_sizes=[int(size) for size in payload["shard_sizes"]],
            checksums=dict(payload["checksums"]),
            segment_sizes=None
            if segment_sizes is None
            else [[int(size) for size in row] for row in segment_sizes],
            quantize=payload.get("quantize"),
            format_version=int(payload["format_version"]),
            created_by=str(payload.get("created_by", "unknown")),
        )

    @property
    def lanns_config(self) -> LannsConfig:
        """The persisted configuration as a validated object."""
        return LannsConfig.from_dict(self.config)


def save_lanns_index(
    index: LannsIndex, fs: LocalHdfs, path: str
) -> IndexManifest:
    """Export a built :class:`~repro.core.index.LannsIndex` (Figure 6 output).

    Returns the manifest that was written to ``<path>/metadata.json``.
    """
    checksums: dict[str, str] = {}
    for shard in index.shards:
        for segment_id, segment in enumerate(shard.segments):
            relative = segment_file(shard.shard_id, segment_id)
            data = hnsw_to_bytes(segment)
            fs.write_bytes(f"{path}/{relative}", data)
            checksums[relative] = _checksum(data)
    segmenter_raw = json.dumps(index.segmenter.to_dict()).encode()
    fs.write_bytes(f"{path}/segmenter.json", segmenter_raw)
    checksums["segmenter.json"] = _checksum(segmenter_raw)
    manifest = IndexManifest(
        config=index.config.to_dict(),
        dim=index.dim,
        total_vectors=len(index),
        shard_sizes=[len(shard) for shard in index.shards],
        checksums=checksums,
        segment_sizes=[
            [len(segment) for segment in shard.segments]
            for shard in index.shards
        ],
        quantize=index.config.quantize,
    )
    fs.write_json(f"{path}/metadata.json", manifest.to_dict())
    return manifest


def load_manifest(fs: LocalHdfs, path: str) -> IndexManifest:
    """Read just the manifest of an exported index."""
    return IndexManifest.from_dict(fs.read_json(f"{path}/metadata.json"))


def load_segmenter(
    fs: LocalHdfs, path: str, manifest: IndexManifest | None = None
) -> Segmenter:
    """Load the shared segmenter of an exported index (checksum-verified)."""
    manifest = manifest or load_manifest(fs, path)
    raw = fs.read_bytes(f"{path}/segmenter.json")
    _verify(manifest, "segmenter.json", raw)
    return segmenter_from_dict(json.loads(raw.decode("utf-8")))


def load_shard(
    fs: LocalHdfs,
    path: str,
    shard_id: int,
    *,
    manifest: IndexManifest | None = None,
    segmenter: Segmenter | None = None,
) -> ShardIndex:
    """Load one shard of an exported index (what a searcher node does)."""
    manifest = manifest or load_manifest(fs, path)
    config = manifest.lanns_config
    if not 0 <= shard_id < config.num_shards:
        raise ValueError(
            f"shard_id {shard_id} out of range for {config.num_shards} shards"
        )
    segmenter = segmenter or load_segmenter(fs, path, manifest)
    segments = []
    for segment_id in range(config.num_segments):
        relative = segment_file(shard_id, segment_id)
        raw = fs.read_bytes(f"{path}/{relative}")
        _verify(manifest, relative, raw)
        segments.append(hnsw_from_bytes(raw))
    return ShardIndex(shard_id, segments, segmenter)


def load_lanns_index(
    fs: LocalHdfs,
    path: str,
    *,
    expected_config: LannsConfig | None = None,
) -> LannsIndex:
    """Load a full exported index back into memory.

    Parameters
    ----------
    expected_config:
        When given, must equal the persisted configuration; a mismatch
        raises :class:`~repro.errors.MetadataMismatchError` (the paper's
        offline/online drift guard).
    """
    manifest = load_manifest(fs, path)
    config = manifest.lanns_config
    if expected_config is not None and expected_config != config:
        raise MetadataMismatchError(
            "persisted index configuration does not match the expected "
            f"configuration:\n  persisted: {config}\n  expected:  "
            f"{expected_config}"
        )
    segmenter = load_segmenter(fs, path, manifest)
    shards = [
        load_shard(
            fs, path, shard_id, manifest=manifest, segmenter=segmenter
        )
        for shard_id in range(config.num_shards)
    ]
    return LannsIndex(config, shards, segmenter)


def _verify(manifest: IndexManifest, relative: str, raw: bytes) -> None:
    expected = manifest.checksums.get(relative)
    if expected is None:
        raise MetadataMismatchError(
            f"file {relative!r} is not listed in the index manifest"
        )
    actual = _checksum(raw)
    if actual != expected:
        raise MetadataMismatchError(
            f"checksum mismatch for {relative!r}: manifest says "
            f"{expected[:12]}..., file hashes to {actual[:12]}..."
        )
