"""Input validation helpers used across the public API surface.

The library works on ``float32`` contiguous numpy arrays internally; these
helpers coerce user input once at the boundary so inner loops can assume a
canonical layout.
"""

from __future__ import annotations

import numpy as np


def as_matrix(data: np.ndarray, *, dim: int | None = None, name: str = "data") -> np.ndarray:
    """Coerce ``data`` to a C-contiguous float32 2-D array.

    A single vector is promoted to a 1-row matrix.

    Parameters
    ----------
    data:
        Array-like of shape ``(n, d)`` or ``(d,)``.
    dim:
        When given, the required number of columns.
    name:
        Argument name used in error messages.
    """
    array = np.asarray(data, dtype=np.float32)
    if array.ndim == 1:
        array = array[np.newaxis, :]
    if array.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got shape {array.shape}")
    if array.shape[1] == 0:
        raise ValueError(f"{name} must have at least one dimension")
    if dim is not None and array.shape[1] != dim:
        raise ValueError(
            f"{name} has dimension {array.shape[1]}, expected {dim}"
        )
    if not array.flags.c_contiguous:
        array = np.ascontiguousarray(array)
    return array


def as_vector(vector: np.ndarray, *, dim: int | None = None, name: str = "vector") -> np.ndarray:
    """Coerce ``vector`` to a contiguous float32 1-D array."""
    array = np.asarray(vector, dtype=np.float32)
    if array.ndim == 2 and array.shape[0] == 1:
        array = array[0]
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {array.shape}")
    if dim is not None and array.shape[0] != dim:
        raise ValueError(f"{name} has dimension {array.shape[0]}, expected {dim}")
    if not array.flags.c_contiguous:
        array = np.ascontiguousarray(array)
    return array


def check_positive(value: int | float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_probability(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is in the closed unit interval."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
