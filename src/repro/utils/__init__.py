"""Shared low-level utilities: bounded heaps, RNG helpers, validation."""

from repro.utils.heap import TopKHeap, merge_top_k
from repro.utils.rng import resolve_rng, spawn_seeds
from repro.utils.validation import (
    as_matrix,
    as_vector,
    check_positive,
    check_probability,
)

__all__ = [
    "TopKHeap",
    "merge_top_k",
    "resolve_rng",
    "spawn_seeds",
    "as_matrix",
    "as_vector",
    "check_positive",
    "check_probability",
]
