"""Bounded top-k heaps and top-k merge utilities.

Nearest-neighbor code needs one structure over and over: "keep the k
smallest-distance (id, distance) pairs seen so far".  Python's ``heapq`` is
a min-heap, so we keep a *max*-heap of size ``k`` by negating distances;
the root is then the current worst candidate and can be evicted in O(log k).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator, Sequence


class TopKHeap:
    """A bounded container keeping the ``k`` smallest-distance items.

    Parameters
    ----------
    k:
        Maximum number of items retained.  Must be positive.

    Notes
    -----
    Items are ``(distance, item_id)`` pairs.  Ties on distance are broken
    by item id so behaviour is deterministic.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)
        # Entries are (-distance, -item_id) so the heap root is the worst
        # candidate (largest distance, then largest id).
        self._heap: list[tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def worst_distance(self) -> float:
        """Distance of the current worst retained item (+inf when not full)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def push(self, distance: float, item_id: int) -> bool:
        """Offer one item; return ``True`` if it was retained."""
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, -item_id))
            return True
        worst_neg_dist, worst_neg_id = self._heap[0]
        # Accept strictly better distances; on a tie prefer the smaller id
        # so results are stable regardless of insertion order.
        if -distance > worst_neg_dist or (
            -distance == worst_neg_dist and -item_id > worst_neg_id
        ):
            heapq.heapreplace(self._heap, (-distance, -item_id))
            return True
        return False

    def extend(self, pairs: Iterable[tuple[float, int]]) -> None:
        """Offer many ``(distance, id)`` pairs."""
        for distance, item_id in pairs:
            self.push(distance, item_id)

    def items(self) -> list[tuple[float, int]]:
        """Return retained items sorted by (distance, id) ascending."""
        return sorted((-d, -i) for d, i in self._heap)

    def ids(self) -> list[int]:
        """Return retained ids sorted by (distance, id) ascending."""
        return [item_id for _, item_id in self.items()]

    def __iter__(self) -> Iterator[tuple[float, int]]:
        return iter(self.items())


def merge_top_k(
    candidate_lists: Sequence[Sequence[tuple[float, int]]],
    k: int,
    *,
    dedupe: bool = True,
) -> list[tuple[float, int]]:
    """Merge several sorted-or-unsorted candidate lists into a global top-k.

    This is the primitive behind both levels of LANNS merging: segment
    results merge into shard results, shard results merge into the final
    response (Section 5.3 of the paper).

    Parameters
    ----------
    candidate_lists:
        Sequences of ``(distance, id)`` pairs.
    k:
        Number of results to keep.
    dedupe:
        When ``True`` (the default) the same id appearing in several lists
        (e.g. via physical spill duplication) is kept once, at its best
        distance.

    Returns
    -------
    list of (distance, id), sorted ascending by (distance, id).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if dedupe:
        best: dict[int, float] = {}
        for candidates in candidate_lists:
            for distance, item_id in candidates:
                previous = best.get(item_id)
                if previous is None or distance < previous:
                    best[item_id] = distance
        heap = TopKHeap(k)
        for item_id, distance in best.items():
            heap.push(distance, item_id)
        return heap.items()
    heap = TopKHeap(k)
    for candidates in candidate_lists:
        for distance, item_id in candidates:
            heap.push(distance, item_id)
    return heap.items()
