"""Deterministic random-number helpers.

Every stochastic component in the library (HNSW level draws, random
hyperplanes, the random segmenter, synthetic data) accepts either a seed or
a ``numpy.random.Generator``.  These helpers normalise that argument and
derive independent child seeds so that, e.g., each segment of a partitioned
index gets its own reproducible stream.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def resolve_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for a seed, generator or ``None``."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_seeds(seed: int | None, count: int) -> list[int]:
    """Derive ``count`` independent 63-bit child seeds from ``seed``.

    Uses ``numpy.random.SeedSequence`` spawning, so children are
    statistically independent and stable across platforms.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [int(child.generate_state(1)[0]) for child in sequence.spawn(count)]
