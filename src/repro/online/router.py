"""Segment-aware query routing: fan out to *some* shard groups, not all.

LANNS routes each query through the learned segmenter with a *spill*
parameter instead of probing every segment (PAPER.md, online serving).
The :class:`Router` embeds the trained segmenter that the offline build
persisted in the manifest and, per query batch, selects the top-``spill``
segments by hyperplane margin
(:meth:`~repro.segmenters.hyperplane.HyperplaneTreeSegmenter.leaf_margins`),
then maps segments to the shard groups that actually host them using the
manifest's per-shard segment occupancy.

Under the default hash sharding every shard hosts every segment, so
routing restricts the *probes* inside each shard but cannot prune the
fan-out.  With ``sharding="segment"`` index builds (segment-aligned
layout: shard ``s`` hosts exactly segment ``s``), the router turns
per-query fan-out cost from O(shards) into O(spill) -- the lever for
growing shard count 10-100x.

The selected segments are pushed down to the searchers as explicit
``probes`` so a spilled query probes the segment it was routed *for*,
not the segment its vector would naturally map to (which may be empty on
that shard under the segment-aligned layout).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import get_registry
from repro.segmenters.base import Segmenter

_ROUTED_ROWS = get_registry().counter(
    "lanns_router_routed_rows_total",
    "Query rows routed, labelled by spilled fan-out width "
    "(shard groups selected for the row).",
)


@dataclass
class RoutingPlan:
    """Per-shard-group work derived from one query batch.

    ``shard_rows[g]`` lists the batch rows that must visit group ``g``
    (ascending), and ``shard_probes[g]`` the segment ids each of those
    rows probes there.  ``routed_counts[row]`` is the number of groups
    serving that row -- the denominator for degraded-row detection.
    """

    num_shards: int
    shard_rows: dict[int, np.ndarray] = field(default_factory=dict)
    shard_probes: dict[int, list[tuple[int, ...]]] = field(
        default_factory=dict
    )
    routed_counts: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )

    @property
    def groups_queried(self) -> int:
        """How many shard groups receive at least one row."""
        return len(self.shard_rows)


class Router:
    """Maps query batches to their top-``spill`` segments' shard groups.

    Parameters
    ----------
    segmenter:
        The trained segmenter shared by every shard of the index.
    num_shards:
        Number of shard groups in the deployment.
    segment_sizes:
        Optional per-shard per-segment vector counts (the manifest's
        occupancy table).  Segments empty on a shard are never routed
        there; when omitted, full occupancy is assumed and routing can
        restrict probes but not prune the fan-out.
    """

    def __init__(
        self,
        segmenter: Segmenter,
        num_shards: int,
        *,
        segment_sizes: list[list[int]] | None = None,
    ) -> None:
        self.segmenter = segmenter
        self.num_shards = int(num_shards)
        num_segments = segmenter.num_segments
        if segment_sizes is None:
            self._segment_shards: dict[int, tuple[int, ...]] = {
                segment: tuple(range(self.num_shards))
                for segment in range(num_segments)
            }
        else:
            if len(segment_sizes) != self.num_shards:
                raise ValueError(
                    f"segment_sizes has {len(segment_sizes)} shards, "
                    f"deployment has {self.num_shards}"
                )
            self._segment_shards = {
                segment: tuple(
                    shard
                    for shard in range(self.num_shards)
                    if segment_sizes[shard][segment] > 0
                )
                for segment in range(num_segments)
            }

    @property
    def scored(self) -> bool:
        """Whether the segmenter supports margin-ranked spill routing."""
        return hasattr(self.segmenter, "leaf_margins")

    def top_segments(
        self, queries: np.ndarray, spill: int
    ) -> list[tuple[int, ...]]:
        """Top-``spill`` segment ids per query row.

        Margin-capable segmenters (the hyperplane trees) rank all leaves
        by signed margin, so successive spill values yield *nested* probe
        sets and recall is monotone non-decreasing in ``spill``.  Other
        segmenters fall back to their natural query routes, capped at
        ``spill`` probes.
        """
        if spill < 1:
            raise ValueError(f"spill must be >= 1, got {spill}")
        spill = min(spill, self.segmenter.num_segments)
        margins = getattr(self.segmenter, "leaf_margins", None)
        if margins is None:
            return [
                tuple(route[:spill])
                for route in self.segmenter.route_query_batch(queries)
            ]
        scores = margins(queries)
        order = np.argsort(-scores, axis=1, kind="stable")[:, :spill]
        return [tuple(sorted(int(s) for s in row)) for row in order]

    def plan(
        self,
        queries: np.ndarray,
        spill: int,
        *,
        hints: tuple[tuple[int, ...], ...] | None = None,
    ) -> RoutingPlan:
        """Build the per-group work assignment for one batch.

        ``hints`` (per-row segment ids from the request) bypass segment
        scoring entirely; rows with an empty hint tuple are routed
        nowhere and come back as ``-1`` padding.
        """
        if hints is not None:
            num_segments = self.segmenter.num_segments
            for row, segments in enumerate(hints):
                for segment in segments:
                    if not 0 <= segment < num_segments:
                        raise ValueError(
                            f"routing hint {segment} of row {row} out of "
                            f"range for {num_segments} segments"
                        )
            probes_per_row = hints
        else:
            probes_per_row = self.top_segments(queries, spill)
        plan = RoutingPlan(
            num_shards=self.num_shards,
            routed_counts=np.zeros(len(probes_per_row), dtype=np.int64),
        )
        rows_by_shard: dict[int, list[int]] = {}
        probes_by_shard: dict[int, list[tuple[int, ...]]] = {}
        for row, segments in enumerate(probes_per_row):
            shard_segments: dict[int, set[int]] = {}
            for segment in segments:
                for shard in self._segment_shards[segment]:
                    shard_segments.setdefault(shard, set()).add(segment)
            plan.routed_counts[row] = len(shard_segments)
            for shard, probe_set in shard_segments.items():
                rows_by_shard.setdefault(shard, []).append(row)
                probes_by_shard.setdefault(shard, []).append(
                    tuple(sorted(probe_set))
                )
        plan.shard_rows = {
            shard: np.asarray(rows, dtype=np.int64)
            for shard, rows in sorted(rows_by_shard.items())
        }
        plan.shard_probes = {
            shard: probes_by_shard[shard] for shard in plan.shard_rows
        }
        widths, counts = np.unique(plan.routed_counts, return_counts=True)
        for width, count in zip(widths.tolist(), counts.tolist()):
            _ROUTED_ROWS.inc(count, groups=width)
        return plan
