"""Online LANNS serving (Section 7, Figure 9).

- :class:`~repro.online.searcher.SearcherNode` -- hosts one shard (of one
  or more named indices, enabling A/B tests), performs the in-node
  segment-level merge.
- :class:`~repro.online.broker.Broker` -- fans a query out to every
  searcher with the ``perShardTopK`` budget and does the final merge,
  behind a result cache and an opportunistic micro-batching admission
  layer.
- :class:`~repro.online.microbatch.MicroBatcher` -- coalesces requests
  arriving from many client threads into lockstep batches.
- :class:`~repro.online.cache.QueryResultCache` -- broker-level LRU over
  exact merged results, exploiting heavy-hitter query skew.
- :class:`~repro.online.service.OnlineService` -- deploys an exported
  offline index onto a searcher fleet + broker, validating the coupled
  metadata so offline build and online serving cannot drift.
"""

from repro.online.searcher import SearcherNode
from repro.online.broker import Broker
from repro.online.cache import QueryResultCache
from repro.online.microbatch import MicroBatcher
from repro.online.service import OnlineService

__all__ = [
    "SearcherNode",
    "Broker",
    "MicroBatcher",
    "QueryResultCache",
    "OnlineService",
]
