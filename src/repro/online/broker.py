"""The broker: admission, query fan-out, perShardTopK, and the final merge.

"The final merge happens at the broker or the client. The broker is also
responsible for calculating and passing the perShardTopK to each shard."

PR 2 turns this into a concurrent serving core with three cooperating
layers in front of the lockstep batch engine:

1. an LRU **result cache** (:mod:`repro.online.cache`) consulted per
   query row before admission and filled after the final merge;
2. an opportunistic **micro-batching admission layer**
   (:mod:`repro.online.microbatch`) that coalesces requests arriving from
   many client threads into one lockstep batch (flush on ``max_batch``
   rows or ``max_wait_ms``, whichever first);
3. a **fan-out executor** sized independently of the searcher count
   (``fanout_workers``), so in-flight batches can overlap their shard
   requests instead of queueing behind one another on exactly
   ``len(searchers)`` workers.  Note the overlap applies to *direct*
   execution (micro-batching off, or concurrent ``search_batch`` callers
   on an admission-disabled broker): with admission on, the single
   flusher thread executes coalesced batches one at a time -- batching,
   not pool width, is what buys throughput there.

Every result still flows through the same `_execute_batch` fan-out +
merge path PR 1 built, so micro-batched, cached, and direct requests are
bit-identical per query.

PR 3 moves the fan-out behind the
:class:`~repro.net.transport.SearcherTransport` interface, so the same
broker drives in-process :class:`SearcherNode` s and remote searcher
processes (:class:`~repro.net.transport.RemoteSearcherTransport`)
through one code path, and adds the failure semantics real distribution
needs:

- a **per-request deadline** (``request_timeout_s``) bounding the whole
  fan-out.  Remote transports enforce it on the wire (every send/recv,
  in both fan-out modes); for in-process searchers it bounds the
  broker's wait on the fan-out futures, which requires
  ``parallel_fanout=True`` -- a *sequential* fan-out over local
  searchers runs each shard inline and cannot abandon it, so there the
  deadline is inert (in-process numpy work is not cancellable);
- a **partial-result policy**: ``"fail"`` (default -- any shard failure
  raises, the pre-distribution behavior) or ``"degrade"`` -- a dead
  shard's rows are dropped, the merge runs over the survivors, and the
  response is annotated with ``shards_answered`` (ask for it with
  ``search_batch(..., with_info=True)``).  Degradeable failures are
  *connectivity* losses (connection lost, timeout, garbled frames) and
  a shard reporting it does not host the index (a restarted searcher);
  any other structured error a searcher answers with (bad request)
  re-raises under either policy, because retrying other shards cannot
  fix a caller bug -- and a request where *every* shard fails always
  raises.  Degraded rows are never written to the result cache.

PR 4 replaces thread-per-RPC with an **asyncio-native fan-out**
(``async_fanout=True``): all remote shard RPCs for a batch are
multiplexed on one private event loop (a single background thread,
:class:`_FanoutLoop`), and **hedged requests** (``hedge_after_s``)
re-issue a straggling shard's RPC on a second connection when budget
remains before the deadline -- first reply wins, the loser is cancelled
and its connection discarded.  The public API is byte-for-byte
unchanged: ``search_batch`` stays synchronous, the micro-batcher and
cache sit in front exactly as before, and the fail/degrade policy is
applied to the gathered outcomes on the calling thread.  Hedging can
only change *when* an answer arrives, never *what* it is -- both RPCs
ask the same shard the same lockstep question, so results stay
bit-identical (pinned by ``tests/test_hedging.py``).
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from concurrent.futures import CancelledError as FutureCancelledError
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from functools import partial

import numpy as np

from repro.core.config import LannsConfig
from repro.core.merge import merge_shard_results_batch
from repro.core.topk import per_shard_top_k
from repro.errors import DeadlineExceededError, RemoteCallError, TransportError
from repro.eval.timing import StageLatencyRecorder
from repro.net.transport import (
    AsyncSearcherTransport,
    SearcherTransport,
    as_transport,
)
from repro.online.cache import QueryResultCache, result_cache_key
from repro.online.microbatch import MicroBatcher
from repro.online.searcher import SearcherNode  # noqa: F401 (re-export)
from repro.utils.validation import as_matrix, as_vector

#: Partial-result policies for shard failures during the fan-out.
PARTIAL_POLICIES = ("fail", "degrade")

#: Adaptive hedging (``hedge_after_s="auto"``): the delay is derived per
#: batch from the live ``shard_rpc`` latency window as
#: ``median * AUTO_HEDGE_MULTIPLIER``.  The *median* anchors the healthy
#: RPC latency -- unlike a high quantile, it stays honest even when up to
#: half the recent samples come from the very stragglers hedging exists
#: to cut -- and the multiplier lifts the trigger above normal jitter.
#: No hedges are issued until the window holds
#: ``AUTO_HEDGE_MIN_SAMPLES`` samples (cold caches and first connects
#: would otherwise look like stragglers), and the delay never drops
#: below ``AUTO_HEDGE_MIN_DELAY_S`` (hedging every RPC on a
#: microsecond-fast fleet is pure connection churn).
AUTO_HEDGE_QUANTILE = 0.5
AUTO_HEDGE_MULTIPLIER = 3.0
AUTO_HEDGE_MIN_SAMPLES = 32
AUTO_HEDGE_MIN_DELAY_S = 0.001


class _FanoutLoop:
    """One background thread running an asyncio loop for the fan-out.

    The broker's public API stays synchronous (``search_batch`` callers
    and the micro-batch flusher are plain threads); this loop is where
    the multiplexed shard RPCs -- and their hedges -- actually run.  One
    thread total, regardless of how many shard RPCs are in flight.
    """

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._lock = threading.Lock()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="broker-async-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._started.set)
        try:
            self.loop.run_forever()
        finally:
            # Cancel whatever close() interrupted, then let the
            # cancellations unwind so client connections get discarded.
            pending = asyncio.all_tasks(self.loop)
            for task in pending:
                task.cancel()
            if pending:
                self.loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self.loop.close()

    def submit(self, coro):
        """Schedule ``coro`` on the loop; returns a concurrent Future.

        Raises ``RuntimeError`` after :meth:`close` began.  The lock
        orders submission against shutdown: a submit that wins the lock
        queues its task-creation callback *before* close() queues
        ``loop.stop`` (``call_soon_threadsafe`` is FIFO), so the task
        exists by the time the loop stops and the shutdown sweep
        resolves its future with a cancellation -- never a silent
        forever-pending future.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("fan-out loop is closed")
            return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def close(self, timeout: float = 30.0) -> None:
        with self._lock:
            self._closed = True
        with contextlib.suppress(RuntimeError):
            self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout)


class Broker:
    """Fans queries out to a searcher fleet and merges shard results.

    Parameters
    ----------
    searchers:
        One searcher per shard, in shard order: raw
        :class:`SearcherNode` s (wrapped into in-process transports) or
        :class:`~repro.net.transport.SearcherTransport` s (e.g. remote
        searchers).  ``self.searchers`` keeps the list as given;
        ``self.transports`` is the wrapped view the fan-out drives.
    config:
        The index configuration (for perShardTopK parameters).
    partial_policy:
        ``"fail"`` (default): any shard failure fails the request.
        ``"degrade"``: connectivity failures drop that shard's rows from
        the merge and the response is annotated with ``shards_answered``
        (see :meth:`search_batch`); requests where *every* shard failed
        still raise.
    request_timeout_s:
        Per-request deadline for the whole fan-out (``None`` = wait
        forever).  On expiry, unanswered shards count as failed under
        the active ``partial_policy``.  Enforced on the wire for remote
        transports; for in-process searchers only the parallel fan-out
        can time out (see the module docs).
    parallel_fanout:
        Issue shard requests on a thread pool (as a real broker would);
        sequential when ``False`` (deterministic timing for tests).
        Superseded by ``async_fanout``.
    async_fanout:
        Multiplex the shard fan-out on a private asyncio event loop
        (one background thread total) instead of one pool thread per
        in-flight RPC.  Transports implementing
        :class:`~repro.net.transport.AsyncSearcherTransport` are
        awaited natively; others (in-process shards) run on the loop's
        executor.  The public API is unchanged -- ``search_batch`` and
        the micro-batcher stay synchronous.
    hedge_after_s:
        Tail-tolerance knob (requires ``async_fanout``): when an
        async-capable shard has not answered within this many seconds
        and budget remains before ``request_timeout_s``, the same RPC
        is re-issued on a second connection; the first reply wins and
        the loser is cancelled (its connection is discarded, never
        pooled).  ``None`` (default) disables hedging.  Tune it from
        ``stats()["stages"]["shard_rpc"]`` -- a little above the
        healthy p99 hedges only genuine stragglers.  Or pass ``"auto"``
        to derive the delay per batch from the live ``shard_rpc``
        window (median x ``AUTO_HEDGE_MULTIPLIER``; no hedging until
        ``AUTO_HEDGE_MIN_SAMPLES`` samples exist), so the knob tracks
        the fleet instead of a point-in-time measurement.
    fanout_workers:
        Size of the fan-out pool, independent of ``len(searchers)``.
        Defaults to ``2 * len(searchers)`` so two directly executed
        batches can have all their shard requests in flight at once
        (see the module docs for how this interacts with
        micro-batching).  Ignored unless ``parallel_fanout``, and
        irrelevant under ``async_fanout`` (no pool exists).
    max_batch, max_wait_ms:
        Micro-batching knobs.  ``max_batch <= 1`` disables admission
        entirely (every request executes directly, PR-1 behavior);
        otherwise concurrent requests coalesce until a group holds
        ``max_batch`` rows or its oldest request has waited
        ``max_wait_ms``.
    cache:
        A shared :class:`~repro.online.cache.QueryResultCache` (e.g. the
        service-level cache spanning deployed indices).  When ``None``,
        ``cache_size > 0`` creates a private cache of that capacity.
    cache_size:
        Capacity of the private cache when ``cache`` is not given;
        ``0`` (default) serves every request from the index.
    cache_epoch:
        Deployment generation tag baked into this broker's cache keys.
        The service bumps it on every deploy so a late ``put`` racing an
        undeploy/re-deploy of the same name can never be served by the
        new deployment.  Irrelevant for a private cache.
    cache_quantize_decimals:
        For cosine indices only: round the normalised query to this many
        decimals when building cache keys, so near-duplicate heavy
        hitters share entries (``None`` = exact normalised key).
    """

    def __init__(
        self,
        searchers: list,
        config: LannsConfig,
        *,
        parallel_fanout: bool = False,
        async_fanout: bool = False,
        hedge_after_s: float | str | None = None,
        fanout_workers: int | None = None,
        max_batch: int = 1,
        max_wait_ms: float = 2.0,
        cache: QueryResultCache | None = None,
        cache_size: int = 0,
        cache_epoch: int = 0,
        cache_quantize_decimals: int | None = None,
        partial_policy: str = "fail",
        request_timeout_s: float | None = None,
    ) -> None:
        if len(searchers) != config.num_shards:
            raise ValueError(
                f"{len(searchers)} searchers for {config.num_shards} shards"
            )
        transports: list[SearcherTransport] = [
            as_transport(searcher) for searcher in searchers
        ]
        for shard_id, transport in enumerate(transports):
            if transport.shard_id != shard_id:
                raise ValueError(
                    f"searcher at position {shard_id} serves shard "
                    f"{transport.shard_id}; searchers must be in shard order"
                )
        if fanout_workers is not None and fanout_workers < 1:
            raise ValueError(
                f"fanout_workers must be >= 1, got {fanout_workers}"
            )
        if partial_policy not in PARTIAL_POLICIES:
            raise ValueError(
                f"partial_policy must be one of {PARTIAL_POLICIES}, "
                f"got {partial_policy!r}"
            )
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be positive, got {request_timeout_s}"
            )
        if hedge_after_s is not None:
            if isinstance(hedge_after_s, str):
                if hedge_after_s != "auto":
                    raise ValueError(
                        "hedge_after_s must be a positive delay in seconds "
                        f"or 'auto', got {hedge_after_s!r}"
                    )
            elif hedge_after_s <= 0:
                raise ValueError(
                    f"hedge_after_s must be positive, got {hedge_after_s}"
                )
            if not async_fanout:
                raise ValueError(
                    "hedge_after_s requires async_fanout=True (hedges are "
                    "raced on the fan-out event loop)"
                )
        self.searchers = searchers
        self.transports = transports
        self.config = config
        self.partial_policy = partial_policy
        self.request_timeout_s = request_timeout_s
        self.cache_quantize_decimals = cache_quantize_decimals
        self.async_fanout = bool(async_fanout)
        self.hedge_after_s = (
            hedge_after_s
            if hedge_after_s is None or isinstance(hedge_after_s, str)
            else float(hedge_after_s)
        )
        self.parallel_fanout = bool(parallel_fanout)
        self.fanout_workers = (
            int(fanout_workers)
            if fanout_workers is not None
            else 2 * len(searchers)
        )
        self.timings = StageLatencyRecorder()
        self.cache = (
            cache if cache is not None else QueryResultCache(cache_size)
        )
        self.cache_epoch = int(cache_epoch)
        self._served_lock = threading.Lock()
        #: Query rows this broker answered (cache hits included).
        self.queries_served = 0
        #: Batches that returned partial results under ``degrade``.
        self.degraded_batches = 0
        #: Connectivity failures observed per shard position.
        self.shard_failures = [0] * len(transports)
        #: Hedged-request counters: RPCs re-issued, and races where the
        #: hedge (not the primary) delivered the winning reply.
        self.hedges = 0
        self.hedge_wins = 0
        self._last_failure: TransportError | None = None
        # The asyncio fan-out multiplexes every in-flight shard RPC on
        # ONE loop thread, so it replaces the thread pool entirely.
        self._fanout_loop: _FanoutLoop | None = (
            _FanoutLoop() if self.async_fanout else None
        )
        # One long-lived fan-out pool, created eagerly (lazy creation
        # would race under concurrent first requests).  Reusing it keeps
        # the worker threads -- and therefore the per-thread
        # visited-table caches inside each searcher's HNSW indices --
        # alive across requests; a pool per call would re-allocate
        # O(num_nodes) tables for every lockstep query on every request.
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=self.fanout_workers,
                thread_name_prefix="broker-fanout",
            )
            if self.parallel_fanout
            and not self.async_fanout
            and len(searchers) > 1
            else None
        )
        self._batcher: MicroBatcher | None = (
            MicroBatcher(
                self._execute_keyed,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                on_queue_wait=self.timings.recorder("queue_wait"),
            )
            if max_batch > 1
            else None
        )

    def close(self) -> None:
        """Drain the admission layer and shut down the fan-out pool.

        Idempotent and safe to call with requests in flight: pending
        micro-batches execute before the flusher exits, and requests
        admitted after close run inline/sequentially instead of hanging.
        """
        if self._batcher is not None:
            self._batcher.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._fanout_loop is not None:
            self._fanout_loop.close()
            self._fanout_loop = None

    def stats(self) -> dict:
        """Serving counters: cache, micro-batching, per-stage latency."""
        return {
            "cache": self.cache.stats.as_dict(),
            "microbatch": dict(self._batcher.stats)
            if self._batcher is not None
            else None,
            "stages": self.timings.summary(),
            "fanout_workers": self.fanout_workers
            if self._pool is not None
            else 0,
            "async_fanout": self.async_fanout,
            "hedge_after_s": self.hedge_after_s,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "queries_served": self.queries_served,
            "partial": {
                "policy": self.partial_policy,
                "request_timeout_s": self.request_timeout_s,
                "degraded_batches": self.degraded_batches,
                "shard_failures": list(self.shard_failures),
            },
            # The fleet is shared between brokers (A/B deployments), so
            # this counts ALL traffic the searchers saw, not just ours.
            # (For remote transports this is the rows *this process*
            # shipped -- a per-node view needs the STATS RPC.)
            "fleet_queries_served": sum(
                transport.queries_served for transport in self.transports
            ),
        }

    def per_shard_budget(self, top_k: int) -> int:
        """The perShardTopK this broker passes to each searcher.

        Degenerate cases (all reachable through micro-batch coalescing,
        pinned by ``tests/test_online_serving.py``):

        - **single shard**: the budget is exactly ``top_k`` -- Eq. 5-6
          degrade to the identity, so one-shard serving never truncates.
        - **top_k larger than a segment/shard**: the budget is a
          *request* size, not a guarantee; shards with fewer points
          return short rows padded with the ``-1`` id / ``inf`` distance
          sentinels, which :func:`~repro.core.topk.batch_top_k` keeps
          ordered after every real result.
        - **empty batch**: no fan-out happens at all; the budget is only
          computed for batches with at least one row.
        """
        if not self.config.use_per_shard_topk:
            return int(top_k)
        return per_shard_top_k(
            top_k,
            self.config.num_shards,
            self.config.topk_confidence,
            paper_literal=self.config.paper_literal_probit,
        )

    def effective_ef(self, ef: int | None) -> int:
        """Canonicalise ``ef``: ``None`` means the config's ``ef_search``.

        The HNSW layer resolves ``ef=None`` to ``params.ef_search``
        itself, so pinning the default here changes nothing downstream --
        but it gives the cache and the admission layer a stable key, so
        ``ef=None`` and an explicit ``ef=ef_search`` share cache entries
        and micro-batches.
        """
        return int(ef) if ef is not None else int(self.config.hnsw.ef_search)

    def search(
        self,
        index_name: str,
        query: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve one query end to end (a batch of one).

        Returns
        -------
        (ids, distances): ascending by distance, at most ``top_k``.
        """
        query = as_vector(query, name="query")
        ids, dists = self.search_batch(
            index_name, query[np.newaxis, :], top_k, ef=ef
        )
        valid = ids[0] >= 0
        return ids[0][valid], dists[0][valid]

    def search_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
        with_info: bool = False,
    ) -> tuple:
        """Serve a query batch end to end: ONE fan-out for the whole batch.

        The request flows cache -> admission -> execution: rows with a
        cached result are answered immediately; the remaining rows are
        admitted as one block (coalescing with other threads' requests
        when micro-batching is on) and executed through the lockstep
        fan-out; fresh results then fill the cache.  Per-query results
        are identical to calling :meth:`search` in a loop regardless of
        caching or coalescing.

        Returns
        -------
        ``(B, top_k)`` id/distance arrays padded with ``-1`` / ``inf``.
        With ``with_info=True`` a third element is returned: a dict with
        ``shards_answered`` (``(B,)`` int array -- how many shards
        contributed to each row; below ``num_shards`` only under the
        ``degrade`` policy) and ``num_shards``.  Cache hits always count
        as fully answered: degraded rows are never cached.
        """
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        queries = as_matrix(queries, name="queries")
        num_queries = queries.shape[0]
        if num_queries == 0:
            empty = (
                np.full((0, top_k), -1, dtype=np.int64),
                np.full((0, top_k), np.inf, dtype=np.float64),
            )
            return (
                (*empty, self._info(np.zeros(0, dtype=np.int64)))
                if with_info
                else empty
            )
        eff_ef = self.effective_ef(ef)
        with self._served_lock:
            self.queries_served += num_queries

        if not self.cache.enabled:
            ids, dists, answered = self._admit(
                index_name, queries, top_k, eff_ef
            )
            return (
                (ids, dists, self._info(answered))
                if with_info
                else (ids, dists)
            )

        keys = [
            result_cache_key(
                index_name,
                queries[row],
                top_k,
                eff_ef,
                self.config.num_shards,
                self.cache_epoch,
                metric=self.config.metric,
                quantize_decimals=self.cache_quantize_decimals,
            )
            for row in range(num_queries)
        ]
        out_ids = np.full((num_queries, top_k), -1, dtype=np.int64)
        out_dists = np.full((num_queries, top_k), np.inf, dtype=np.float64)
        # Cache hits were stored fully answered (puts skip degraded rows).
        out_answered = np.full(
            num_queries, self.config.num_shards, dtype=np.int64
        )
        miss_rows: list[int] = []
        for row, key in enumerate(keys):
            cached = self.cache.get(key)
            if cached is None:
                miss_rows.append(row)
            else:
                out_ids[row], out_dists[row] = cached
        if miss_rows:
            misses = np.asarray(miss_rows, dtype=np.int64)
            fresh_ids, fresh_dists, fresh_answered = self._admit(
                index_name, queries[misses], top_k, eff_ef
            )
            out_ids[misses] = fresh_ids
            out_dists[misses] = fresh_dists
            out_answered[misses] = fresh_answered
            full = int(self.config.num_shards)
            for slot, row in enumerate(miss_rows):
                if int(fresh_answered[slot]) == full:
                    self.cache.put(
                        keys[row], fresh_ids[slot], fresh_dists[slot]
                    )
        if with_info:
            return out_ids, out_dists, self._info(out_answered)
        return out_ids, out_dists

    def _info(self, answered: np.ndarray) -> dict:
        return {
            "shards_answered": answered,
            "num_shards": int(self.config.num_shards),
        }

    # -- admission + execution ---------------------------------------------------------
    def _admit(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        eff_ef: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run a block through micro-batching when on, else directly.

        The admission key carries everything that must match for two
        requests to share one lockstep batch: the index, the requested
        ``top_k`` (hence the per-shard budget), the beam width, and the
        dimensionality (so a malformed request cannot poison a
        well-formed one it happens to coalesce with).
        """
        key = (index_name, int(top_k), eff_ef, int(queries.shape[1]))
        if self._batcher is None:
            return self._execute_keyed(key, queries)
        return self._batcher.submit(key, queries).result()

    def _execute_keyed(
        self, key: tuple, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        index_name, top_k, eff_ef, _dim = key
        return self._execute_batch(index_name, queries, top_k, eff_ef)

    def _execute_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        eff_ef: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The lockstep path: one shard fan-out + one batched merge.

        Returns per-row ``(ids, dists, shards_answered)``; the third
        array is constant across the batch (all rows share one fan-out)
        but shaped ``(B,)`` so the micro-batcher can slice it per block
        like any other result component.
        """
        budget = self.per_shard_budget(top_k)
        num_shards = len(self.transports)
        deadline = (
            time.monotonic() + self.request_timeout_s
            if self.request_timeout_s is not None
            else None
        )
        tick = time.perf_counter()
        parts: list | None = None
        fanout_loop = self._fanout_loop  # snapshot: close() may race
        if fanout_loop is not None:
            # Resolved once per batch: every shard of a fan-out hedges
            # against the same delay, and an "auto" knob re-reads the
            # live shard_rpc window between batches, not mid-batch.
            hedge_delay = self._resolve_hedge_delay()
            coro = self._fanout_async(
                index_name, queries, budget, eff_ef, deadline, hedge_delay
            )
            try:
                future = fanout_loop.submit(coro)
            except RuntimeError:
                # Loop shut down mid-request: fall through to sequential.
                coro.close()
            else:
                try:
                    outcomes = future.result()
                except (FutureCancelledError, asyncio.CancelledError):
                    # close() tore the loop down under us (the wrapper
                    # future raises concurrent.futures.CancelledError, a
                    # *different* class from asyncio's); the transports
                    # are still alive, so serve this request sequentially.
                    pass
                else:
                    parts = []
                    for shard_id, (part, exc) in enumerate(outcomes):
                        if exc is None:
                            parts.append(part)
                        else:
                            parts.append(self._shard_failure(shard_id, exc))
        pool = self._pool  # snapshot: close() may race an in-flight call
        if parts is None and pool is not None:
            try:
                futures = [
                    pool.submit(
                        transport.search_batch,
                        index_name,
                        queries,
                        budget,
                        ef=eff_ef,
                        deadline=deadline,
                    )
                    for transport in self.transports
                ]
            except RuntimeError:
                # Pool shut down mid-request: fall through to sequential.
                parts = None
            else:
                parts = []
                for shard_id, future in enumerate(futures):
                    try:
                        wait = None
                        if deadline is not None:
                            wait = max(deadline - time.monotonic(), 0.0)
                        parts.append(future.result(timeout=wait))
                    except (FutureTimeoutError, TimeoutError):
                        # The shard may still answer eventually, but this
                        # request is done waiting; the worker thread
                        # finishes in the background and the result is
                        # discarded.
                        parts.append(
                            self._shard_failure(
                                shard_id,
                                DeadlineExceededError(
                                    f"shard {shard_id} missed the "
                                    f"{self.request_timeout_s}s request "
                                    "deadline"
                                ),
                            )
                        )
                    except TransportError as exc:
                        parts.append(self._shard_failure(shard_id, exc))
        if parts is None:
            parts = []
            for shard_id, transport in enumerate(self.transports):
                try:
                    parts.append(
                        transport.search_batch(
                            index_name,
                            queries,
                            budget,
                            ef=eff_ef,
                            deadline=deadline,
                        )
                    )
                except TransportError as exc:
                    parts.append(self._shard_failure(shard_id, exc))
        failed = [shard for shard, part in enumerate(parts) if part is None]
        answered = num_shards - len(failed)
        if answered == 0:
            # Degrading to an empty answer would be indistinguishable
            # from "no neighbors exist"; a fully dead fleet must fail.
            raise TransportError(
                f"all {num_shards} shards failed for this request"
            ) from self._last_failure
        if failed:
            num_queries = queries.shape[0]
            sentinel = (
                np.full((num_queries, budget), -1, dtype=np.int64),
                np.full((num_queries, budget), np.inf, dtype=np.float64),
            )
            parts = [part if part is not None else sentinel for part in parts]
            with self._served_lock:
                self.degraded_batches += 1
        fanned = time.perf_counter()
        ids, dists = merge_shard_results_batch(parts, top_k)
        done = time.perf_counter()
        self.timings.record("fanout", fanned - tick)
        self.timings.record("merge", done - fanned)
        return (
            ids,
            dists,
            np.full(queries.shape[0], answered, dtype=np.int64),
        )

    # -- asyncio fan-out ---------------------------------------------------------------
    def _resolve_hedge_delay(self) -> float | None:
        """This batch's hedge delay: the static knob, or the live one.

        ``"auto"`` derives the delay from the ``shard_rpc`` stage's
        sliding window: ``median * AUTO_HEDGE_MULTIPLIER`` (see the
        module constants for why the median and not a tail quantile).
        Until the window holds ``AUTO_HEDGE_MIN_SAMPLES`` samples there
        is no hedging at all -- the first requests of a fresh broker are
        establishing connections and warming caches, which must not be
        mistaken for straggling.
        """
        delay = self.hedge_after_s
        if delay != "auto":
            return delay
        sample = self.timings.quantile("shard_rpc", AUTO_HEDGE_QUANTILE)
        if sample is None or sample[0] < AUTO_HEDGE_MIN_SAMPLES:
            return None
        return max(sample[1] * AUTO_HEDGE_MULTIPLIER, AUTO_HEDGE_MIN_DELAY_S)

    async def _fanout_async(
        self,
        index_name: str,
        queries: np.ndarray,
        k: int,
        eff_ef: int,
        deadline: float | None,
        hedge_delay: float | None,
    ) -> list[tuple]:
        """Multiplex one batch's shard RPCs (and their hedges) on the loop.

        Returns one ``(part, exc)`` pair per shard, in shard order --
        exactly one of the two is ``None``.  Partial-result policy is
        applied by the calling thread, so the counting and raise
        behavior is identical to the thread-pool fan-out.
        """
        return await asyncio.gather(
            *(
                self._shard_call_async(
                    transport,
                    index_name,
                    queries,
                    k,
                    eff_ef,
                    deadline,
                    hedge_delay,
                )
                for transport in self.transports
            )
        )

    async def _shard_call_async(
        self,
        transport: SearcherTransport,
        index_name: str,
        queries: np.ndarray,
        k: int,
        eff_ef: int,
        deadline: float | None,
        hedge_delay: float | None,
    ) -> tuple:
        try:
            part = await self._hedged_search_async(
                transport, index_name, queries, k, eff_ef, deadline, hedge_delay
            )
        except TransportError as exc:
            return None, exc
        return part, None

    async def _search_one_async(
        self,
        transport: SearcherTransport,
        index_name: str,
        queries: np.ndarray,
        k: int,
        eff_ef: int,
        deadline: float | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One shard RPC on the event loop.

        Async-capable transports are awaited natively (the remote
        client enforces the deadline on the wire); everything else --
        in-process shards -- runs on the loop's default executor with
        the wait bounded by the remaining budget.  Per-RPC wall time
        lands in the ``shard_rpc`` latency stage (the number to tune
        ``hedge_after_s`` against).
        """
        tick = time.perf_counter()
        try:
            if isinstance(transport, AsyncSearcherTransport):
                return await transport.search_batch_async(
                    index_name, queries, k, ef=eff_ef, deadline=deadline
                )
            loop = asyncio.get_running_loop()
            call = partial(
                transport.search_batch,
                index_name,
                queries,
                k,
                ef=eff_ef,
                deadline=deadline,
            )
            wait = None
            if deadline is not None:
                wait = max(deadline - time.monotonic(), 0.0)
            try:
                return await asyncio.wait_for(
                    loop.run_in_executor(None, call), wait
                )
            except (asyncio.TimeoutError, TimeoutError):
                raise DeadlineExceededError(
                    f"shard {transport.shard_id} missed the "
                    f"{self.request_timeout_s}s request deadline"
                ) from None
        finally:
            self.timings.record("shard_rpc", time.perf_counter() - tick)

    async def _hedged_search_async(
        self,
        transport: SearcherTransport,
        index_name: str,
        queries: np.ndarray,
        k: int,
        eff_ef: int,
        deadline: float | None,
        hedge_delay: float | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One shard's answer, hedging a straggling RPC when allowed.

        The hedge fires only when (a) hedging is configured (a resolved
        delay exists for this batch), (b) the transport can multiplex a
        second in-flight RPC, and (c) budget remains before the request
        deadline -- a hedge can never be issued after the deadline has
        passed.
        """

        def issue():
            return asyncio.create_task(
                self._search_one_async(
                    transport, index_name, queries, k, eff_ef, deadline
                )
            )

        delay = hedge_delay
        primary = issue()
        can_hedge = (
            delay is not None
            and isinstance(transport, AsyncSearcherTransport)
            and (deadline is None or deadline - time.monotonic() > delay)
        )
        if not can_hedge:
            return await primary
        done, _ = await asyncio.wait({primary}, timeout=delay)
        if primary in done:
            return primary.result()
        if deadline is not None and deadline - time.monotonic() <= 0:
            # Out of budget: the in-flight primary is about to raise its
            # own DeadlineExceededError; hedging now would be a second
            # RPC that cannot answer in time either.
            return await primary
        with self._served_lock:
            self.hedges += 1
        return await self._first_reply_async(primary, issue())

    async def _first_reply_async(self, primary, hedge):
        """Race the primary against its hedge; first *success* wins.

        One task failing does not settle the race while the other still
        runs -- a dead primary with a live hedge is exactly the save
        hedging exists for.  When both fail, the primary's error is
        raised.  The loser is cancelled AND awaited, so its connection
        is discarded (never pooled) before the batch returns.
        """
        pending = {primary, hedge}
        failures: dict = {}
        winner = None
        unexpected: BaseException | None = None
        while pending and winner is None:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            # Settle the whole completion wave before deciding: set
            # iteration order is arbitrary, and a success must win
            # deterministically even when the other task failed in the
            # same tick.
            for task in done:
                exc = task.exception()
                if exc is None:
                    winner = winner if winner is not None else task
                elif isinstance(exc, TransportError):
                    failures[task] = exc
                else:
                    unexpected = exc
            if winner is None and unexpected is not None:
                for straggler in pending:
                    straggler.cancel()
                for straggler in pending:
                    with contextlib.suppress(
                        asyncio.CancelledError, TransportError
                    ):
                        await straggler
                raise unexpected
        if winner is None:
            raise failures.get(primary, failures.get(hedge))
        for loser in pending:
            loser.cancel()
        for loser in pending:
            with contextlib.suppress(asyncio.CancelledError, TransportError):
                await loser
        if winner is hedge:
            with self._served_lock:
                self.hedge_wins += 1
        return winner.result()

    def _shard_failure(self, shard_id: int, exc: TransportError) -> None:
        """Handle one shard's failure per the active policy.

        Returns ``None`` (the caller substitutes sentinel rows) under
        ``degrade``; re-raises otherwise.  Degradeable failures are
        connectivity losses (dead/unreachable/garbled/late shard) plus
        one structured error: a remote ``KeyError`` -- "I don't host
        this index" -- which is how a searcher that restarted (or missed
        a degraded deploy) presents; its rows are as gone as a dead
        shard's.  Any other :class:`RemoteCallError` re-raises under
        either policy: the searcher executed the request and told us the
        request itself is broken, which no amount of shard-dropping can
        fix.  (A globally wrong index name still fails: every shard
        KeyErrors, and an all-shards-failed request always raises.)
        """
        unhosted = (
            isinstance(exc, RemoteCallError) and exc.error_type == "KeyError"
        )
        if self.partial_policy == "fail" or (
            isinstance(exc, RemoteCallError) and not unhosted
        ):
            raise exc
        with self._served_lock:
            self.shard_failures[shard_id] += 1
        self._last_failure = exc
        return None

    # Backwards-compatible aliases (the original serving entry points).
    def query(
        self,
        index_name: str,
        query: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Alias of :meth:`search`."""
        return self.search(index_name, query, top_k, ef=ef)

    def query_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Alias of :meth:`search_batch`."""
        return self.search_batch(index_name, queries, top_k, ef=ef)
