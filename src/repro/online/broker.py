"""The broker: admission, routing, query fan-out, perShardTopK, final merge.

"The final merge happens at the broker or the client. The broker is also
responsible for calculating and passing the perShardTopK to each shard."

PR 2 turns this into a concurrent serving core with three cooperating
layers in front of the lockstep batch engine:

1. an LRU **result cache** (:mod:`repro.online.cache`) consulted per
   query row before admission and filled after the final merge;
2. an opportunistic **micro-batching admission layer**
   (:mod:`repro.online.microbatch`) that coalesces requests arriving from
   many client threads into one lockstep batch (flush on ``max_batch``
   rows or ``max_wait_ms``, whichever first);
3. a **fan-out executor** sized independently of the searcher count
   (``fanout_workers``), so in-flight batches can overlap their shard
   requests instead of queueing behind one another on exactly
   ``len(searchers)`` workers.

PR 3 moves the fan-out behind the
:class:`~repro.net.transport.SearcherTransport` interface (one code path
for in-process and remote searchers) and adds per-request deadlines plus
the fail/degrade partial-result policy.  PR 4 replaces thread-per-RPC
with an **asyncio-native fan-out** (``async_fanout=True``) and **hedged
requests** (``hedge_after_s``).

PR 6 makes the broker replica-aware and route-aware, carried by a
structured request/response API:

- :meth:`Broker.execute` takes a frozen
  :class:`~repro.online.types.SearchRequest` and returns a
  :class:`~repro.online.types.SearchResponse`; the legacy
  ``search``/``search_batch`` signatures are thin shims over it (and the
  ``with_info=True`` tuple-shape switch is deprecated).
- Each shard position may be served by a **replica group** (N
  interchangeable searchers).  The broker keeps a per-replica health/load
  ledger (:mod:`repro.online.replicas`), picks the least-loaded healthy
  replica per request, **fails over** to a sibling on connectivity
  failures, and **hedges across replicas** -- the straggler's retry goes
  to a *different* process (single-replica groups keep the PR-4
  second-connection behavior).
- A **router** (:mod:`repro.online.router`) embeds the trained segmenter
  and maps each query to its top-``spill`` segments, so a routed request
  fans out only to the shard groups hosting those segments (the
  segment-aligned build layout) and pushes the chosen segments down to
  the searchers as explicit probes.  ``spill=None``/``"all"`` preserves
  the pre-router fan-out bit-exactly.

Routed requests and requests overriding broker policy (per-request
deadline/hedging) bypass the result cache and the micro-batcher: cache
keys and admission keys do not carry the spill/policy knobs, and
coalescing rows with different fan-out shapes would change answers.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
import warnings
from concurrent.futures import CancelledError as FutureCancelledError
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import replace
from functools import partial

import numpy as np

from repro.core.config import LannsConfig
from repro.core.merge import merge_shard_results_batch
from repro.core.topk import per_shard_top_k
from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    RemoteCallError,
    TransportError,
)
from repro.eval.timing import StageLatencyRecorder
from repro.net.transport import (
    AsyncSearcherTransport,
    SearcherTransport,
)
from repro.obs.cost import SearchCost
from repro.obs.metrics import get_registry
from repro.obs.tracing import Trace, Tracer
from repro.online.cache import QueryResultCache, result_cache_key
from repro.online.microbatch import MicroBatcher
from repro.online.replicas import ReplicaGroup, ReplicaState
from repro.online.router import Router, RoutingPlan
from repro.online.searcher import SearcherNode  # noqa: F401 (re-export)
from repro.online.types import INHERIT, SearchRequest, SearchResponse
from repro.segmenters.base import Segmenter
from repro.utils.validation import as_vector

_REGISTRY = get_registry()
_QUERIES_TOTAL = _REGISTRY.counter(
    "lanns_broker_queries_total",
    "Query rows admitted per broker (cache hits included).",
)
_HEDGES = _REGISTRY.counter(
    "lanns_broker_hedges_total",
    "Hedged shard RPCs issued per broker.",
)
_HEDGE_WINS = _REGISTRY.counter(
    "lanns_broker_hedge_wins_total",
    "Hedge races where the hedge, not the primary, delivered the reply.",
)
_FAILOVERS = _REGISTRY.counter(
    "lanns_broker_failovers_total",
    "Requests re-issued on a sibling replica after a failure.",
)
_DEGRADED = _REGISTRY.counter(
    "lanns_broker_degraded_batches_total",
    "Batches that returned partial results under the degrade policy.",
)
_SHARD_FAILURES = _REGISTRY.counter(
    "lanns_broker_shard_failures_total",
    "Shard-group failures after replica failover was exhausted, "
    "labelled by shard.",
)
_OVERLOADED = _REGISTRY.counter(
    "lanns_broker_overloaded_total",
    "Shard RPCs shed by a searcher's admission control (OVERLOADED).",
)
_REQUEST_SECONDS = _REGISTRY.histogram(
    "lanns_broker_request_seconds",
    "End-to-end Broker.execute wall time, in seconds.",
)

#: Partial-result policies for shard failures during the fan-out.
PARTIAL_POLICIES = ("fail", "degrade")

#: Adaptive hedging (``hedge_after_s="auto"``): the delay is derived per
#: batch from the live ``shard_rpc`` latency window as
#: ``median * AUTO_HEDGE_MULTIPLIER``.  The *median* anchors the healthy
#: RPC latency -- unlike a high quantile, it stays honest even when up to
#: half the recent samples come from the very stragglers hedging exists
#: to cut -- and the multiplier lifts the trigger above normal jitter.
#: No hedges are issued until the window holds
#: ``AUTO_HEDGE_MIN_SAMPLES`` samples (cold caches and first connects
#: would otherwise look like stragglers), and the delay never drops
#: below ``AUTO_HEDGE_MIN_DELAY_S`` (hedging every RPC on a
#: microsecond-fast fleet is pure connection churn).
AUTO_HEDGE_QUANTILE = 0.5
AUTO_HEDGE_MULTIPLIER = 3.0
AUTO_HEDGE_MIN_SAMPLES = 32
AUTO_HEDGE_MIN_DELAY_S = 0.001


class _FanoutLoop:
    """One background thread running an asyncio loop for the fan-out.

    The broker's public API stays synchronous (``search_batch`` callers
    and the micro-batch flusher are plain threads); this loop is where
    the multiplexed shard RPCs -- and their hedges -- actually run.  One
    thread total, regardless of how many shard RPCs are in flight.
    """

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._lock = threading.Lock()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="broker-async-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._started.set)
        try:
            self.loop.run_forever()
        finally:
            # Cancel whatever close() interrupted, then let the
            # cancellations unwind so client connections get discarded.
            pending = asyncio.all_tasks(self.loop)
            for task in pending:
                task.cancel()
            if pending:
                self.loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self.loop.close()

    def submit(self, coro):
        """Schedule ``coro`` on the loop; returns a concurrent Future.

        Raises ``RuntimeError`` after :meth:`close` began.  The lock
        orders submission against shutdown: a submit that wins the lock
        queues its task-creation callback *before* close() queues
        ``loop.stop`` (``call_soon_threadsafe`` is FIFO), so the task
        exists by the time the loop stops and the shutdown sweep
        resolves its future with a cancellation -- never a silent
        forever-pending future.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("fan-out loop is closed")
            return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def close(self, timeout: float = 30.0) -> None:
        with self._lock:
            self._closed = True
        with contextlib.suppress(RuntimeError):
            self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout)
        if self._thread.is_alive():
            # A silent return here would leak a live loop thread still
            # running shard RPCs against a broker the caller believes
            # is gone.
            raise TimeoutError(
                f"fan-out loop thread still alive after {timeout}s "
                "(an in-flight shard RPC is wedged past every deadline)"
            )


class Broker:
    """Fans queries out to a searcher fleet and merges shard results.

    Parameters
    ----------
    searchers:
        One entry per shard, in shard order.  Each entry is either a
        single searcher (a raw :class:`SearcherNode` or a
        :class:`~repro.net.transport.SearcherTransport`) or a
        list/tuple of interchangeable replicas serving that shard.
        ``self.searchers`` keeps the argument as given; ``self.groups``
        holds one :class:`~repro.online.replicas.ReplicaGroup` per
        shard; ``self.transports`` is the flat wrapped view (groups
        concatenated in shard order).
    config:
        The index configuration (for perShardTopK parameters).
    segmenter:
        The index's trained segmenter.  When given, the broker builds a
        :class:`~repro.online.router.Router` and accepts routed requests
        (``SearchRequest.spill``); without it, only ``spill=None/"all"``
        requests are served.
    segment_sizes:
        Per-shard per-segment occupancy (the manifest's
        ``segment_sizes``), letting the router prune fan-out to the
        shards actually hosting a segment.  ``None`` assumes full
        occupancy (probes are restricted, fan-out is not).
    partial_policy:
        ``"fail"`` (default): any shard failure fails the request.
        ``"degrade"``: connectivity failures drop that shard's rows from
        the merge and the response is annotated with ``shards_answered``;
        requests where *every* shard failed still raise.  With replica
        groups, a shard only counts as failed after every eligible
        replica was tried.
    request_timeout_s:
        Per-request deadline for the whole fan-out (``None`` = wait
        forever).  ``SearchRequest.deadline_s`` overrides it per request.
    parallel_fanout:
        Issue shard requests on a thread pool (as a real broker would);
        sequential when ``False`` (deterministic timing for tests).
        Superseded by ``async_fanout``.
    async_fanout:
        Multiplex the shard fan-out on a private asyncio event loop
        (one background thread total) instead of one pool thread per
        in-flight RPC.
    hedge_after_s:
        Tail-tolerance knob (requires ``async_fanout``): when an
        async-capable shard has not answered within this many seconds
        and budget remains before the deadline, the same RPC is
        re-issued -- on a *different replica* of the group when one is
        available, else on a second connection to the same process.
        First reply wins, the loser is cancelled.  ``None`` disables
        hedging; ``"auto"`` derives the delay per batch from the live
        ``shard_rpc`` window (median x ``AUTO_HEDGE_MULTIPLIER``).
    fanout_workers:
        Size of the fan-out pool; defaults to ``2 * num_shards``.
        Ignored unless ``parallel_fanout``, irrelevant under
        ``async_fanout``.
    max_batch, max_wait_ms:
        Micro-batching knobs.  ``max_batch <= 1`` disables admission.
    cache / cache_size / cache_epoch / cache_quantize_decimals:
        Result-cache wiring; see :mod:`repro.online.cache`.
    collect_cost:
        Ask the searchers for per-batch search-cost counters (hops,
        distance computations, ...; see :mod:`repro.obs.cost`) and
        attach the aggregate to ``SearchResponse.cost``.  Requests
        coalesced by the micro-batcher report costs to the metrics
        registry only: per-request attribution of a shared lockstep
        batch is ambiguous.
    trace_sample_rate / slow_query_log_s / trace_seed:
        Request-tracing knobs (see :mod:`repro.obs.tracing`):
        the probability a request is traced end to end, the wall-time
        threshold beyond which a request is force-kept and logged as a
        slow query, and the sampling seed (tests want determinism).
        Both knobs default off, so the hot path never builds a span.
    breaker_threshold, breaker_cooldown_s:
        Per-replica circuit breakers (see
        :class:`~repro.online.replicas.ReplicaGroup`):
        ``breaker_threshold`` consecutive transport failures open the
        breaker for ``breaker_cooldown_s`` seconds, after which one
        half-open probe decides recovery.  ``breaker_threshold=0``
        disables breakers.
    name:
        Label under which this broker reports to the metrics registry
        (A/B deployments run several brokers in one process).
    """

    def __init__(
        self,
        searchers: list,
        config: LannsConfig,
        *,
        parallel_fanout: bool = False,
        async_fanout: bool = False,
        hedge_after_s: float | str | None = None,
        fanout_workers: int | None = None,
        max_batch: int = 1,
        max_wait_ms: float = 2.0,
        cache: QueryResultCache | None = None,
        cache_size: int = 0,
        cache_epoch: int = 0,
        cache_quantize_decimals: int | None = None,
        partial_policy: str = "fail",
        request_timeout_s: float | None = None,
        segmenter: Segmenter | None = None,
        segment_sizes: list[list[int]] | None = None,
        collect_cost: bool = True,
        trace_sample_rate: float = 0.0,
        slow_query_log_s: float | None = None,
        trace_seed: int | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 1.0,
        name: str = "broker",
    ) -> None:
        if len(searchers) != config.num_shards:
            raise ValueError(
                f"{len(searchers)} searchers for {config.num_shards} shards"
            )
        self.groups: list[ReplicaGroup] = [
            ReplicaGroup(
                shard_id,
                entry if isinstance(entry, (list, tuple)) else [entry],
                breaker_threshold=breaker_threshold,
                breaker_cooldown_s=breaker_cooldown_s,
            )
            for shard_id, entry in enumerate(searchers)
        ]
        transports: list[SearcherTransport] = [
            transport
            for group in self.groups
            for transport in group.transports
        ]
        if fanout_workers is not None and fanout_workers < 1:
            raise ValueError(
                f"fanout_workers must be >= 1, got {fanout_workers}"
            )
        if partial_policy not in PARTIAL_POLICIES:
            raise ValueError(
                f"partial_policy must be one of {PARTIAL_POLICIES}, "
                f"got {partial_policy!r}"
            )
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be positive, got {request_timeout_s}"
            )
        if hedge_after_s is not None:
            if isinstance(hedge_after_s, str):
                if hedge_after_s != "auto":
                    raise ValueError(
                        "hedge_after_s must be a positive delay in seconds "
                        f"or 'auto', got {hedge_after_s!r}"
                    )
            elif hedge_after_s <= 0:
                raise ValueError(
                    f"hedge_after_s must be positive, got {hedge_after_s}"
                )
            if not async_fanout:
                raise ValueError(
                    "hedge_after_s requires async_fanout=True (hedges are "
                    "raced on the fan-out event loop)"
                )
        self.searchers = searchers
        self.transports = transports
        self.config = config
        self.partial_policy = partial_policy
        self.request_timeout_s = request_timeout_s
        self.cache_quantize_decimals = cache_quantize_decimals
        self.async_fanout = bool(async_fanout)
        self.hedge_after_s = (
            hedge_after_s
            if hedge_after_s is None or isinstance(hedge_after_s, str)
            else float(hedge_after_s)
        )
        self.parallel_fanout = bool(parallel_fanout)
        self.fanout_workers = (
            int(fanout_workers)
            if fanout_workers is not None
            else 2 * len(searchers)
        )
        self.router: Router | None = (
            Router(
                segmenter,
                config.num_shards,
                segment_sizes=segment_sizes,
            )
            if segmenter is not None
            else None
        )
        self.timings = StageLatencyRecorder()
        self.name = str(name)
        self.collect_cost = bool(collect_cost)
        self.tracer = Tracer(
            trace_sample_rate, slow_query_log_s, seed=trace_seed
        )
        self.cache = (
            cache if cache is not None else QueryResultCache(cache_size)
        )
        self.cache_epoch = int(cache_epoch)
        self._served_lock = threading.Lock()
        #: Query rows this broker answered (cache hits included).
        self.queries_served = 0
        #: Batches that returned partial results under ``degrade``.
        self.degraded_batches = 0
        #: Connectivity failures observed per shard position (a shard
        #: counts once per request, after replica failover is exhausted).
        self.shard_failures = [0] * len(self.groups)
        #: Hedged-request counters: RPCs re-issued, and races where the
        #: hedge (not the primary) delivered the winning reply.
        self.hedges = 0
        self.hedge_wins = 0
        #: Requests re-issued on a sibling replica after a connectivity
        #: failure (successful or not).
        self.failovers = 0
        self._last_failure: TransportError | None = None
        # The asyncio fan-out multiplexes every in-flight shard RPC on
        # ONE loop thread, so it replaces the thread pool entirely.
        self._fanout_loop: _FanoutLoop | None = (
            _FanoutLoop() if self.async_fanout else None
        )
        # One long-lived fan-out pool, created eagerly (lazy creation
        # would race under concurrent first requests).  Reusing it keeps
        # the worker threads -- and therefore the per-thread
        # visited-table caches inside each searcher's HNSW indices --
        # alive across requests; a pool per call would re-allocate
        # O(num_nodes) tables for every lockstep query on every request.
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=self.fanout_workers,
                thread_name_prefix="broker-fanout",
            )
            if self.parallel_fanout
            and not self.async_fanout
            and len(searchers) > 1
            else None
        )
        self._batcher: MicroBatcher | None = (
            MicroBatcher(
                self._execute_keyed,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                on_queue_wait=self.timings.recorder("queue_wait"),
            )
            if max_batch > 1
            else None
        )

    def close(self) -> None:
        """Drain the admission layer and shut down the fan-out pool.

        Idempotent and safe to call with requests in flight: pending
        micro-batches execute before the flusher exits, and requests
        admitted after close run inline/sequentially instead of hanging.
        """
        if self._batcher is not None:
            self._batcher.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._fanout_loop is not None:
            self._fanout_loop.close()
            self._fanout_loop = None

    def stats(self) -> dict:
        """Serving counters: cache, micro-batching, per-stage latency."""
        with self._served_lock:
            # Snapshot every counter the serving threads bump under this
            # lock, so a stats() scrape never reads a half-updated view.
            hedges = self.hedges
            hedge_wins = self.hedge_wins
            failovers = self.failovers
            queries_served = self.queries_served
            degraded_batches = self.degraded_batches
            shard_failures = list(self.shard_failures)
        return {
            "cache": self.cache.stats.as_dict(),
            "microbatch": dict(self._batcher.stats)
            if self._batcher is not None
            else None,
            "stages": self.timings.summary(),
            "fanout_workers": self.fanout_workers
            if self._pool is not None
            else 0,
            "async_fanout": self.async_fanout,
            "hedge_after_s": self.hedge_after_s,
            "hedges": hedges,
            "hedge_wins": hedge_wins,
            "failovers": failovers,
            "queries_served": queries_served,
            "collect_cost": self.collect_cost,
            "tracer": self.tracer.stats(),
            "replicas": [group.stats() for group in self.groups],
            "partial": {
                "policy": self.partial_policy,
                "request_timeout_s": self.request_timeout_s,
                "degraded_batches": degraded_batches,
                "shard_failures": shard_failures,
            },
            # The fleet is shared between brokers (A/B deployments), so
            # this counts ALL traffic the searchers saw, not just ours.
            # (For remote transports this is the rows *this process*
            # shipped -- a per-node view needs the STATS RPC.)
            "fleet_queries_served": sum(
                transport.queries_served for transport in self.transports
            ),
        }

    def per_shard_budget(
        self, top_k: int, num_groups: int | None = None
    ) -> int:
        """The perShardTopK this broker passes to each searcher.

        ``num_groups`` is the fan-out width the budget must cover:
        routed requests pass the widest per-row group count of their
        plan, because Eq. 5-6 size the budget for answers spread over
        *every* shard queried -- sizing from the full deployment while
        querying ``spill`` groups would cap each answer below ``top_k``.

        Degenerate cases (all reachable through micro-batch coalescing,
        pinned by ``tests/test_online_serving.py``):

        - **single shard**: the budget is exactly ``top_k`` -- Eq. 5-6
          degrade to the identity, so one-shard serving never truncates.
        - **segment-aligned sharding**: Eq. 5-6 model neighbors as
          uniformly hashed across shards; ``sharding="segment"``
          concentrates a query's neighbors in its few nearby segments,
          so the only budget that cannot truncate is the full ``top_k``.
        - **top_k larger than a segment/shard**: the budget is a
          *request* size, not a guarantee; shards with fewer points
          return short rows padded with the ``-1`` id / ``inf`` distance
          sentinels, which :func:`~repro.core.topk.batch_top_k` keeps
          ordered after every real result.
        - **empty batch**: no fan-out happens at all; the budget is only
          computed for batches with at least one row.
        """
        if not self.config.use_per_shard_topk:
            return int(top_k)
        if self.config.sharding == "segment":
            return int(top_k)
        return per_shard_top_k(
            top_k,
            self.config.num_shards if num_groups is None else num_groups,
            self.config.topk_confidence,
            paper_literal=self.config.paper_literal_probit,
        )

    def effective_ef(self, ef: int | None) -> int:
        """Canonicalise ``ef``: ``None`` means the config's ``ef_search``.

        The HNSW layer resolves ``ef=None`` to ``params.ef_search``
        itself, so pinning the default here changes nothing downstream --
        but it gives the cache and the admission layer a stable key, so
        ``ef=None`` and an explicit ``ef=ef_search`` share cache entries
        and micro-batches.
        """
        return int(ef) if ef is not None else int(self.config.hnsw.ef_search)

    # -- the structured entry point ----------------------------------------------------
    def execute(self, request: SearchRequest) -> SearchResponse:
        """Serve one :class:`SearchRequest` end to end.

        The one true serving path: every legacy signature is a shim over
        this.  Unrouted requests without policy overrides flow through
        the result cache and the micro-batching admission layer exactly
        as before (their responses carry ``replicas_used=None`` --
        coalescing makes per-request replica attribution ambiguous);
        routed requests and per-request overrides execute directly
        through the fan-out with full metadata.
        """
        queries = request.queries
        top_k = request.top_k
        num_queries = queries.shape[0]
        num_shards = len(self.groups)
        if (
            not self.async_fanout
            and request.hedging != INHERIT
            and request.hedging is not False
            and request.hedging is not None
        ):
            # Mirrors the constructor's hedge_after_s validation: without
            # the fan-out loop the override would be silently ignored.
            raise ValueError(
                "per-request hedging override requires a broker with "
                "async_fanout=True (hedges are raced on the fan-out "
                "event loop)"
            )
        if num_queries == 0:
            return SearchResponse(
                ids=np.full((0, top_k), -1, dtype=np.int64),
                dists=np.full((0, top_k), np.inf, dtype=np.float64),
                shards_answered=np.zeros(0, dtype=np.int64),
                shards_routed=np.zeros(0, dtype=np.int64),
                num_shards=num_shards,
            )
        eff_ef = self.effective_ef(request.ef)
        with self._served_lock:
            self.queries_served += num_queries
        _QUERIES_TOTAL.inc(num_queries, broker=self.name)
        started = time.perf_counter()
        trace = self.tracer.begin()

        plan: RoutingPlan | None = None
        route_s = 0.0
        if request.routed:
            if self.router is None:
                raise ValueError(
                    "routed request (spill set) on a broker without a "
                    "router: construct the Broker with the index's "
                    "segmenter (OnlineService does this automatically)"
                )
            route_span = (
                trace.start_span("route", spill=request.spill)
                if trace is not None
                else None
            )
            tick = time.perf_counter()
            plan = self.router.plan(
                queries,
                request.spill
                if isinstance(request.spill, int)
                else self.config.num_segments,
                hints=request.routing_hints,
            )
            route_s = time.perf_counter() - tick
            self.timings.record("route", route_s)
            if route_span is not None:
                trace.end_span(route_span)
                route_span["annotations"]["groups"] = plan.groups_queried

        if plan is None and not request.overrides_policy:
            extra: dict = {}
            ids, dists, answered = self._serve_cached(
                request.index_name,
                queries,
                top_k,
                eff_ef,
                trace=trace,
                extra_out=extra,
            )
            response = SearchResponse(
                ids=ids,
                dists=dists,
                shards_answered=answered,
                shards_routed=np.full(num_queries, num_shards, dtype=np.int64),
                num_shards=num_shards,
                cost=extra.get("cost"),
            )
        else:
            ids, dists, answered, routed, replicas_used, timings, cost = (
                self._execute_fanout(
                    request.index_name,
                    queries,
                    top_k,
                    eff_ef,
                    plan=plan,
                    timeout_s=request.deadline_s,
                    hedging=request.hedging,
                    trace=trace,
                    collect_cost=self.collect_cost,
                )
            )
            timings["route_ms"] = route_s * 1000.0
            response = SearchResponse(
                ids=ids,
                dists=dists,
                shards_answered=answered,
                shards_routed=routed,
                num_shards=num_shards,
                replicas_used=tuple(replicas_used),
                timings=timings,
                cost=cost,
            )
        duration_s = time.perf_counter() - started
        _REQUEST_SECONDS.observe(duration_s, broker=self.name)
        if self.tracer.finish(trace, duration_s):
            response = replace(response, trace=trace.to_dict())
        return response

    # -- legacy entry points (thin shims) ----------------------------------------------
    def search(
        self,
        index_name: str,
        query: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve one query end to end (a batch of one).

        Returns
        -------
        (ids, distances): ascending by distance, at most ``top_k``.
        """
        query = as_vector(query, name="query")
        ids, dists = self.search_batch(
            index_name, query[np.newaxis, :], top_k, ef=ef
        )
        valid = ids[0] >= 0
        return ids[0][valid], dists[0][valid]

    def search_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
        with_info: bool = False,
        spill: int | str | None = None,
    ) -> tuple:
        """Serve a query batch: a thin shim over :meth:`execute`.

        Returns ``(B, top_k)`` id/distance arrays padded with ``-1`` /
        ``inf``.  ``with_info=True`` (deprecated -- use :meth:`execute`
        and read the :class:`SearchResponse`) appends the legacy info
        dict as a third element.
        """
        if with_info:
            warnings.warn(
                "search_batch(..., with_info=True) is deprecated; call "
                "Broker.execute(SearchRequest(...)) and read the "
                "SearchResponse fields instead",
                DeprecationWarning,
                stacklevel=2,
            )
        response = self.execute(
            SearchRequest(
                queries=queries,
                top_k=top_k,
                index_name=index_name,
                ef=ef,
                spill=spill,
            )
        )
        if with_info:
            return response.ids, response.dists, response.info()
        return response.ids, response.dists

    # -- cached/admitted serving (unrouted requests) -----------------------------------
    def _serve_cached(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        eff_ef: int,
        trace: Trace | None = None,
        extra_out: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cache -> admission -> execution for the default fan-out.

        Rows with a cached result are answered immediately; the
        remaining rows are admitted as one block (coalescing with other
        threads' requests when micro-batching is on) and executed
        through the lockstep fan-out; fresh results then fill the cache.
        Per-query results are identical to a batch of one regardless of
        caching or coalescing.  Cache hits always count as fully
        answered: degraded rows are never cached.
        """
        num_queries = queries.shape[0]
        if not self.cache.enabled:
            return self._admit(
                index_name,
                queries,
                top_k,
                eff_ef,
                trace=trace,
                extra_out=extra_out,
            )

        cache_span = (
            trace.start_span("cache") if trace is not None else None
        )
        keys = [
            result_cache_key(
                index_name,
                queries[row],
                top_k,
                eff_ef,
                self.config.num_shards,
                self.cache_epoch,
                metric=self.config.metric,
                quantize_decimals=self.cache_quantize_decimals,
            )
            for row in range(num_queries)
        ]
        out_ids = np.full((num_queries, top_k), -1, dtype=np.int64)
        out_dists = np.full((num_queries, top_k), np.inf, dtype=np.float64)
        # Cache hits were stored fully answered (puts skip degraded rows).
        out_answered = np.full(
            num_queries, self.config.num_shards, dtype=np.int64
        )
        miss_rows: list[int] = []
        for row, key in enumerate(keys):
            cached = self.cache.get(key)
            if cached is None:
                miss_rows.append(row)
            else:
                out_ids[row], out_dists[row] = cached
        if cache_span is not None:
            trace.end_span(cache_span)
            cache_span["annotations"].update(
                hits=num_queries - len(miss_rows), misses=len(miss_rows)
            )
        if miss_rows:
            misses = np.asarray(miss_rows, dtype=np.int64)
            fresh_ids, fresh_dists, fresh_answered = self._admit(
                index_name,
                queries[misses],
                top_k,
                eff_ef,
                trace=trace,
                extra_out=extra_out,
            )
            out_ids[misses] = fresh_ids
            out_dists[misses] = fresh_dists
            out_answered[misses] = fresh_answered
            full = int(self.config.num_shards)
            for slot, row in enumerate(miss_rows):
                if int(fresh_answered[slot]) == full:
                    self.cache.put(
                        keys[row], fresh_ids[slot], fresh_dists[slot]
                    )
        return out_ids, out_dists, out_answered

    # -- admission + execution ---------------------------------------------------------
    def _admit(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        eff_ef: int,
        trace: Trace | None = None,
        extra_out: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run a block through micro-batching when on, else directly.

        The admission key carries everything that must match for two
        requests to share one lockstep batch: the index, the requested
        ``top_k`` (hence the per-shard budget), the beam width, and the
        dimensionality (so a malformed request cannot poison a
        well-formed one it happens to coalesce with).

        Traced requests bypass the micro-batcher: the batch kernels are
        batch-composition invariant, so executing the block alone is
        bit-identical, and bypassing keeps the whole span tree -- and
        the cost counters -- attributable to *this* request instead of
        to whichever strangers it would have coalesced with.
        """
        key = (index_name, int(top_k), eff_ef, int(queries.shape[1]))
        if self._batcher is None or trace is not None:
            if trace is not None:
                queue_span = trace.start_span(
                    "queue_wait", coalesced=False
                )
                trace.end_span(queue_span)
            return self._execute_keyed(
                key, queries, trace=trace, extra_out=extra_out
            )
        return self._batcher.submit(key, queries).result()

    def _execute_keyed(
        self,
        key: tuple,
        queries: np.ndarray,
        *,
        trace: Trace | None = None,
        extra_out: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        index_name, top_k, eff_ef, _dim = key
        return self._execute_batch(
            index_name,
            queries,
            top_k,
            eff_ef,
            trace=trace,
            extra_out=extra_out,
        )

    def _execute_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        eff_ef: int,
        *,
        trace: Trace | None = None,
        extra_out: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Micro-batcher callback: full fan-out, per-row result tuple.

        Returns per-row ``(ids, dists, shards_answered)`` only -- every
        element must be sliceable per row because the micro-batcher
        splits the result tuple back across the coalesced requests.
        Batch-level extras (the aggregated cost) land in ``extra_out``
        when the caller supplied one (the direct, uncoalesced path).
        """
        ids, dists, answered, _routed, _replicas, _timings, cost = (
            self._execute_fanout(
                index_name,
                queries,
                top_k,
                eff_ef,
                trace=trace,
                collect_cost=self.collect_cost,
            )
        )
        if extra_out is not None and cost is not None:
            existing = extra_out.get("cost")
            if existing is not None:
                # Partial cache hits admit miss-blocks separately; the
                # request's cost is their sum.
                cost = SearchCost.from_dict(existing).merge(cost).as_dict()
            extra_out["cost"] = cost
        return ids, dists, answered

    def _execute_fanout(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        eff_ef: int,
        *,
        plan: RoutingPlan | None = None,
        timeout_s: float | str | None = INHERIT,
        hedging: bool | float | str | None = INHERIT,
        trace: Trace | None = None,
        collect_cost: bool = False,
    ) -> tuple:
        """The lockstep path: one shard-group fan-out + one batched merge.

        ``plan=None`` fans the full batch out to every shard group (the
        pre-router behavior, bit-exact); a routing plan sends each group
        only its routed rows with their segment probes pushed down, and
        scatters the sub-batch results back into full-width parts before
        the merge (unrouted rows hold the ``-1``/``inf`` sentinels the
        merge already treats as absent).

        Returns ``(ids, dists, answered, routed, replicas_used,
        timings, cost)``; ``answered``/``routed`` are per-row ``(B,)``
        arrays, ``replicas_used`` one winning replica id per shard group
        (``-1`` for failed or unqueried groups), ``cost`` the batch's
        aggregated search-cost dict (``None`` unless ``collect_cost``).

        ``trace`` spans the fan-out: one ``shard_rpc`` span per group
        with each replica attempt (hedges included) as a child.  Spans
        are created here and handed to the RPC paths explicitly, because
        the async fan-out runs on a separate event-loop thread where the
        recorder's nesting stack cannot be used.
        """
        num_queries = queries.shape[0]
        num_shards = len(self.groups)
        # One work item per shard group that has rows to serve:
        # (group_id, sub-batch, rows or None for "all", probes or None).
        if plan is None:
            budget = self.per_shard_budget(top_k)
            work = [
                (group_id, queries, None, None)
                for group_id in range(num_shards)
            ]
            routed = np.full(num_queries, num_shards, dtype=np.int64)
        else:
            # Routed rows are answered by their plan's groups only, so
            # the per-shard budget must cover that width, not the full
            # deployment's.
            width = (
                int(plan.routed_counts.max())
                if plan.routed_counts.size
                else 0
            )
            budget = self.per_shard_budget(top_k, num_groups=max(width, 1))
            work = [
                (
                    group_id,
                    queries[plan.shard_rows[group_id]],
                    plan.shard_rows[group_id],
                    plan.shard_probes[group_id],
                )
                for group_id in plan.shard_rows
            ]
            routed = plan.routed_counts.copy()
        replicas_used = [-1] * num_shards
        timings: dict[str, float] = {}
        if not work:
            # Every row routed nowhere (empty hints): nothing to ask.
            return (
                np.full((num_queries, top_k), -1, dtype=np.int64),
                np.full((num_queries, top_k), np.inf, dtype=np.float64),
                np.zeros(num_queries, dtype=np.int64),
                routed,
                replicas_used,
                timings,
                SearchCost().as_dict() if collect_cost else None,
            )
        if timeout_s == INHERIT:
            timeout_s = self.request_timeout_s
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        hedge_knob = (
            self.hedge_after_s
            if hedging == INHERIT
            else (None if hedging is False else hedging)
        )
        fanout_span = (
            trace.start_span("fanout", groups=len(work), budget=budget)
            if trace is not None
            else None
        )
        group_spans: list[dict | None] = [
            trace.start_span("shard_rpc", parent=fanout_span, shard=group_id)
            if trace is not None
            else None
            for group_id, *_ in work
        ]
        tick = time.perf_counter()
        outcomes: list[tuple] | None = None
        fanout_loop = self._fanout_loop  # snapshot: close() may race
        if fanout_loop is not None:
            # Resolved once per batch: every shard of a fan-out hedges
            # against the same delay, and an "auto" knob re-reads the
            # live shard_rpc window between batches, not mid-batch.
            hedge_delay = self._resolve_hedge_delay(hedge_knob)
            coro = self._fanout_async(
                index_name,
                work,
                budget,
                eff_ef,
                deadline,
                hedge_delay,
                trace,
                group_spans,
                collect_cost,
            )
            try:
                future = fanout_loop.submit(coro)
            except RuntimeError:
                # Loop shut down mid-request: fall through to sequential.
                coro.close()
            else:
                try:
                    outcomes = future.result()
                except (FutureCancelledError, asyncio.CancelledError):
                    # close() tore the loop down under us (the wrapper
                    # future raises concurrent.futures.CancelledError, a
                    # *different* class from asyncio's); the transports
                    # are still alive, so serve this request sequentially.
                    pass
        pool = self._pool  # snapshot: close() may race an in-flight call
        if outcomes is None and pool is not None:
            try:
                futures = [
                    pool.submit(
                        self._group_search_sync,
                        self.groups[group_id],
                        index_name,
                        sub_queries,
                        budget,
                        eff_ef,
                        deadline,
                        probes,
                        trace,
                        group_span,
                        collect_cost,
                    )
                    for (
                        group_id,
                        sub_queries,
                        _rows,
                        probes,
                    ), group_span in zip(work, group_spans)
                ]
            except RuntimeError:
                # Pool shut down mid-request: fall through to sequential.
                outcomes = None
            else:
                outcomes = []
                for (group_id, *_), future in zip(work, futures):
                    try:
                        wait = None
                        if deadline is not None:
                            wait = max(deadline - time.monotonic(), 0.0)
                        part, replica_id, part_cost = future.result(
                            timeout=wait
                        )
                    except (FutureTimeoutError, TimeoutError):
                        # The shard may still answer eventually, but this
                        # request is done waiting; the worker thread
                        # finishes in the background and the result is
                        # discarded.
                        outcomes.append(
                            (
                                None,
                                DeadlineExceededError(
                                    f"shard {group_id} missed the "
                                    f"{timeout_s}s request deadline"
                                ),
                                -1,
                                None,
                            )
                        )
                    except TransportError as exc:
                        outcomes.append((None, exc, -1, None))
                    else:
                        outcomes.append((part, None, replica_id, part_cost))
        if outcomes is None:
            outcomes = []
            for (
                group_id,
                sub_queries,
                _rows,
                probes,
            ), group_span in zip(work, group_spans):
                try:
                    part, replica_id, part_cost = self._group_search_sync(
                        self.groups[group_id],
                        index_name,
                        sub_queries,
                        budget,
                        eff_ef,
                        deadline,
                        probes,
                        trace,
                        group_span,
                        collect_cost,
                    )
                except TransportError as exc:
                    outcomes.append((None, exc, -1, None))
                else:
                    outcomes.append((part, None, replica_id, part_cost))

        parts: list[tuple[np.ndarray, np.ndarray]] = []
        answered = routed.copy()
        succeeded = 0
        failed_any = False
        batch_cost = SearchCost() if collect_cost else None
        for (group_id, sub_queries, rows, _probes), outcome, group_span in zip(
            work, outcomes, group_spans
        ):
            part, exc, replica_id, part_cost = outcome
            if group_span is not None:
                group_span["annotations"].update(
                    ok=exc is None, replica=replica_id
                )
                trace.end_span(group_span)
            if exc is not None:
                part = self._shard_failure(group_id, exc)
            if part is None:
                failed_any = True
                if rows is None:
                    answered -= 1
                else:
                    answered[rows] -= 1
                part = (
                    np.full(
                        (sub_queries.shape[0], budget), -1, dtype=np.int64
                    ),
                    np.full(
                        (sub_queries.shape[0], budget),
                        np.inf,
                        dtype=np.float64,
                    ),
                )
            else:
                succeeded += 1
                replicas_used[group_id] = replica_id
                if batch_cost is not None:
                    batch_cost.merge(part_cost)
            if rows is None:
                parts.append(part)
            else:
                full_ids = np.full(
                    (num_queries, budget), -1, dtype=np.int64
                )
                full_dists = np.full(
                    (num_queries, budget), np.inf, dtype=np.float64
                )
                full_ids[rows] = part[0]
                full_dists[rows] = part[1]
                parts.append((full_ids, full_dists))
        if succeeded == 0:
            # Degrading to an empty answer would be indistinguishable
            # from "no neighbors exist"; a fully dead fleet must fail.
            raise TransportError(
                f"all {len(work)} shards failed for this request"
            ) from self._last_failure
        if failed_any:
            with self._served_lock:
                self.degraded_batches += 1
            _DEGRADED.inc(broker=self.name)
        if fanout_span is not None:
            trace.end_span(fanout_span)
        fanned = time.perf_counter()
        merge_span = (
            trace.start_span("merge", parts=len(parts))
            if trace is not None
            else None
        )
        ids, dists = merge_shard_results_batch(parts, top_k)
        if merge_span is not None:
            trace.end_span(merge_span)
        done = time.perf_counter()
        self.timings.record("fanout", fanned - tick)
        self.timings.record("merge", done - fanned)
        timings["fanout_ms"] = (fanned - tick) * 1000.0
        timings["merge_ms"] = (done - fanned) * 1000.0
        return (
            ids,
            dists,
            answered,
            routed,
            replicas_used,
            timings,
            batch_cost.as_dict() if batch_cost is not None else None,
        )

    # -- replica selection + failover --------------------------------------------------
    @staticmethod
    def _failover_eligible(exc: TransportError) -> bool:
        """Whether a sibling replica may retry after this failure.

        Dead/unreachable/garbled connections, a replica shedding with
        ``OVERLOADED`` (the work was refused instantly, so budget
        remains and a sibling may have capacity), and a replica that
        does not host the index (restarted process) fail over; timeouts
        do not (retrying a blown budget only makes it later), and
        structured remote errors do not (the request itself is broken).
        """
        if isinstance(
            exc, (ConnectionLostError, ProtocolError, OverloadedError)
        ):
            return True
        return (
            isinstance(exc, RemoteCallError) and exc.error_type == "KeyError"
        )

    @staticmethod
    def _retry_after_pause(
        last: TransportError | None,
        deadline: float | None,
        waited: bool,
    ) -> float | None:
        """Honor an OVERLOADED retry-after hint, at most once per request.

        When every replica of a group shed with ``OVERLOADED``, the
        servers told us exactly when asking again is worth it.  Returns
        the pause to sleep before re-trying the whole group -- only if
        we have not paused yet and the hint fits inside the remaining
        deadline budget -- else ``None`` (give up with the overload).
        """
        if waited or not isinstance(last, OverloadedError):
            return None
        hint = last.retry_after_s
        if hint is None or hint < 0:
            return None
        if deadline is not None and deadline - time.monotonic() <= hint:
            return None
        return hint

    def _group_search_sync(
        self,
        group: ReplicaGroup,
        index_name: str,
        queries: np.ndarray,
        budget: int,
        eff_ef: int,
        deadline: float | None,
        probes: list[tuple[int, ...]] | None,
        trace: Trace | None = None,
        group_span: dict | None = None,
        collect_cost: bool = False,
    ) -> tuple[tuple[np.ndarray, np.ndarray], int, dict | None]:
        """One group's answer on the calling thread, with failover.

        Picks the least-loaded replica, retries eligible failures on
        untried siblings while deadline budget remains, and maintains
        the group's in-flight/EWMA ledger.  Raises the last failure when
        every eligible replica was tried.  Returns ``(part, replica_id,
        cost_dict)``; each attempt is a child span of ``group_span``
        (with the searcher's own spans spliced under the winner).
        """
        trace_ctx = trace.context() if trace is not None else None
        tried: list[int] = []
        last: TransportError | None = None
        waited_retry = False
        while True:
            replica = group.pick(exclude=tried)
            if replica is None:
                assert last is not None
                pause = self._retry_after_pause(last, deadline, waited_retry)
                if pause is not None:
                    # Every replica shed with OVERLOADED and the hint
                    # fits the deadline: back off once, then re-try the
                    # whole group.
                    time.sleep(pause)
                    waited_retry = True
                    tried.clear()
                    continue
                raise last
            if tried:
                # A sibling is actually taking over, not just a dead end.
                with self._served_lock:
                    self.failovers += 1
                _FAILOVERS.inc(broker=self.name)
            tried.append(replica.replica_id)
            attempt_span = (
                trace.start_span(
                    "attempt",
                    parent=group_span,
                    replica=replica.replica_id,
                    hedge=False,
                )
                if trace is not None
                else None
            )
            info: dict | None = (
                {} if (collect_cost or trace is not None) else None
            )
            group.begin(replica)
            tick = time.perf_counter()
            try:
                part = replica.transport.search_batch(
                    index_name,
                    queries,
                    budget,
                    ef=eff_ef,
                    deadline=deadline,
                    probes=probes,
                    trace_ctx=trace_ctx,
                    collect_cost=collect_cost,
                    info_out=info,
                )
            except TransportError as exc:
                group.finish(replica, outcome="error")
                if isinstance(exc, OverloadedError):
                    _OVERLOADED.inc(broker=self.name)
                if attempt_span is not None:
                    attempt_span["annotations"].update(
                        outcome="error", win=False, error=type(exc).__name__
                    )
                    trace.end_span(attempt_span)
                expired = (
                    deadline is not None
                    and deadline - time.monotonic() <= 0
                )
                if not self._failover_eligible(exc) or expired:
                    raise
                last = exc
                continue
            group.finish(replica, time.perf_counter() - tick)
            if attempt_span is not None:
                attempt_span["annotations"].update(outcome="ok", win=True)
                if info and info.get("trace"):
                    trace.attach_remote(attempt_span, info["trace"])
                trace.end_span(attempt_span)
            return (
                part,
                replica.replica_id,
                info.get("cost") if info else None,
            )

    # -- asyncio fan-out ---------------------------------------------------------------
    def _resolve_hedge_delay(
        self, knob: float | str | None = INHERIT
    ) -> float | None:
        """This batch's hedge delay: the static knob, or the live one.

        ``knob`` is a per-request override of the broker's
        ``hedge_after_s`` (omitted = the broker's own knob).  ``"auto"``
        derives the delay from the ``shard_rpc`` stage's
        sliding window: ``median * AUTO_HEDGE_MULTIPLIER`` (see the
        module constants for why the median and not a tail quantile).
        Until the window holds ``AUTO_HEDGE_MIN_SAMPLES`` samples there
        is no hedging at all -- the first requests of a fresh broker are
        establishing connections and warming caches, which must not be
        mistaken for straggling.
        """
        if knob == INHERIT:
            knob = self.hedge_after_s
        if knob != "auto":
            return knob
        sample = self.timings.quantile("shard_rpc", AUTO_HEDGE_QUANTILE)
        if sample is None or sample[0] < AUTO_HEDGE_MIN_SAMPLES:
            return None
        return max(sample[1] * AUTO_HEDGE_MULTIPLIER, AUTO_HEDGE_MIN_DELAY_S)

    async def _fanout_async(
        self,
        index_name: str,
        work: list[tuple],
        budget: int,
        eff_ef: int,
        deadline: float | None,
        hedge_delay: float | None,
        trace: Trace | None = None,
        group_spans: list | None = None,
        collect_cost: bool = False,
    ) -> list[tuple]:
        """Multiplex one batch's group RPCs (and their hedges) on the loop.

        Returns one ``(part, exc, replica_id, cost)`` tuple per work
        item, in work order.  Partial-result policy is applied by the
        calling thread, so the counting and raise behavior is identical
        to the thread-pool fan-out.
        """
        if group_spans is None:
            group_spans = [None] * len(work)
        return await asyncio.gather(
            *(
                self._group_call_async(
                    self.groups[group_id],
                    index_name,
                    sub_queries,
                    budget,
                    eff_ef,
                    deadline,
                    hedge_delay,
                    probes,
                    trace,
                    group_span,
                    collect_cost,
                )
                for (
                    group_id,
                    sub_queries,
                    _rows,
                    probes,
                ), group_span in zip(work, group_spans)
            )
        )

    async def _group_call_async(
        self,
        group: ReplicaGroup,
        index_name: str,
        queries: np.ndarray,
        budget: int,
        eff_ef: int,
        deadline: float | None,
        hedge_delay: float | None,
        probes: list[tuple[int, ...]] | None,
        trace: Trace | None = None,
        group_span: dict | None = None,
        collect_cost: bool = False,
    ) -> tuple:
        """One group's outcome on the loop: hedged search + failover."""
        tried: list[int] = []
        last: TransportError | None = None
        waited_retry = False
        while True:
            replica = group.pick(exclude=tried)
            if replica is None:
                pause = self._retry_after_pause(last, deadline, waited_retry)
                if pause is not None:
                    # Every replica shed with OVERLOADED and the hint
                    # fits the deadline: back off once, then re-try the
                    # whole group.
                    await asyncio.sleep(pause)
                    waited_retry = True
                    tried.clear()
                    continue
                return None, last, -1, None
            if tried:
                # A sibling is actually taking over, not just a dead end.
                with self._served_lock:
                    self.failovers += 1
                _FAILOVERS.inc(broker=self.name)
            tried.append(replica.replica_id)
            try:
                part, replica_id, part_cost = await self._hedged_search_async(
                    group,
                    replica,
                    tried,
                    index_name,
                    queries,
                    budget,
                    eff_ef,
                    deadline,
                    hedge_delay,
                    probes,
                    trace,
                    group_span,
                    collect_cost,
                )
            except TransportError as exc:
                if isinstance(exc, OverloadedError):
                    _OVERLOADED.inc(broker=self.name)
                expired = (
                    deadline is not None
                    and deadline - time.monotonic() <= 0
                )
                if not self._failover_eligible(exc) or expired:
                    return None, exc, -1, None
                last = exc
                continue
            return part, None, replica_id, part_cost

    async def _search_one_async(
        self,
        transport: SearcherTransport,
        index_name: str,
        queries: np.ndarray,
        k: int,
        eff_ef: int,
        deadline: float | None,
        probes: list[tuple[int, ...]] | None,
        trace_ctx: dict | None = None,
        collect_cost: bool = False,
        info_out: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One shard RPC on the event loop.

        Async-capable transports are awaited natively (the remote
        client enforces the deadline on the wire); everything else --
        in-process shards -- runs on the loop's default executor with
        the wait bounded by the remaining budget.  Per-RPC wall time
        lands in the ``shard_rpc`` latency stage (the number to tune
        ``hedge_after_s`` against).
        """
        tick = time.perf_counter()
        try:
            if isinstance(transport, AsyncSearcherTransport):
                return await transport.search_batch_async(
                    index_name,
                    queries,
                    k,
                    ef=eff_ef,
                    deadline=deadline,
                    probes=probes,
                    trace_ctx=trace_ctx,
                    collect_cost=collect_cost,
                    info_out=info_out,
                )
            loop = asyncio.get_running_loop()
            call = partial(
                transport.search_batch,
                index_name,
                queries,
                k,
                ef=eff_ef,
                deadline=deadline,
                probes=probes,
                trace_ctx=trace_ctx,
                collect_cost=collect_cost,
                info_out=info_out,
            )
            wait = None
            if deadline is not None:
                wait = max(deadline - time.monotonic(), 0.0)
            try:
                return await asyncio.wait_for(
                    loop.run_in_executor(None, call), wait
                )
            except (asyncio.TimeoutError, TimeoutError):
                raise DeadlineExceededError(
                    f"shard {transport.shard_id} missed the request deadline"
                ) from None
        finally:
            self.timings.record("shard_rpc", time.perf_counter() - tick)

    async def _hedged_search_async(
        self,
        group: ReplicaGroup,
        replica: ReplicaState,
        tried: list[int],
        index_name: str,
        queries: np.ndarray,
        k: int,
        eff_ef: int,
        deadline: float | None,
        hedge_delay: float | None,
        probes: list[tuple[int, ...]] | None,
        trace: Trace | None = None,
        group_span: dict | None = None,
        collect_cost: bool = False,
    ) -> tuple[tuple[np.ndarray, np.ndarray], int, dict | None]:
        """One replica's answer, hedging a straggling RPC when allowed.

        The hedge fires only when (a) hedging is configured (a resolved
        delay exists for this batch), (b) the transport can multiplex a
        second in-flight RPC, and (c) budget remains before the request
        deadline.  The hedge lands on a *different* replica when the
        group has an untried, non-draining, async-capable sibling --
        that is what lets it dodge a slow process, not just a slow
        connection -- and on a second connection to the same process
        otherwise (the single-replica behavior of PR 4).  Tasks resolve
        to ``(part, replica_id, cost, attempt_span)``; the ledger is
        maintained per task, with cancelled hedge losers releasing
        their in-flight slot without polluting the latency EWMA.  Each
        attempt is a child span of ``group_span`` annotated with
        ``hedge``/``outcome``/``win``, so a trace shows the race.
        """
        trace_ctx = trace.context() if trace is not None else None

        def issue(target: ReplicaState, *, hedge: bool = False):
            attempt_span = (
                trace.start_span(
                    "attempt",
                    parent=group_span,
                    replica=target.replica_id,
                    hedge=hedge,
                )
                if trace is not None
                else None
            )
            info: dict | None = (
                {} if (collect_cost or trace is not None) else None
            )

            async def run():
                group.begin(target)
                tick = time.perf_counter()
                try:
                    part = await self._search_one_async(
                        target.transport,
                        index_name,
                        queries,
                        k,
                        eff_ef,
                        deadline,
                        probes,
                        trace_ctx,
                        collect_cost,
                        info,
                    )
                except asyncio.CancelledError:
                    group.finish(target, outcome="cancelled")
                    if attempt_span is not None:
                        attempt_span["annotations"].update(
                            outcome="cancelled", win=False
                        )
                        trace.end_span(attempt_span)
                    raise
                except BaseException as exc:
                    group.finish(target, outcome="error")
                    if attempt_span is not None:
                        attempt_span["annotations"].update(
                            outcome="error",
                            win=False,
                            error=type(exc).__name__,
                        )
                        trace.end_span(attempt_span)
                    raise
                group.finish(target, time.perf_counter() - tick)
                if attempt_span is not None:
                    # "win" defaults False: a completed loser (both
                    # answered in one tick) stays a loss; the race
                    # winner is flipped to True by _settle_winner.
                    attempt_span["annotations"].update(
                        outcome="ok", win=False
                    )
                    if info and info.get("trace"):
                        trace.attach_remote(attempt_span, info["trace"])
                    trace.end_span(attempt_span)
                return (
                    part,
                    target.replica_id,
                    info.get("cost") if info else None,
                    attempt_span,
                )

            return asyncio.create_task(run())

        delay = hedge_delay
        primary = issue(replica)
        can_hedge = (
            delay is not None
            and isinstance(replica.transport, AsyncSearcherTransport)
            and (deadline is None or deadline - time.monotonic() > delay)
        )
        if not can_hedge:
            return self._settle_winner(await primary)
        done, _ = await asyncio.wait({primary}, timeout=delay)
        if primary in done:
            return self._settle_winner(primary.result())
        if deadline is not None and deadline - time.monotonic() <= 0:
            # Out of budget: the in-flight primary is about to raise its
            # own DeadlineExceededError; hedging now would be a second
            # RPC that cannot answer in time either.
            return self._settle_winner(await primary)
        alternate = group.pick(exclude=tried)
        if alternate is not None and (
            alternate.draining
            or not isinstance(alternate.transport, AsyncSearcherTransport)
        ):
            alternate = None
        hedge_target = alternate if alternate is not None else replica
        if alternate is not None:
            tried.append(alternate.replica_id)
        with self._served_lock:
            self.hedges += 1
        _HEDGES.inc(broker=self.name)
        return await self._first_reply_async(
            primary, issue(hedge_target, hedge=True)
        )

    @staticmethod
    def _settle_winner(
        result: tuple,
    ) -> tuple[tuple[np.ndarray, np.ndarray], int, dict | None]:
        """Mark a task result's attempt span as the winner and strip it."""
        part, replica_id, cost, attempt_span = result
        if attempt_span is not None:
            attempt_span["annotations"]["win"] = True
        return part, replica_id, cost

    async def _first_reply_async(self, primary, hedge):
        """Race the primary against its hedge; first *success* wins.

        One task failing does not settle the race while the other still
        runs -- a dead primary with a live hedge is exactly the save
        hedging exists for.  When both fail, the primary's error is
        raised.  The loser is cancelled AND awaited, so its connection
        is discarded (never pooled) before the batch returns.
        """
        pending = {primary, hedge}
        failures: dict = {}
        winner = None
        unexpected: BaseException | None = None
        while pending and winner is None:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            # Settle the whole completion wave before deciding: set
            # iteration order is arbitrary, and a success must win
            # deterministically even when the other task failed in the
            # same tick.
            for task in done:
                exc = task.exception()
                if exc is None:
                    winner = winner if winner is not None else task
                elif isinstance(exc, TransportError):
                    failures[task] = exc
                else:
                    unexpected = exc
            if winner is None and unexpected is not None:
                for straggler in pending:
                    straggler.cancel()
                for straggler in pending:
                    with contextlib.suppress(
                        asyncio.CancelledError, TransportError
                    ):
                        await straggler
                raise unexpected
        if winner is None:
            raise failures.get(primary, failures.get(hedge))
        for loser in pending:
            loser.cancel()
        for loser in pending:
            with contextlib.suppress(asyncio.CancelledError, TransportError):
                await loser
        if winner is hedge:
            with self._served_lock:
                self.hedge_wins += 1
            _HEDGE_WINS.inc(broker=self.name)
        return self._settle_winner(winner.result())

    def _shard_failure(self, shard_id: int, exc: TransportError) -> None:
        """Handle one shard group's failure per the active policy.

        Reached only after replica failover is exhausted (or the failure
        was not failover-eligible).  Returns ``None`` (the caller
        substitutes sentinel rows) under ``degrade``; re-raises
        otherwise.  Degradeable failures are connectivity losses
        (dead/unreachable/garbled/late shard) plus one structured error:
        a remote ``KeyError`` -- "I don't host this index" -- which is
        how a searcher that restarted (or missed a degraded deploy)
        presents; its rows are as gone as a dead shard's.  Any other
        :class:`RemoteCallError` re-raises under either policy: the
        searcher executed the request and told us the request itself is
        broken, which no amount of shard-dropping can fix.  (A globally
        wrong index name still fails: every shard KeyErrors, and an
        all-shards-failed request always raises.)
        """
        unhosted = (
            isinstance(exc, RemoteCallError) and exc.error_type == "KeyError"
        )
        if self.partial_policy == "fail" or (
            isinstance(exc, RemoteCallError) and not unhosted
        ):
            raise exc
        with self._served_lock:
            self.shard_failures[shard_id] += 1
        _SHARD_FAILURES.inc(broker=self.name, shard=shard_id)
        self._last_failure = exc
        return None

    # -- deprecated aliases (the original serving entry points) ------------------------
    def query(
        self,
        index_name: str,
        query: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deprecated alias of :meth:`search`."""
        warnings.warn(
            "Broker.query is deprecated; use Broker.search or "
            "Broker.execute(SearchRequest(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.search(index_name, query, top_k, ef=ef)

    def query_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deprecated alias of :meth:`search_batch`."""
        warnings.warn(
            "Broker.query_batch is deprecated; use Broker.search_batch or "
            "Broker.execute(SearchRequest(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.search_batch(index_name, queries, top_k, ef=ef)
