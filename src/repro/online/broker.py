"""The broker: admission, query fan-out, perShardTopK, and the final merge.

"The final merge happens at the broker or the client. The broker is also
responsible for calculating and passing the perShardTopK to each shard."

PR 2 turns this into a concurrent serving core with three cooperating
layers in front of the lockstep batch engine:

1. an LRU **result cache** (:mod:`repro.online.cache`) consulted per
   query row before admission and filled after the final merge;
2. an opportunistic **micro-batching admission layer**
   (:mod:`repro.online.microbatch`) that coalesces requests arriving from
   many client threads into one lockstep batch (flush on ``max_batch``
   rows or ``max_wait_ms``, whichever first);
3. a **fan-out executor** sized independently of the searcher count
   (``fanout_workers``), so in-flight batches can overlap their shard
   requests instead of queueing behind one another on exactly
   ``len(searchers)`` workers.  Note the overlap applies to *direct*
   execution (micro-batching off, or concurrent ``search_batch`` callers
   on an admission-disabled broker): with admission on, the single
   flusher thread executes coalesced batches one at a time -- batching,
   not pool width, is what buys throughput there.

Every result still flows through the same `_execute_batch` fan-out +
merge path PR 1 built, so micro-batched, cached, and direct requests are
bit-identical per query.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.config import LannsConfig
from repro.core.merge import merge_shard_results_batch
from repro.core.topk import per_shard_top_k
from repro.eval.timing import StageLatencyRecorder
from repro.online.cache import QueryResultCache, result_cache_key
from repro.online.microbatch import MicroBatcher
from repro.online.searcher import SearcherNode
from repro.utils.validation import as_matrix, as_vector


class Broker:
    """Fans queries out to a searcher fleet and merges shard results.

    Parameters
    ----------
    searchers:
        One searcher per shard, in shard order.
    config:
        The index configuration (for perShardTopK parameters).
    parallel_fanout:
        Issue shard requests on a thread pool (as a real broker would);
        sequential when ``False`` (deterministic timing for tests).
    fanout_workers:
        Size of the fan-out pool, independent of ``len(searchers)``.
        Defaults to ``2 * len(searchers)`` so two directly executed
        batches can have all their shard requests in flight at once
        (see the module docs for how this interacts with
        micro-batching).  Ignored unless ``parallel_fanout``.
    max_batch, max_wait_ms:
        Micro-batching knobs.  ``max_batch <= 1`` disables admission
        entirely (every request executes directly, PR-1 behavior);
        otherwise concurrent requests coalesce until a group holds
        ``max_batch`` rows or its oldest request has waited
        ``max_wait_ms``.
    cache:
        A shared :class:`~repro.online.cache.QueryResultCache` (e.g. the
        service-level cache spanning deployed indices).  When ``None``,
        ``cache_size > 0`` creates a private cache of that capacity.
    cache_size:
        Capacity of the private cache when ``cache`` is not given;
        ``0`` (default) serves every request from the index.
    cache_epoch:
        Deployment generation tag baked into this broker's cache keys.
        The service bumps it on every deploy so a late ``put`` racing an
        undeploy/re-deploy of the same name can never be served by the
        new deployment.  Irrelevant for a private cache.
    """

    def __init__(
        self,
        searchers: list[SearcherNode],
        config: LannsConfig,
        *,
        parallel_fanout: bool = False,
        fanout_workers: int | None = None,
        max_batch: int = 1,
        max_wait_ms: float = 2.0,
        cache: QueryResultCache | None = None,
        cache_size: int = 0,
        cache_epoch: int = 0,
    ) -> None:
        if len(searchers) != config.num_shards:
            raise ValueError(
                f"{len(searchers)} searchers for {config.num_shards} shards"
            )
        for shard_id, searcher in enumerate(searchers):
            if searcher.shard_id != shard_id:
                raise ValueError(
                    f"searcher at position {shard_id} serves shard "
                    f"{searcher.shard_id}; searchers must be in shard order"
                )
        if fanout_workers is not None and fanout_workers < 1:
            raise ValueError(
                f"fanout_workers must be >= 1, got {fanout_workers}"
            )
        self.searchers = searchers
        self.config = config
        self.parallel_fanout = bool(parallel_fanout)
        self.fanout_workers = (
            int(fanout_workers)
            if fanout_workers is not None
            else 2 * len(searchers)
        )
        self.timings = StageLatencyRecorder()
        self.cache = (
            cache if cache is not None else QueryResultCache(cache_size)
        )
        self.cache_epoch = int(cache_epoch)
        self._served_lock = threading.Lock()
        #: Query rows this broker answered (cache hits included).
        self.queries_served = 0
        # One long-lived fan-out pool, created eagerly (lazy creation
        # would race under concurrent first requests).  Reusing it keeps
        # the worker threads -- and therefore the per-thread
        # visited-table caches inside each searcher's HNSW indices --
        # alive across requests; a pool per call would re-allocate
        # O(num_nodes) tables for every lockstep query on every request.
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=self.fanout_workers,
                thread_name_prefix="broker-fanout",
            )
            if self.parallel_fanout and len(searchers) > 1
            else None
        )
        self._batcher: MicroBatcher | None = (
            MicroBatcher(
                self._execute_keyed,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                on_queue_wait=self.timings.recorder("queue_wait"),
            )
            if max_batch > 1
            else None
        )

    def close(self) -> None:
        """Drain the admission layer and shut down the fan-out pool.

        Idempotent and safe to call with requests in flight: pending
        micro-batches execute before the flusher exits, and requests
        admitted after close run inline/sequentially instead of hanging.
        """
        if self._batcher is not None:
            self._batcher.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def stats(self) -> dict:
        """Serving counters: cache, micro-batching, per-stage latency."""
        return {
            "cache": self.cache.stats.as_dict(),
            "microbatch": dict(self._batcher.stats)
            if self._batcher is not None
            else None,
            "stages": self.timings.summary(),
            "fanout_workers": self.fanout_workers
            if self._pool is not None
            else 0,
            "queries_served": self.queries_served,
            # The fleet is shared between brokers (A/B deployments), so
            # this counts ALL traffic the searchers saw, not just ours.
            "fleet_queries_served": sum(
                searcher.queries_served for searcher in self.searchers
            ),
        }

    def per_shard_budget(self, top_k: int) -> int:
        """The perShardTopK this broker passes to each searcher.

        Degenerate cases (all reachable through micro-batch coalescing,
        pinned by ``tests/test_online_serving.py``):

        - **single shard**: the budget is exactly ``top_k`` -- Eq. 5-6
          degrade to the identity, so one-shard serving never truncates.
        - **top_k larger than a segment/shard**: the budget is a
          *request* size, not a guarantee; shards with fewer points
          return short rows padded with the ``-1`` id / ``inf`` distance
          sentinels, which :func:`~repro.core.topk.batch_top_k` keeps
          ordered after every real result.
        - **empty batch**: no fan-out happens at all; the budget is only
          computed for batches with at least one row.
        """
        if not self.config.use_per_shard_topk:
            return int(top_k)
        return per_shard_top_k(
            top_k,
            self.config.num_shards,
            self.config.topk_confidence,
            paper_literal=self.config.paper_literal_probit,
        )

    def effective_ef(self, ef: int | None) -> int:
        """Canonicalise ``ef``: ``None`` means the config's ``ef_search``.

        The HNSW layer resolves ``ef=None`` to ``params.ef_search``
        itself, so pinning the default here changes nothing downstream --
        but it gives the cache and the admission layer a stable key, so
        ``ef=None`` and an explicit ``ef=ef_search`` share cache entries
        and micro-batches.
        """
        return int(ef) if ef is not None else int(self.config.hnsw.ef_search)

    def search(
        self,
        index_name: str,
        query: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve one query end to end (a batch of one).

        Returns
        -------
        (ids, distances): ascending by distance, at most ``top_k``.
        """
        query = as_vector(query, name="query")
        ids, dists = self.search_batch(
            index_name, query[np.newaxis, :], top_k, ef=ef
        )
        valid = ids[0] >= 0
        return ids[0][valid], dists[0][valid]

    def search_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve a query batch end to end: ONE fan-out for the whole batch.

        The request flows cache -> admission -> execution: rows with a
        cached result are answered immediately; the remaining rows are
        admitted as one block (coalescing with other threads' requests
        when micro-batching is on) and executed through the lockstep
        fan-out; fresh results then fill the cache.  Per-query results
        are identical to calling :meth:`search` in a loop regardless of
        caching or coalescing.

        Returns
        -------
        ``(B, top_k)`` id/distance arrays padded with ``-1`` / ``inf``.
        """
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        queries = as_matrix(queries, name="queries")
        num_queries = queries.shape[0]
        if num_queries == 0:
            return (
                np.full((0, top_k), -1, dtype=np.int64),
                np.full((0, top_k), np.inf, dtype=np.float64),
            )
        eff_ef = self.effective_ef(ef)
        with self._served_lock:
            self.queries_served += num_queries

        if not self.cache.enabled:
            return self._admit(index_name, queries, top_k, eff_ef)

        keys = [
            result_cache_key(
                index_name,
                queries[row],
                top_k,
                eff_ef,
                self.config.num_shards,
                self.cache_epoch,
            )
            for row in range(num_queries)
        ]
        out_ids = np.full((num_queries, top_k), -1, dtype=np.int64)
        out_dists = np.full((num_queries, top_k), np.inf, dtype=np.float64)
        miss_rows: list[int] = []
        for row, key in enumerate(keys):
            cached = self.cache.get(key)
            if cached is None:
                miss_rows.append(row)
            else:
                out_ids[row], out_dists[row] = cached
        if not miss_rows:
            return out_ids, out_dists
        misses = np.asarray(miss_rows, dtype=np.int64)
        fresh_ids, fresh_dists = self._admit(
            index_name, queries[misses], top_k, eff_ef
        )
        out_ids[misses] = fresh_ids
        out_dists[misses] = fresh_dists
        for slot, row in enumerate(miss_rows):
            self.cache.put(keys[row], fresh_ids[slot], fresh_dists[slot])
        return out_ids, out_dists

    # -- admission + execution ---------------------------------------------------------
    def _admit(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        eff_ef: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run a block through micro-batching when on, else directly.

        The admission key carries everything that must match for two
        requests to share one lockstep batch: the index, the requested
        ``top_k`` (hence the per-shard budget), the beam width, and the
        dimensionality (so a malformed request cannot poison a
        well-formed one it happens to coalesce with).
        """
        key = (index_name, int(top_k), eff_ef, int(queries.shape[1]))
        if self._batcher is None:
            return self._execute_keyed(key, queries)
        return self._batcher.submit(key, queries).result()

    def _execute_keyed(
        self, key: tuple, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        index_name, top_k, eff_ef, _dim = key
        return self._execute_batch(index_name, queries, top_k, eff_ef)

    def _execute_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        eff_ef: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The PR-1 lockstep path: one shard fan-out + one batched merge."""
        budget = self.per_shard_budget(top_k)
        tick = time.perf_counter()
        parts = None
        pool = self._pool  # snapshot: close() may race an in-flight call
        if pool is not None:
            try:
                futures = [
                    pool.submit(
                        searcher.search_batch,
                        index_name,
                        queries,
                        budget,
                        ef=eff_ef,
                    )
                    for searcher in self.searchers
                ]
            except RuntimeError:
                # Pool shut down mid-request: fall through to sequential.
                parts = None
            else:
                parts = [future.result() for future in futures]
        if parts is None:
            parts = [
                searcher.search_batch(index_name, queries, budget, ef=eff_ef)
                for searcher in self.searchers
            ]
        fanned = time.perf_counter()
        merged = merge_shard_results_batch(parts, top_k)
        done = time.perf_counter()
        self.timings.record("fanout", fanned - tick)
        self.timings.record("merge", done - fanned)
        return merged

    # Backwards-compatible aliases (the original serving entry points).
    def query(
        self,
        index_name: str,
        query: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Alias of :meth:`search`."""
        return self.search(index_name, query, top_k, ef=ef)

    def query_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Alias of :meth:`search_batch`."""
        return self.search_batch(index_name, queries, top_k, ef=ef)
