"""The broker: query fan-out, perShardTopK, and the final merge.

"The final merge happens at the broker or the client. The broker is also
responsible for calculating and passing the perShardTopK to each shard."
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.config import LannsConfig
from repro.core.merge import merge_shard_results
from repro.core.topk import per_shard_top_k
from repro.online.searcher import SearcherNode
from repro.utils.validation import as_vector


class Broker:
    """Fans queries out to a searcher fleet and merges shard results.

    Parameters
    ----------
    searchers:
        One searcher per shard, in shard order.
    config:
        The index configuration (for perShardTopK parameters).
    parallel_fanout:
        Issue shard requests on a thread pool (as a real broker would);
        sequential when ``False`` (deterministic timing for tests).
    """

    def __init__(
        self,
        searchers: list[SearcherNode],
        config: LannsConfig,
        *,
        parallel_fanout: bool = False,
    ) -> None:
        if len(searchers) != config.num_shards:
            raise ValueError(
                f"{len(searchers)} searchers for {config.num_shards} shards"
            )
        for shard_id, searcher in enumerate(searchers):
            if searcher.shard_id != shard_id:
                raise ValueError(
                    f"searcher at position {shard_id} serves shard "
                    f"{searcher.shard_id}; searchers must be in shard order"
                )
        self.searchers = searchers
        self.config = config
        self.parallel_fanout = bool(parallel_fanout)

    def per_shard_budget(self, top_k: int) -> int:
        """The perShardTopK this broker passes to each searcher."""
        if not self.config.use_per_shard_topk:
            return int(top_k)
        return per_shard_top_k(
            top_k,
            self.config.num_shards,
            self.config.topk_confidence,
            paper_literal=self.config.paper_literal_probit,
        )

    def query(
        self,
        index_name: str,
        query: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve one query end to end.

        Returns
        -------
        (ids, distances): ascending by distance, at most ``top_k``.
        """
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        query = as_vector(query, name="query")
        budget = self.per_shard_budget(top_k)
        if self.parallel_fanout and len(self.searchers) > 1:
            with ThreadPoolExecutor(
                max_workers=len(self.searchers)
            ) as pool:
                futures = [
                    pool.submit(
                        searcher.search, index_name, query, budget, ef=ef
                    )
                    for searcher in self.searchers
                ]
                shard_results = [future.result() for future in futures]
        else:
            shard_results = [
                searcher.search(index_name, query, budget, ef=ef)
                for searcher in self.searchers
            ]
        merged = merge_shard_results(shard_results, top_k)
        ids = np.asarray([item for _, item in merged], dtype=np.int64)
        dists = np.asarray([dist for dist, _ in merged], dtype=np.float64)
        return ids, dists

    def query_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve many queries; rows padded with id -1 / distance inf."""
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[np.newaxis, :]
        n = queries.shape[0]
        ids = np.full((n, top_k), -1, dtype=np.int64)
        dists = np.full((n, top_k), np.inf, dtype=np.float64)
        for row in range(n):
            found_ids, found_dists = self.query(
                index_name, queries[row], top_k, ef=ef
            )
            ids[row, : len(found_ids)] = found_ids
            dists[row, : len(found_dists)] = found_dists
        return ids, dists
