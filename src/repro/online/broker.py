"""The broker: query fan-out, perShardTopK, and the final merge.

"The final merge happens at the broker or the client. The broker is also
responsible for calculating and passing the perShardTopK to each shard."
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.config import LannsConfig
from repro.core.merge import merge_shard_results_batch
from repro.core.topk import per_shard_top_k
from repro.online.searcher import SearcherNode
from repro.utils.validation import as_matrix, as_vector


class Broker:
    """Fans queries out to a searcher fleet and merges shard results.

    Parameters
    ----------
    searchers:
        One searcher per shard, in shard order.
    config:
        The index configuration (for perShardTopK parameters).
    parallel_fanout:
        Issue shard requests on a thread pool (as a real broker would);
        sequential when ``False`` (deterministic timing for tests).
    """

    def __init__(
        self,
        searchers: list[SearcherNode],
        config: LannsConfig,
        *,
        parallel_fanout: bool = False,
    ) -> None:
        if len(searchers) != config.num_shards:
            raise ValueError(
                f"{len(searchers)} searchers for {config.num_shards} shards"
            )
        for shard_id, searcher in enumerate(searchers):
            if searcher.shard_id != shard_id:
                raise ValueError(
                    f"searcher at position {shard_id} serves shard "
                    f"{searcher.shard_id}; searchers must be in shard order"
                )
        self.searchers = searchers
        self.config = config
        self.parallel_fanout = bool(parallel_fanout)
        # One long-lived fan-out pool, created eagerly (lazy creation
        # would race under concurrent first requests).  Reusing it keeps
        # the worker threads -- and therefore the per-thread
        # visited-table caches inside each searcher's HNSW indices --
        # alive across requests; a pool per call would re-allocate
        # O(num_nodes) tables for every lockstep query on every request.
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=len(searchers),
                thread_name_prefix="broker-fanout",
            )
            if self.parallel_fanout and len(searchers) > 1
            else None
        )

    def close(self) -> None:
        """Shut down the fan-out pool; later requests run sequentially."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def per_shard_budget(self, top_k: int) -> int:
        """The perShardTopK this broker passes to each searcher."""
        if not self.config.use_per_shard_topk:
            return int(top_k)
        return per_shard_top_k(
            top_k,
            self.config.num_shards,
            self.config.topk_confidence,
            paper_literal=self.config.paper_literal_probit,
        )

    def search(
        self,
        index_name: str,
        query: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve one query end to end (a batch of one).

        Returns
        -------
        (ids, distances): ascending by distance, at most ``top_k``.
        """
        query = as_vector(query, name="query")
        ids, dists = self.search_batch(
            index_name, query[np.newaxis, :], top_k, ef=ef
        )
        valid = ids[0] >= 0
        return ids[0][valid], dists[0][valid]

    def search_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve a query batch end to end: ONE fan-out for the whole batch.

        Each shard receives the full ``(B, d)`` batch in a single request
        (one thread-pool task per shard under ``parallel_fanout``) and
        returns ``(B, perShardTopK)`` arrays; the broker then runs one
        vectorised multi-query merge.  Per-query results are identical to
        calling :meth:`search` in a loop.

        Returns
        -------
        ``(B, top_k)`` id/distance arrays padded with ``-1`` / ``inf``.
        """
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        queries = as_matrix(queries, name="queries")
        if queries.shape[0] == 0:
            return (
                np.full((0, top_k), -1, dtype=np.int64),
                np.full((0, top_k), np.inf, dtype=np.float64),
            )
        budget = self.per_shard_budget(top_k)
        parts = None
        pool = self._pool  # snapshot: close() may race an in-flight call
        if pool is not None:
            try:
                futures = [
                    pool.submit(
                        searcher.search_batch,
                        index_name,
                        queries,
                        budget,
                        ef=ef,
                    )
                    for searcher in self.searchers
                ]
            except RuntimeError:
                # Pool shut down mid-request: fall through to sequential.
                parts = None
            else:
                parts = [future.result() for future in futures]
        if parts is None:
            parts = [
                searcher.search_batch(index_name, queries, budget, ef=ef)
                for searcher in self.searchers
            ]
        return merge_shard_results_batch(parts, top_k)

    # Backwards-compatible aliases (the original serving entry points).
    def query(
        self,
        index_name: str,
        query: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Alias of :meth:`search`."""
        return self.search(index_name, query, top_k, ef=ef)

    def query_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        top_k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Alias of :meth:`search_batch`."""
        return self.search_batch(index_name, queries, top_k, ef=ef)
