"""Structured request/response types for the online serving API.

PRs 2-5 accreted knobs onto ``Broker.search_batch`` (``with_info=True``
tuple-shape switching, per-call ``ef``, implicit broker-wide hedging and
deadline policy).  This module replaces that kwarg sprawl with two frozen
dataclasses:

- :class:`SearchRequest` -- everything one query batch needs: the queries
  themselves, accuracy knobs (``top_k``, ``ef``), the routing knob
  (``spill``), and per-request overrides of broker policy (``deadline_s``,
  ``hedging``, ``routing_hints``).
- :class:`SearchResponse` -- results plus structured serving metadata:
  which shard groups were routed and answered per row, which replica won
  each group, and per-stage timings.

``Broker.execute(request) -> response`` is the one true entry point; the
legacy ``search``/``search_batch``/``query`` signatures are thin shims
over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.utils.validation import as_matrix

#: ``spill`` value requesting the legacy fan-out to every shard group.
SPILL_ALL = "all"

#: Sentinel for "use the broker-wide default" in per-request overrides.
INHERIT = "inherit"


@dataclass(frozen=True)
class SearchRequest:
    """One immutable query batch plus its serving policy.

    Parameters
    ----------
    queries:
        ``(B, dim)`` float batch (a single vector is promoted to a batch
        of one).
    top_k:
        Number of neighbours per query; must be positive.
    index_name:
        Which deployed index to search.
    ef:
        HNSW beam width; ``None`` uses the index configuration.
    spill:
        Segment-routing knob.  ``None`` or :data:`SPILL_ALL` fans out to
        every shard group (bit-identical to the pre-router broker);
        a positive int routes each query to its top-``spill`` segments
        and fans out only to the shard groups hosting them.
    deadline_s:
        Per-request deadline override.  :data:`INHERIT` (default) uses the
        broker's ``request_timeout_s``; ``None`` disables the deadline;
        a float sets one for this request.
    hedging:
        Per-request hedging override.  :data:`INHERIT` uses the broker's
        ``hedge_after_s``; ``False`` disables hedging; a float or
        ``"auto"`` overrides the delay for this request.
    routing_hints:
        Optional per-row segment ids (one tuple per query) that bypass
        the router's segment scoring; requires ``spill`` to be a
        positive int (hints on an unrouted request are rejected).
    """

    queries: np.ndarray
    top_k: int
    index_name: str = "default"
    ef: int | None = None
    spill: int | str | None = None
    deadline_s: float | str | None = INHERIT
    hedging: bool | float | str | None = INHERIT
    routing_hints: tuple[tuple[int, ...], ...] | None = None

    def __post_init__(self) -> None:
        queries = as_matrix(self.queries, name="queries")
        object.__setattr__(self, "queries", queries)
        if self.top_k <= 0:
            raise ValueError(f"top_k must be positive, got {self.top_k}")
        if isinstance(self.spill, str) and self.spill != SPILL_ALL:
            raise ValueError(
                f"spill must be None, {SPILL_ALL!r} or a positive int, "
                f"got {self.spill!r}"
            )
        if isinstance(self.spill, int) and self.spill < 1:
            raise ValueError(f"spill must be >= 1, got {self.spill}")
        if isinstance(self.deadline_s, str) and self.deadline_s != INHERIT:
            raise ValueError(
                f"deadline_s must be {INHERIT!r}, None or a float, "
                f"got {self.deadline_s!r}"
            )
        if isinstance(self.hedging, str) and self.hedging not in (
            INHERIT,
            "auto",
        ):
            raise ValueError(
                f"hedging must be {INHERIT!r}, False, 'auto' or a float "
                f"delay, got {self.hedging!r}"
            )
        if self.routing_hints is not None:
            if not self.routed:
                raise ValueError(
                    "routing_hints requires routed execution: set spill "
                    f"to a positive int, got spill={self.spill!r}"
                )
            hints = tuple(
                tuple(int(segment) for segment in row)
                for row in self.routing_hints
            )
            if len(hints) != queries.shape[0]:
                raise ValueError(
                    f"routing_hints has {len(hints)} rows for "
                    f"{queries.shape[0]} queries"
                )
            object.__setattr__(self, "routing_hints", hints)

    @property
    def routed(self) -> bool:
        """Whether this request asks for segment-aware (pruned) fan-out."""
        return self.spill is not None and self.spill != SPILL_ALL

    @property
    def overrides_policy(self) -> bool:
        """Whether any broker-wide policy is overridden per-request."""
        return self.deadline_s != INHERIT or self.hedging != INHERIT


@dataclass(frozen=True)
class SearchResponse:
    """Results of one executed :class:`SearchRequest`.

    ``ids``/``dists`` are ``(B, top_k)`` with ``-1`` / ``inf`` padding,
    exactly as the legacy tuple API returned them.  The metadata arrays
    describe the fan-out: ``shards_routed[row]`` is how many shard groups
    the router selected for that row (== ``num_shards`` when unrouted) and
    ``shards_answered[row]`` how many of those actually contributed, so
    ``shards_answered < shards_routed`` marks a degraded row.
    """

    ids: np.ndarray
    dists: np.ndarray
    shards_answered: np.ndarray
    shards_routed: np.ndarray
    num_shards: int
    replicas_used: tuple[int, ...] | None = None
    timings: dict[str, float] = field(default_factory=dict)
    #: Aggregated search-cost counters for this batch (hops, distance
    #: comps, ...; see :mod:`repro.obs.cost`), when the broker collected
    #: them.  Cache hits carry no cost (no search ran).
    cost: dict[str, int] | None = None
    #: The request's exported trace (``Trace.to_dict`` form), when it
    #: was sampled or force-kept by the slow-query log.
    trace: dict | None = None

    @property
    def degraded_rows(self) -> int:
        """Rows answered by fewer shard groups than were routed."""
        return int(np.sum(self.shards_answered < self.shards_routed))

    @property
    def fully_answered(self) -> bool:
        """Whether every row got an answer from every routed group."""
        return self.degraded_rows == 0

    def info(self) -> dict[str, Any]:
        """The legacy ``with_info=True`` metadata dict."""
        info: dict[str, Any] = {
            "shards_answered": self.shards_answered,
            "num_shards": self.num_shards,
        }
        if self.cost is not None:
            info["cost"] = self.cost
        return info
