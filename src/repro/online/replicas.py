"""Replica groups: N interchangeable searchers serving one shard.

The broker used to hold exactly one transport per shard; this module
generalizes that to a :class:`ReplicaGroup` per shard with a per-replica
health/load ledger:

- ``in_flight``    -- requests currently outstanding on the replica,
- ``ewma_latency`` -- exponentially weighted moving average of observed
  RPC latency (the same signal the ``shard_rpc`` stage records),
- ``consecutive_failures`` -- transport failures since the last success,
- ``draining``     -- administratively removed from the pick rotation
  (rolling restarts drain a replica, wait for in-flight to reach zero,
  restart it, then restore it).

:meth:`ReplicaGroup.pick` implements the load-aware choice: healthy
non-draining replicas first, least in-flight, EWMA latency as the
tie-break.  Failover and cross-replica hedging are built on ``pick``'s
``exclude`` parameter: callers accumulate the replicas they already
tried and ask for a different one.

With ``breaker_threshold > 0`` each replica additionally carries a
circuit breaker over ``consecutive_failures``: once the streak reaches
the threshold the breaker *opens* and ``pick`` skips the replica for
``breaker_cooldown_s`` (no request even attempts it, so a crashed or
shedding replica stops eating one failed RPC per query).  After the
cooldown the breaker is *half-open*: exactly one probe request is let
through -- success closes the breaker, failure re-opens it for another
cooldown.  The zero-drop guarantee survives: when every replica of a
group is open, requests flow anyway (answering on a suspect replica
beats answering nobody).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from statistics import median

from repro.net.transport import SearcherTransport, as_transport
from repro.obs.metrics import get_registry

#: Smoothing factor for the per-replica latency EWMA.
EWMA_ALPHA = 0.2

_IN_FLIGHT = get_registry().gauge(
    "lanns_replica_in_flight",
    "Requests currently outstanding on a replica.",
)
_EWMA_MS = get_registry().gauge(
    "lanns_replica_ewma_ms",
    "EWMA of observed RPC latency per replica, in milliseconds.",
)
_BREAKER_STATE = get_registry().gauge(
    "lanns_replica_breaker_state",
    "Per-replica circuit breaker state (0=closed, 1=open, 2=half-open).",
)
_BREAKER_TRIPS = get_registry().counter(
    "lanns_replica_breaker_trips_total",
    "Circuit-breaker openings (closed/half-open -> open) per replica.",
)

#: ``_BREAKER_STATE`` gauge values, index-aligned with the state names.
BREAKER_STATES = ("closed", "open", "half-open")


class ReplicaState:
    """Ledger entry for one replica (mutated only under the group lock)."""

    __slots__ = (
        "transport",
        "replica_id",
        "in_flight",
        "ewma_latency_s",
        "picks",
        "failures",
        "consecutive_failures",
        "draining",
        "breaker_open_until",
        "breaker_probing",
        "breaker_trips",
    )

    def __init__(self, transport: SearcherTransport, replica_id: int) -> None:
        self.transport = transport
        self.replica_id = replica_id
        self.in_flight = 0
        self.ewma_latency_s: float | None = None
        self.picks = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.draining = False
        #: Circuit breaker: the instant (``time.monotonic``) the open
        #: state expires into half-open, whether the half-open probe is
        #: currently outstanding, and lifetime openings.
        self.breaker_open_until = 0.0
        self.breaker_probing = False
        self.breaker_trips = 0

    def snapshot(self) -> dict:
        return {
            "replica_id": self.replica_id,
            "in_flight": self.in_flight,
            "ewma_latency_s": self.ewma_latency_s,
            "picks": self.picks,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "draining": self.draining,
            "breaker_trips": self.breaker_trips,
        }


class ReplicaGroup:
    """The replicas serving one shard, with load-aware selection.

    ``breaker_threshold`` consecutive transport failures trip a
    per-replica circuit breaker for ``breaker_cooldown_s`` (``0``
    disables breakers entirely -- the pre-breaker behaviour, where a
    failing replica is merely deprioritized).
    """

    def __init__(
        self,
        shard_id: int,
        searchers: Sequence,
        *,
        breaker_threshold: int = 0,
        breaker_cooldown_s: float = 1.0,
    ) -> None:
        if not searchers:
            raise ValueError(f"shard {shard_id} has an empty replica group")
        if breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {breaker_threshold}"
            )
        if breaker_cooldown_s <= 0:
            raise ValueError(
                f"breaker_cooldown_s must be > 0, got {breaker_cooldown_s}"
            )
        self.shard_id = int(shard_id)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self.replicas = [
            ReplicaState(as_transport(searcher), replica_id)
            for replica_id, searcher in enumerate(searchers)
        ]
        for replica in self.replicas:
            if replica.transport.shard_id != self.shard_id:
                raise ValueError(
                    "searchers must be passed in shard order: replica "
                    f"{replica.replica_id} of group {self.shard_id} serves "
                    f"shard {replica.transport.shard_id}"
                )
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self.replicas)

    @property
    def transports(self) -> list[SearcherTransport]:
        with self._lock:
            return [replica.transport for replica in self.replicas]

    # -- circuit breaker ---------------------------------------------------------
    def _breaker_state_locked(self, replica: ReplicaState, now: float) -> int:
        """0 = closed, 1 = open, 2 = half-open (caller holds the lock)."""
        if (
            not self.breaker_threshold
            or replica.consecutive_failures < self.breaker_threshold
        ):
            return 0
        return 1 if now < replica.breaker_open_until else 2

    def _breaker_blocked_locked(
        self, replica: ReplicaState, now: float
    ) -> bool:
        """Whether the breaker keeps this replica out of the rotation.

        Open blocks outright; half-open blocks while its single probe
        is outstanding (one request at a time decides recovery, not a
        thundering herd of optimists).
        """
        state = self._breaker_state_locked(replica, now)
        if state == 1:
            return True
        return state == 2 and replica.breaker_probing

    def _publish_breaker_locked(
        self, replica: ReplicaState, now: float
    ) -> None:
        _BREAKER_STATE.set(
            self._breaker_state_locked(replica, now),
            shard=self.shard_id,
            replica=replica.replica_id,
        )

    # -- selection ---------------------------------------------------------------
    def pick(
        self, exclude: Iterable[int] = ()
    ) -> ReplicaState | None:
        """Choose the least-loaded replica not in ``exclude``.

        Draining replicas are skipped while an alternative exists (that
        is the zero-drop guarantee of rolling restarts), and so are
        replicas whose circuit breaker is open (or half-open with the
        probe already outstanding); among the rest, replicas with
        consecutive failures are deprioritized, then least in-flight
        wins with EWMA latency as tie-break.  A replica with no latency
        sample yet (fresh, or just restored from a rolling restart)
        ranks at the pool's median EWMA: neither preferred over
        measured siblings (an implicit ``0.0`` would send every tie to
        the coldest replica) nor starved behind them (``+inf`` would
        keep it unmeasured forever).  Picking a half-open replica marks
        its probe as outstanding.  Returns ``None`` when every replica
        is excluded.
        """
        excluded = set(exclude)
        now = time.monotonic()
        with self._lock:
            candidates = [
                replica
                for replica in self.replicas
                if replica.replica_id not in excluded
            ]
            if not candidates:
                return None
            live = [r for r in candidates if not r.draining]
            ready = [
                r for r in live if not self._breaker_blocked_locked(r, now)
            ]
            pool = ready or live or candidates
            known = [
                r.ewma_latency_s
                for r in pool
                if r.ewma_latency_s is not None
            ]
            neutral = median(known) if known else 0.0
            chosen = min(
                pool,
                key=lambda r: (
                    r.consecutive_failures > 0,
                    r.in_flight,
                    r.ewma_latency_s
                    if r.ewma_latency_s is not None
                    else neutral,
                    r.replica_id,
                ),
            )
            chosen.picks += 1
            if self._breaker_state_locked(chosen, now) == 2:
                chosen.breaker_probing = True
            return chosen

    # -- accounting --------------------------------------------------------------
    def begin(self, replica: ReplicaState) -> None:
        """Record that a request was issued to ``replica``."""
        with self._lock:
            replica.in_flight += 1
            _IN_FLIGHT.set(
                replica.in_flight,
                shard=self.shard_id,
                replica=replica.replica_id,
            )

    def finish(
        self,
        replica: ReplicaState,
        latency_s: float | None = None,
        *,
        outcome: str = "ok",
    ) -> None:
        """Record completion.  ``outcome`` is ``ok``/``error``/``cancelled``;
        cancelled calls (hedge losers) only release the in-flight slot
        (and free a half-open probe slot, so an abandoned probe does not
        wedge the breaker)."""
        now = time.monotonic()
        with self._lock:
            replica.in_flight = max(0, replica.in_flight - 1)
            _IN_FLIGHT.set(
                replica.in_flight,
                shard=self.shard_id,
                replica=replica.replica_id,
            )
            if outcome == "cancelled":
                replica.breaker_probing = False
                return
            if outcome == "error":
                replica.failures += 1
                replica.consecutive_failures += 1
                replica.breaker_probing = False
                if (
                    self.breaker_threshold
                    and replica.consecutive_failures
                    >= self.breaker_threshold
                ):
                    # Trip (or re-trip after a failed probe).  Errors
                    # landing while already open -- stragglers issued
                    # before the trip -- extend the cooldown without
                    # counting another trip.
                    was_open = now < replica.breaker_open_until
                    replica.breaker_open_until = (
                        now + self.breaker_cooldown_s
                    )
                    if not was_open:
                        replica.breaker_trips += 1
                        _BREAKER_TRIPS.inc(
                            shard=self.shard_id,
                            replica=replica.replica_id,
                        )
                self._publish_breaker_locked(replica, now)
                return
            replica.consecutive_failures = 0
            replica.breaker_probing = False
            replica.breaker_open_until = 0.0
            self._publish_breaker_locked(replica, now)
            if latency_s is not None:
                if replica.ewma_latency_s is None:
                    replica.ewma_latency_s = latency_s
                else:
                    replica.ewma_latency_s = (
                        EWMA_ALPHA * latency_s
                        + (1.0 - EWMA_ALPHA) * replica.ewma_latency_s
                    )
                _EWMA_MS.set(
                    replica.ewma_latency_s * 1e3,
                    shard=self.shard_id,
                    replica=replica.replica_id,
                )

    # -- administration ----------------------------------------------------------
    def drain(self, replica_id: int) -> None:
        """Remove a replica from the pick rotation (rolling restart)."""
        with self._lock:
            self.replicas[replica_id].draining = True

    def restore(self, replica_id: int) -> None:
        """Return a drained replica to the rotation with a clean slate."""
        now = time.monotonic()
        with self._lock:
            replica = self.replicas[replica_id]
            replica.draining = False
            replica.consecutive_failures = 0
            replica.ewma_latency_s = None
            replica.breaker_open_until = 0.0
            replica.breaker_probing = False
            self._publish_breaker_locked(replica, now)

    def in_flight(self, replica_id: int) -> int:
        with self._lock:
            return self.replicas[replica_id].in_flight

    def stats(self) -> dict:
        now = time.monotonic()
        with self._lock:
            snapshots = []
            for replica in self.replicas:
                snapshot = replica.snapshot()
                snapshot["breaker_state"] = BREAKER_STATES[
                    self._breaker_state_locked(replica, now)
                ]
                snapshots.append(snapshot)
            return {
                "shard_id": self.shard_id,
                "breaker_threshold": self.breaker_threshold,
                "replicas": snapshots,
            }
