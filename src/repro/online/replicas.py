"""Replica groups: N interchangeable searchers serving one shard.

The broker used to hold exactly one transport per shard; this module
generalizes that to a :class:`ReplicaGroup` per shard with a per-replica
health/load ledger:

- ``in_flight``    -- requests currently outstanding on the replica,
- ``ewma_latency`` -- exponentially weighted moving average of observed
  RPC latency (the same signal the ``shard_rpc`` stage records),
- ``consecutive_failures`` -- transport failures since the last success,
- ``draining``     -- administratively removed from the pick rotation
  (rolling restarts drain a replica, wait for in-flight to reach zero,
  restart it, then restore it).

:meth:`ReplicaGroup.pick` implements the load-aware choice: healthy
non-draining replicas first, least in-flight, EWMA latency as the
tie-break.  Failover and cross-replica hedging are built on ``pick``'s
``exclude`` parameter: callers accumulate the replicas they already
tried and ask for a different one.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from statistics import median

from repro.net.transport import SearcherTransport, as_transport
from repro.obs.metrics import get_registry

#: Smoothing factor for the per-replica latency EWMA.
EWMA_ALPHA = 0.2

_IN_FLIGHT = get_registry().gauge(
    "lanns_replica_in_flight",
    "Requests currently outstanding on a replica.",
)
_EWMA_MS = get_registry().gauge(
    "lanns_replica_ewma_ms",
    "EWMA of observed RPC latency per replica, in milliseconds.",
)


class ReplicaState:
    """Ledger entry for one replica (mutated only under the group lock)."""

    __slots__ = (
        "transport",
        "replica_id",
        "in_flight",
        "ewma_latency_s",
        "picks",
        "failures",
        "consecutive_failures",
        "draining",
    )

    def __init__(self, transport: SearcherTransport, replica_id: int) -> None:
        self.transport = transport
        self.replica_id = replica_id
        self.in_flight = 0
        self.ewma_latency_s: float | None = None
        self.picks = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.draining = False

    def snapshot(self) -> dict:
        return {
            "replica_id": self.replica_id,
            "in_flight": self.in_flight,
            "ewma_latency_s": self.ewma_latency_s,
            "picks": self.picks,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "draining": self.draining,
        }


class ReplicaGroup:
    """The replicas serving one shard, with load-aware selection."""

    def __init__(self, shard_id: int, searchers: Sequence) -> None:
        if not searchers:
            raise ValueError(f"shard {shard_id} has an empty replica group")
        self.shard_id = int(shard_id)
        self.replicas = [
            ReplicaState(as_transport(searcher), replica_id)
            for replica_id, searcher in enumerate(searchers)
        ]
        for replica in self.replicas:
            if replica.transport.shard_id != self.shard_id:
                raise ValueError(
                    "searchers must be passed in shard order: replica "
                    f"{replica.replica_id} of group {self.shard_id} serves "
                    f"shard {replica.transport.shard_id}"
                )
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self.replicas)

    @property
    def transports(self) -> list[SearcherTransport]:
        with self._lock:
            return [replica.transport for replica in self.replicas]

    # -- selection ---------------------------------------------------------------
    def pick(
        self, exclude: Iterable[int] = ()
    ) -> ReplicaState | None:
        """Choose the least-loaded replica not in ``exclude``.

        Draining replicas are skipped while an alternative exists (that
        is the zero-drop guarantee of rolling restarts); among the rest,
        replicas with consecutive failures are deprioritized, then least
        in-flight wins with EWMA latency as tie-break.  A replica with
        no latency sample yet (fresh, or just restored from a rolling
        restart) ranks at the pool's median EWMA: neither preferred over
        measured siblings (an implicit ``0.0`` would send every tie to
        the coldest replica) nor starved behind them (``+inf`` would
        keep it unmeasured forever).  Returns ``None`` when every
        replica is excluded.
        """
        excluded = set(exclude)
        with self._lock:
            candidates = [
                replica
                for replica in self.replicas
                if replica.replica_id not in excluded
            ]
            if not candidates:
                return None
            live = [r for r in candidates if not r.draining]
            pool = live or candidates
            known = [
                r.ewma_latency_s
                for r in pool
                if r.ewma_latency_s is not None
            ]
            neutral = median(known) if known else 0.0
            chosen = min(
                pool,
                key=lambda r: (
                    r.consecutive_failures > 0,
                    r.in_flight,
                    r.ewma_latency_s
                    if r.ewma_latency_s is not None
                    else neutral,
                    r.replica_id,
                ),
            )
            chosen.picks += 1
            return chosen

    # -- accounting --------------------------------------------------------------
    def begin(self, replica: ReplicaState) -> None:
        """Record that a request was issued to ``replica``."""
        with self._lock:
            replica.in_flight += 1
            _IN_FLIGHT.set(
                replica.in_flight,
                shard=self.shard_id,
                replica=replica.replica_id,
            )

    def finish(
        self,
        replica: ReplicaState,
        latency_s: float | None = None,
        *,
        outcome: str = "ok",
    ) -> None:
        """Record completion.  ``outcome`` is ``ok``/``error``/``cancelled``;
        cancelled calls (hedge losers) only release the in-flight slot."""
        with self._lock:
            replica.in_flight = max(0, replica.in_flight - 1)
            _IN_FLIGHT.set(
                replica.in_flight,
                shard=self.shard_id,
                replica=replica.replica_id,
            )
            if outcome == "cancelled":
                return
            if outcome == "error":
                replica.failures += 1
                replica.consecutive_failures += 1
                return
            replica.consecutive_failures = 0
            if latency_s is not None:
                if replica.ewma_latency_s is None:
                    replica.ewma_latency_s = latency_s
                else:
                    replica.ewma_latency_s = (
                        EWMA_ALPHA * latency_s
                        + (1.0 - EWMA_ALPHA) * replica.ewma_latency_s
                    )
                _EWMA_MS.set(
                    replica.ewma_latency_s * 1e3,
                    shard=self.shard_id,
                    replica=replica.replica_id,
                )

    # -- administration ----------------------------------------------------------
    def drain(self, replica_id: int) -> None:
        """Remove a replica from the pick rotation (rolling restart)."""
        with self._lock:
            self.replicas[replica_id].draining = True

    def restore(self, replica_id: int) -> None:
        """Return a drained replica to the rotation with a clean slate."""
        with self._lock:
            replica = self.replicas[replica_id]
            replica.draining = False
            replica.consecutive_failures = 0
            replica.ewma_latency_s = None

    def in_flight(self, replica_id: int) -> int:
        with self._lock:
            return self.replicas[replica_id].in_flight

    def stats(self) -> dict:
        with self._lock:
            return {
                "shard_id": self.shard_id,
                "replicas": [replica.snapshot() for replica in self.replicas],
            }
