"""Broker-level LRU query result cache.

Real ANN query streams are highly skewed (TCAM-style LSH serving exploits
exactly this): a small set of heavy-hitter queries repeats often enough
that caching their *exact* merged results buys a large effective QPS at
negligible memory cost.  The cache sits in front of the broker's
admission layer: hits skip the whole fan-out, misses are filled after the
final merge.

Keys are exact-match tuples ``(index_name, query_bytes, top_k, ef,
num_shards)`` over the *canonicalised* query (C-contiguous float32), so a
hit is guaranteed to be bit-identical to the search it replaces.  Any
parameter that changes the answer -- the index, the query vector, the
requested ``top_k``, the beam width, or the shard layout -- changes the
key.

Entries are invalidated explicitly per index on ``deploy`` / ``undeploy``
(the only events that change an answer without changing the key).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import get_registry

_EVENTS = get_registry().counter(
    "lanns_cache_events_total",
    "Result-cache events, labelled by event "
    "(hit/miss/eviction/invalidation).",
)

#: A cache key: (index_name, query bytes, top_k, ef, num_shards, epoch).
CacheKey = tuple[str, bytes, int, int, int, int]


def result_cache_key(
    index_name: str,
    query_row: np.ndarray,
    top_k: int,
    ef: int,
    num_shards: int,
    epoch: int = 0,
    *,
    metric: str = "euclidean",
    quantize_decimals: int | None = None,
) -> CacheKey:
    """Build the exact-match key for one canonicalised query row.

    ``query_row`` must already be the C-contiguous float32 row the
    serving path searches with (``as_matrix`` output), so equal bytes
    imply an identical search.

    ``epoch`` is the broker's deployment generation: a client thread
    descheduled between computing a result and ``put`` can complete its
    insert *after* an undeploy/re-deploy invalidated the name, and
    without the epoch that stale row would be served by the new
    deployment.  Epoch-tagged keys make such late inserts unreachable
    (they age out of the LRU instead).

    **Cosine-aware keying**: cosine distance is scale-invariant (the
    scorer normalises both sides), so when ``metric="cosine"`` the key
    is computed over the *normalised* query -- scaled copies of one
    heavy-hitter query (``q`` and ``2q``) share a cache entry instead of
    missing on raw bytes.  ``quantize_decimals`` additionally rounds the
    normalised components, coalescing *near*-duplicate queries onto one
    key.  Both weaken the bit-identity guarantee from "identical to the
    search this exact request would run" to "identical to the search of
    the first query mapped to this key" -- for normalisation the two
    differ by at most float32 rounding of mathematically equal scores;
    for quantization the tolerance is chosen by the operator.
    """
    key_bytes = _canonical_query_bytes(
        query_row, metric=metric, quantize_decimals=quantize_decimals
    )
    return (
        str(index_name),
        key_bytes,
        int(top_k),
        int(ef),
        int(num_shards),
        int(epoch),
    )


def _canonical_query_bytes(
    query_row: np.ndarray,
    *,
    metric: str,
    quantize_decimals: int | None,
) -> bytes:
    if metric != "cosine":
        return query_row.tobytes()
    # Normalise in float64 so the key bucket does not depend on float32
    # accumulation order, then round-trip through float32 (the serving
    # dtype) for a stable byte representation.
    row = np.asarray(query_row, dtype=np.float64)
    norm = float(np.linalg.norm(row))
    if norm > 0.0:
        row = row / norm
    if quantize_decimals is not None:
        # + 0.0 collapses the -0.0 np.round produces for small negative
        # components onto +0.0: near-duplicates straddling zero on some
        # coordinate must land on one key, and the two zeros have
        # different byte patterns.
        row = np.round(row, int(quantize_decimals)) + 0.0
    return np.ascontiguousarray(row, dtype=np.float32).tobytes()


@dataclass
class CacheStats:
    """Monotonic hit/miss/eviction counters (snapshot via ``as_dict``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": (self.hits / total) if total else 0.0,
        }


class QueryResultCache:
    """Thread-safe LRU cache of merged ``(ids, dists)`` result rows.

    Parameters
    ----------
    capacity:
        Maximum number of cached result rows.  ``0`` disables the cache
        entirely: ``get`` always misses (without counting stats) and
        ``put`` is a no-op, so a disabled cache is free on the hot path.

    Notes
    -----
    Values are stored as *copies* of the padded ``(top_k,)`` id/distance
    rows and copied again on ``get``, so neither the broker's output
    buffers nor caller-side mutation can corrupt cached entries.
    """

    def __init__(self, capacity: int) -> None:
        capacity = int(capacity)
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[
            CacheKey, tuple[np.ndarray, np.ndarray]
        ] = OrderedDict()

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self.capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> tuple[np.ndarray, np.ndarray] | None:
        """Look up one result row; refreshes LRU recency on hit."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                _EVENTS.inc(event="miss")
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            _EVENTS.inc(event="hit")
            ids, dists = entry
            return ids.copy(), dists.copy()

    def put(self, key: CacheKey, ids: np.ndarray, dists: np.ndarray) -> None:
        """Insert (or refresh) one result row, evicting the LRU tail."""
        if not self.enabled:
            return
        ids = np.array(ids, dtype=np.int64, copy=True)
        dists = np.array(dists, dtype=np.float64, copy=True)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (ids, dists)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                _EVENTS.inc(event="eviction")

    def invalidate(self, index_name: str) -> int:
        """Drop every entry cached for ``index_name``; returns the count.

        Called on ``deploy`` / ``undeploy``: re-deploying a (possibly
        different) index under a previously used name must never serve
        the old index's results.
        """
        index_name = str(index_name)
        with self._lock:
            stale = [
                key for key in self._entries if key[0] == index_name
            ]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            if stale:
                _EVENTS.inc(len(stale), event="invalidation")
            return len(stale)

    def clear(self) -> None:
        """Drop all entries (stats are kept)."""
        with self._lock:
            if self._entries:
                _EVENTS.inc(len(self._entries), event="invalidation")
            self.stats.invalidations += len(self._entries)
            self._entries.clear()

    def keys(self) -> list[CacheKey]:
        """Snapshot of cached keys in LRU order (oldest first)."""
        with self._lock:
            return list(self._entries)
