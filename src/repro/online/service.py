"""End-to-end online service: deploy exported indices and serve queries.

Reproduces the Figure 9 topology: the offline Spark job exports the
serialized index to HDFS; each searcher node deserializes *its shard*
"using the persisted metadata with minimal additional configuration"; a
broker fronts the fleet.  Deploying a second index under another name
onto the same fleet models the paper's online A/B test construct.

The fleet can be **in-process** (the default: the service creates one
:class:`SearcherNode` per shard and loads shards itself) or **remote**
(pass ``searchers=["host:port", ...]``: each address is a running
``repro.cli serve-searcher`` process, ``deploy`` becomes one RPC per
shard, and queries travel over the :mod:`repro.net` wire protocol).
Everything above the transport -- micro-batching, the result cache,
perShardTopK, the merge -- is identical in both modes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.config import LannsConfig
from repro.errors import (
    ConnectionLostError,
    MetadataMismatchError,
    RemoteCallError,
    TransportError,
)
from repro.eval.timing import measure_batch_qps, measure_qps
from repro.net.transport import (
    AsyncRemoteSearcherTransport,
    RemoteSearcherTransport,
)
from repro.online.broker import Broker
from repro.online.cache import QueryResultCache
from repro.online.searcher import SearcherNode
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import load_manifest, load_segmenter, load_shard


class OnlineService:
    """A searcher fleet plus broker, loaded from exported indices.

    Create empty, then :meth:`deploy` one or more indices.  All deployed
    indices must agree on ``num_shards`` (they share the fleet).

    Parameters
    ----------
    parallel_fanout:
        Give each broker a fan-out thread pool (see
        :class:`~repro.online.broker.Broker`).
    async_fanout:
        Give each broker an asyncio fan-out loop instead: all remote
        shard RPCs for a batch are multiplexed on one event-loop
        thread (O(1) threads however many shards are in flight), and
        remote fleets get async-native transports
        (:class:`~repro.net.transport.AsyncRemoteSearcherTransport`).
        Supersedes ``parallel_fanout``.
    hedge_after_s:
        Hedged-request delay passed to every broker: a delay in
        seconds, or ``"auto"`` to track the live ``shard_rpc`` latency
        window (requires ``async_fanout``; see
        :class:`~repro.online.broker.Broker`).
    fanout_workers:
        Fan-out pool size per broker, independent of the shard count.
    max_batch, max_wait_ms:
        Micro-batching knobs passed to each broker; ``max_batch <= 1``
        (default) disables opportunistic micro-batching.
    cache_size:
        Capacity of the service-wide query result cache, shared by all
        deployed indices (keys carry the index name).  ``0`` disables
        caching.  Entries for an index are invalidated when it is
        deployed or undeployed, so an A/B swap under a reused name can
        never serve the old index's results.
    searchers:
        ``None`` (default): an in-process fleet, created on first
        deploy.  Otherwise the remote fleet's addresses -- a list of
        ``"host:port"`` strings or one comma-separated string, in shard
        order; each must be a running ``serve-searcher`` process.
        Remote fleets are usually paired with ``parallel_fanout=True``
        (shard RPCs overlap instead of serializing network waits).
    partial_policy, request_timeout_s:
        Fan-out failure semantics, passed to every broker (see
        :class:`~repro.online.broker.Broker`).
    cache_quantize_decimals:
        Cosine cache-key quantization, passed to every broker.
    rpc_timeout_s, rpc_retries, rpc_pool_size:
        Per-searcher RPC client knobs (remote fleets only).
    """

    def __init__(
        self,
        *,
        parallel_fanout: bool = False,
        async_fanout: bool = False,
        hedge_after_s: float | str | None = None,
        fanout_workers: int | None = None,
        max_batch: int = 1,
        max_wait_ms: float = 2.0,
        cache_size: int = 0,
        searchers: str | Sequence[str] | None = None,
        partial_policy: str = "fail",
        request_timeout_s: float | None = None,
        cache_quantize_decimals: int | None = None,
        rpc_timeout_s: float = 30.0,
        rpc_retries: int = 2,
        rpc_pool_size: int = 2,
    ) -> None:
        self.brokers: dict[str, Broker] = {}
        self.configs: dict[str, LannsConfig] = {}
        self.parallel_fanout = bool(parallel_fanout)
        self.async_fanout = bool(async_fanout)
        self.hedge_after_s = hedge_after_s
        self.fanout_workers = fanout_workers
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.partial_policy = partial_policy
        self.request_timeout_s = request_timeout_s
        self.cache_quantize_decimals = cache_quantize_decimals
        self.cache = QueryResultCache(cache_size)
        self._deploy_epoch = 0
        if searchers is None:
            self.remote = False
            self.searchers: list = []
        else:
            if isinstance(searchers, str):
                searchers = [
                    part for part in searchers.split(",") if part.strip()
                ]
            if not searchers:
                raise ValueError("remote fleet needs at least one address")
            self.remote = True
            # Async fan-out gets async-native transports (the sync
            # control plane -- deploy/verify/stats -- rides along).
            transport_type = (
                AsyncRemoteSearcherTransport
                if self.async_fanout
                else RemoteSearcherTransport
            )
            self.searchers = [
                transport_type(
                    address,
                    shard_id,
                    timeout_s=rpc_timeout_s,
                    retries=rpc_retries,
                    pool_size=rpc_pool_size,
                )
                for shard_id, address in enumerate(searchers)
            ]

    @property
    def deployed_indices(self) -> list[str]:
        """Names of deployed indices."""
        return sorted(self.brokers)

    def deploy(
        self,
        fs: LocalHdfs,
        index_path: str,
        *,
        index_name: str = "default",
        expected_config: LannsConfig | None = None,
    ) -> Broker:
        """Load an exported index onto the fleet under ``index_name``.

        Parameters
        ----------
        expected_config:
            Optional guard: raise
            :class:`~repro.errors.MetadataMismatchError` when the
            persisted configuration differs (offline/online drift).

        Returns
        -------
        The broker serving ``index_name``.
        """
        if index_name in self.brokers:
            raise ValueError(f"index {index_name!r} is already deployed")
        manifest = load_manifest(fs, index_path)
        config = manifest.lanns_config
        if expected_config is not None and expected_config != config:
            raise MetadataMismatchError(
                "deploy-time configuration mismatch:\n  persisted: "
                f"{config}\n  expected:  {expected_config}"
            )
        if self.searchers and len(self.searchers) != config.num_shards:
            raise ValueError(
                f"fleet has {len(self.searchers)} searchers but index "
                f"{index_name!r} needs {config.num_shards}"
            )
        if self.remote:
            self._deploy_remote(fs, index_path, index_name)
        else:
            if not self.searchers:
                self.searchers = [
                    SearcherNode(shard_id)
                    for shard_id in range(config.num_shards)
                ]
            segmenter = load_segmenter(fs, index_path, manifest)
            for shard_id, searcher in enumerate(self.searchers):
                shard = load_shard(
                    fs,
                    index_path,
                    shard_id,
                    manifest=manifest,
                    segmenter=segmenter,
                )
                searcher.host(index_name, shard)
        # A previous deployment under this name may have left cached
        # results behind (the cache outlives brokers); drop them before
        # the new index starts answering.  The bumped epoch additionally
        # fences off late inserts from the old deployment's in-flight
        # requests, which can land *after* this invalidation.
        self.cache.invalidate(index_name)
        self._deploy_epoch += 1
        broker = Broker(
            self.searchers,
            config,
            parallel_fanout=self.parallel_fanout,
            async_fanout=self.async_fanout,
            hedge_after_s=self.hedge_after_s,
            fanout_workers=self.fanout_workers,
            max_batch=self.max_batch,
            max_wait_ms=self.max_wait_ms,
            cache=self.cache,
            cache_epoch=self._deploy_epoch,
            cache_quantize_decimals=self.cache_quantize_decimals,
            partial_policy=self.partial_policy,
            request_timeout_s=self.request_timeout_s,
        )
        self.brokers[index_name] = broker
        self.configs[index_name] = config
        return broker

    def _deploy_remote(
        self, fs: LocalHdfs, index_path: str, index_name: str
    ) -> None:
        """One DEPLOY RPC per shard, with rollback on partial failure.

        Each searcher process loads its own shard from ``fs``'s root
        (shared over loopback; a real cluster would point every server
        at the same HDFS).  Under the ``fail`` policy any shard failure
        -- connection refused, checksum mismatch, wrong shard id --
        aborts the deploy and best-effort undeploys the shards already
        hosted, so a failed deploy leaves no half-hosted index behind.
        Under ``degrade``, *connectivity* failures are tolerated (the
        index deploys onto whoever is up, and searches return partial
        results annotated with ``shards_answered``); only a fully
        unreachable fleet, or a searcher that answered with an error,
        still aborts.
        """
        root = str(fs.root)
        # `rollback` is "may be hosting": a searcher enters it the moment
        # its DEPLOY RPC is attempted, because the server can host the
        # shard even when the response is lost (timeout mid-load,
        # connection dropped after host()).  Only a failure to *connect*
        # proves the request never arrived.  `hosted` counts confirmed
        # deploys -- what a degraded deploy needs at least one of.
        rollback: list[RemoteSearcherTransport] = []
        hosted = 0
        unreachable: Exception | None = None
        try:
            for transport in self.searchers:
                rollback.append(transport)
                try:
                    transport.verify()
                    transport.deploy(index_name, index_path, root=root)
                except TransportError as exc:
                    degradeable = self.partial_policy == "degrade" and not (
                        isinstance(exc, RemoteCallError)
                    )
                    if not degradeable:
                        raise
                    unreachable = exc
                    if isinstance(exc, ConnectionLostError):
                        rollback.pop()  # provably never reached the server
                else:
                    hosted += 1
            if hosted == 0:
                raise TransportError(
                    "no searcher in the fleet confirmed the deploy"
                ) from unreachable
        except Exception:
            for transport in rollback:
                try:
                    transport.undeploy(index_name)
                except (TransportError, OSError):
                    pass
            raise

    def undeploy(self, index_name: str) -> None:
        """Remove an index from every searcher (end of an A/B test).

        The broker is closed *before* unhosting: close() drains requests
        still pending in the admission layer, and they must drain against
        searchers that still host the index.
        """
        if index_name not in self.brokers:
            raise KeyError(f"index {index_name!r} is not deployed")
        self.brokers[index_name].close()
        if self.remote:
            # Best-effort against connectivity failures: a crashed
            # searcher cannot unhost, but the undeploy must still clear
            # the surviving fleet members and this service's tables.
            for transport in self.searchers:
                try:
                    transport.undeploy(index_name)
                except TransportError:
                    pass
        else:
            for searcher in self.searchers:
                searcher.unhost(index_name)
        self.cache.invalidate(index_name)
        del self.brokers[index_name]
        del self.configs[index_name]

    def close(self) -> None:
        """Close every broker (drains admission layers); idempotent.

        For a remote fleet, also closes the per-searcher connection
        pools (the searcher *processes* keep running -- they are owned
        by whoever launched them).
        """
        for broker in self.brokers.values():
            broker.close()
        if self.remote:
            for transport in self.searchers:
                transport.close()

    def stats(self) -> dict:
        """Service-wide serving stats: shared cache plus per-index brokers."""
        return {
            "cache": self.cache.stats.as_dict(),
            "indices": {
                name: broker.stats() for name, broker in self.brokers.items()
            },
        }

    # -- serving -----------------------------------------------------------------------
    def _broker(self, index_name: str) -> Broker:
        try:
            return self.brokers[index_name]
        except KeyError:
            raise KeyError(
                f"index {index_name!r} is not deployed "
                f"(deployed: {self.deployed_indices})"
            ) from None

    def query(
        self,
        query: np.ndarray,
        top_k: int,
        *,
        index_name: str = "default",
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve one query against a deployed index."""
        return self._broker(index_name).search(index_name, query, top_k, ef=ef)

    def query_batch(
        self,
        queries: np.ndarray,
        top_k: int,
        *,
        index_name: str = "default",
        ef: int | None = None,
        with_info: bool = False,
    ) -> tuple:
        """Serve a query batch in one broker fan-out.

        Returns ``(B, top_k)`` id/distance arrays padded with ``-1`` /
        ``inf``; per-query results are identical to :meth:`query`.
        ``with_info=True`` appends the broker's partial-result
        annotation (``shards_answered`` per row) -- see
        :meth:`Broker.search_batch`.
        """
        return self._broker(index_name).search_batch(
            index_name, queries, top_k, ef=ef, with_info=with_info
        )

    # The paper-facing name for the batch serving entry point.
    search_batch = query_batch

    def measure_qps(
        self,
        queries: np.ndarray,
        top_k: int,
        *,
        index_name: str = "default",
        ef: int | None = None,
        batch_size: int | None = None,
    ) -> dict:
        """Serve a query set and report throughput / latency stats.

        With ``batch_size=None`` every query is served individually (the
        sequential baseline); otherwise queries are served in batches of
        ``batch_size`` through :meth:`query_batch` and each batch counts
        as one request for latency purposes.  Timing comes from
        :mod:`repro.eval.timing` so both modes share one qps definition.

        Returns a dict with ``qps``, ``mean_latency_ms``,
        ``p99_latency_ms`` (the paper reports p99), ``count`` and
        ``batch_size``.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[np.newaxis, :]
        if batch_size is None:
            stats = measure_qps(
                lambda query: self.query(
                    query, top_k, index_name=index_name, ef=ef
                ),
                queries,
            )
            mean_ms, p99_ms = stats["mean_ms"], stats["p99_ms"]
        else:
            stats = measure_batch_qps(
                lambda batch: self.query_batch(
                    batch, top_k, index_name=index_name, ef=ef
                ),
                queries,
                batch_size,
            )
            mean_ms, p99_ms = stats["mean_batch_ms"], stats["p99_batch_ms"]
        return {
            "count": int(queries.shape[0]),
            "batch_size": batch_size,
            "qps": stats["qps"],
            "mean_latency_ms": mean_ms,
            "p99_latency_ms": p99_ms,
        }
