"""End-to-end online service: deploy exported indices and serve queries.

Reproduces the Figure 9 topology: the offline Spark job exports the
serialized index to HDFS; each searcher node deserializes *its shard*
"using the persisted metadata with minimal additional configuration"; a
broker fronts the fleet.  Deploying a second index under another name
onto the same fleet models the paper's online A/B test construct.

The fleet can be **in-process** (the default: the service creates one
:class:`SearcherNode` per shard and loads shards itself) or **remote**
(pass ``searchers=...``: each address is a running
``repro.cli serve-searcher`` process, ``deploy`` becomes one RPC per
searcher, and queries travel over the :mod:`repro.net` wire protocol).
Remote shard positions may be **replica groups** -- several
interchangeable processes serving the same shard
(``"a:1,a:2;b:1,b:2"``): the broker load-balances across them, fails
over on connectivity losses, hedges stragglers onto siblings, and
:meth:`rolling_restart` cycles one group through a restart with zero
dropped queries.  Everything above the transport -- micro-batching, the
result cache, the router, perShardTopK, the merge -- is identical in
all modes.
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.config import LannsConfig
from repro.errors import (
    ConnectionLostError,
    MetadataMismatchError,
    RemoteCallError,
    TransportError,
)
from repro.eval.timing import measure_batch_qps, measure_qps
from repro.net.fleet import parse_fleet_spec
from repro.net.transport import (
    AsyncRemoteSearcherTransport,
    RemoteSearcherTransport,
)
from repro.online.broker import Broker
from repro.online.cache import QueryResultCache
from repro.online.searcher import SearcherNode
from repro.online.types import SearchRequest, SearchResponse
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import load_manifest, load_segmenter, load_shard


class OnlineService:
    """A searcher fleet plus broker, loaded from exported indices.

    Create empty, then :meth:`deploy` one or more indices.  All deployed
    indices must agree on ``num_shards`` (they share the fleet).

    Parameters
    ----------
    parallel_fanout:
        Give each broker a fan-out thread pool (see
        :class:`~repro.online.broker.Broker`).  **Deprecated for remote
        fleets**: thread-per-RPC over the sync client is the PR-3 hot
        path; remote fleets should use ``async_fanout`` (the sync client
        stays for control-plane RPCs -- deploy, verify, stats).
    async_fanout:
        Give each broker an asyncio fan-out loop instead: all remote
        shard RPCs for a batch are multiplexed on one event-loop
        thread (O(1) threads however many shards are in flight), and
        remote fleets get async-native transports
        (:class:`~repro.net.transport.AsyncRemoteSearcherTransport`).
        Supersedes ``parallel_fanout``.
    hedge_after_s:
        Hedged-request delay passed to every broker: a delay in
        seconds, or ``"auto"`` to track the live ``shard_rpc`` latency
        window (requires ``async_fanout``; see
        :class:`~repro.online.broker.Broker`).
    fanout_workers:
        Fan-out pool size per broker, independent of the shard count.
    max_batch, max_wait_ms:
        Micro-batching knobs passed to each broker; ``max_batch <= 1``
        (default) disables opportunistic micro-batching.
    cache_size:
        Capacity of the service-wide query result cache, shared by all
        deployed indices (keys carry the index name).  ``0`` disables
        caching.  Entries for an index are invalidated when it is
        deployed or undeployed, so an A/B swap under a reused name can
        never serve the old index's results.
    searchers:
        ``None`` (default): an in-process fleet, created on first
        deploy.  Otherwise the remote fleet spec, in shard order --
        any shape :func:`~repro.net.fleet.parse_fleet_spec` accepts,
        including per-shard replica groups
        (``"h1:9000,h2:9000;h1:9001,h2:9001"`` or
        ``[["h1:9000", "h2:9000"], ...]``); each address must be a
        running ``serve-searcher`` process.
    partial_policy, request_timeout_s:
        Fan-out failure semantics, passed to every broker (see
        :class:`~repro.online.broker.Broker`).
    breaker_threshold, breaker_cooldown_s:
        Per-replica circuit breaker knobs, passed to every broker's
        replica groups: ``breaker_threshold`` consecutive transport
        failures open a replica's breaker for ``breaker_cooldown_s``
        seconds (``0`` disables breakers; see
        :class:`~repro.online.replicas.ReplicaGroup`).
    cache_quantize_decimals:
        Cosine cache-key quantization, passed to every broker.
    rpc_timeout_s, rpc_retries, rpc_pool_size:
        Per-searcher RPC client knobs (remote fleets only).
    collect_cost, trace_sample_rate, slow_query_log_s, trace_seed:
        Observability knobs passed to every broker: per-batch
        search-cost accounting (on by default) and sampled request
        tracing with a slow-query log (off by default); see
        :class:`~repro.online.broker.Broker` and :mod:`repro.obs`.
        Each broker registers under its index name in the metrics
        registry.
    """

    def __init__(
        self,
        *,
        parallel_fanout: bool = False,
        async_fanout: bool = False,
        hedge_after_s: float | str | None = None,
        fanout_workers: int | None = None,
        max_batch: int = 1,
        max_wait_ms: float = 2.0,
        cache_size: int = 0,
        searchers: str | Sequence | None = None,
        partial_policy: str = "fail",
        request_timeout_s: float | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 1.0,
        cache_quantize_decimals: int | None = None,
        rpc_timeout_s: float = 30.0,
        rpc_retries: int = 2,
        rpc_pool_size: int = 2,
        collect_cost: bool = True,
        trace_sample_rate: float = 0.0,
        slow_query_log_s: float | None = None,
        trace_seed: int | None = None,
    ) -> None:
        self.brokers: dict[str, Broker] = {}
        self.configs: dict[str, LannsConfig] = {}
        #: ``index_name -> (fs, index_path)`` for every live deploy
        #: (what :meth:`rolling_restart` re-hosts onto fresh replicas).
        self.deployments: dict[str, tuple[LocalHdfs, str]] = {}
        self.parallel_fanout = bool(parallel_fanout)
        self.async_fanout = bool(async_fanout)
        self.hedge_after_s = hedge_after_s
        self.fanout_workers = fanout_workers
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.partial_policy = partial_policy
        self.request_timeout_s = request_timeout_s
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self.cache_quantize_decimals = cache_quantize_decimals
        self.collect_cost = bool(collect_cost)
        self.trace_sample_rate = float(trace_sample_rate)
        self.slow_query_log_s = slow_query_log_s
        self.trace_seed = trace_seed
        self.cache = QueryResultCache(cache_size)
        self._deploy_epoch = 0
        if searchers is None:
            self.remote = False
            self.searchers: list = []
        else:
            groups = parse_fleet_spec(searchers)
            if not groups:
                raise ValueError("remote fleet needs at least one address")
            self.remote = True
            if self.parallel_fanout and not self.async_fanout:
                warnings.warn(
                    "parallel_fanout with a remote fleet runs the sync "
                    "RPC client on the search hot path, which is "
                    "deprecated; use async_fanout=True (the sync client "
                    "remains for control-plane RPCs)",
                    DeprecationWarning,
                    stacklevel=2,
                )
            # Async fan-out gets async-native transports (the sync
            # control plane -- deploy/verify/stats -- rides along).
            transport_type = (
                AsyncRemoteSearcherTransport
                if self.async_fanout
                else RemoteSearcherTransport
            )

            def connect(address: str, shard_id: int):
                return transport_type(
                    address,
                    shard_id,
                    timeout_s=rpc_timeout_s,
                    retries=rpc_retries,
                    pool_size=rpc_pool_size,
                )

            # Single-replica groups stay bare transports so the legacy
            # flat view (service.searchers[s].stats()) keeps working.
            self.searchers = [
                connect(group[0], shard_id)
                if len(group) == 1
                else [connect(address, shard_id) for address in group]
                for shard_id, group in enumerate(groups)
            ]

    def _all_transports(self) -> list:
        """Every searcher/transport of every group, group-major."""
        flat: list = []
        for entry in self.searchers:
            if isinstance(entry, list):
                flat.extend(entry)
            else:
                flat.append(entry)
        return flat

    @property
    def deployed_indices(self) -> list[str]:
        """Names of deployed indices."""
        return sorted(self.brokers)

    def deploy(
        self,
        fs: LocalHdfs,
        index_path: str,
        *,
        index_name: str = "default",
        expected_config: LannsConfig | None = None,
    ) -> Broker:
        """Load an exported index onto the fleet under ``index_name``.

        Parameters
        ----------
        expected_config:
            Optional guard: raise
            :class:`~repro.errors.MetadataMismatchError` when the
            persisted configuration differs (offline/online drift).

        Returns
        -------
        The broker serving ``index_name``.
        """
        if index_name in self.brokers:
            raise ValueError(f"index {index_name!r} is already deployed")
        manifest = load_manifest(fs, index_path)
        config = manifest.lanns_config
        if expected_config is not None and expected_config != config:
            raise MetadataMismatchError(
                "deploy-time configuration mismatch:\n  persisted: "
                f"{config}\n  expected:  {expected_config}"
            )
        if self.searchers and len(self.searchers) != config.num_shards:
            raise ValueError(
                f"fleet has {len(self.searchers)} searchers but index "
                f"{index_name!r} needs {config.num_shards}"
            )
        # The broker embeds the trained segmenter (the router maps each
        # query to its top-spill segments) -- the persisted-metadata
        # coupling the paper insists on, now reaching the serving tier.
        segmenter = load_segmenter(fs, index_path, manifest)
        if self.remote:
            self._deploy_remote(fs, index_path, index_name)
        else:
            if not self.searchers:
                self.searchers = [
                    SearcherNode(shard_id)
                    for shard_id in range(config.num_shards)
                ]
            for shard_id, searcher in enumerate(self.searchers):
                shard = load_shard(
                    fs,
                    index_path,
                    shard_id,
                    manifest=manifest,
                    segmenter=segmenter,
                )
                searcher.host(index_name, shard)
        # A previous deployment under this name may have left cached
        # results behind (the cache outlives brokers); drop them before
        # the new index starts answering.  The bumped epoch additionally
        # fences off late inserts from the old deployment's in-flight
        # requests, which can land *after* this invalidation.
        self.cache.invalidate(index_name)
        self._deploy_epoch += 1
        broker = Broker(
            self.searchers,
            config,
            parallel_fanout=self.parallel_fanout,
            async_fanout=self.async_fanout,
            hedge_after_s=self.hedge_after_s,
            fanout_workers=self.fanout_workers,
            max_batch=self.max_batch,
            max_wait_ms=self.max_wait_ms,
            cache=self.cache,
            cache_epoch=self._deploy_epoch,
            cache_quantize_decimals=self.cache_quantize_decimals,
            partial_policy=self.partial_policy,
            request_timeout_s=self.request_timeout_s,
            breaker_threshold=self.breaker_threshold,
            breaker_cooldown_s=self.breaker_cooldown_s,
            segmenter=segmenter,
            segment_sizes=manifest.segment_sizes,
            collect_cost=self.collect_cost,
            trace_sample_rate=self.trace_sample_rate,
            slow_query_log_s=self.slow_query_log_s,
            trace_seed=self.trace_seed,
            name=index_name,
        )
        self.brokers[index_name] = broker
        self.configs[index_name] = config
        self.deployments[index_name] = (fs, index_path)
        return broker

    def _deploy_remote(
        self, fs: LocalHdfs, index_path: str, index_name: str
    ) -> None:
        """One DEPLOY RPC per searcher, with rollback on partial failure.

        Each searcher process loads its own shard from ``fs``'s root
        (shared over loopback; a real cluster would point every server
        at the same HDFS).  Replica groups deploy onto every member.
        Under the ``fail`` policy any failure -- connection refused,
        checksum mismatch, wrong shard id -- aborts the deploy and
        best-effort undeploys the searchers already hosting, so a
        failed deploy leaves no half-hosted index behind.  Under
        ``degrade``, *connectivity* failures are tolerated (the index
        deploys onto whoever is up, and searches return partial results
        annotated with ``shards_answered``); only a fully unreachable
        fleet, or a searcher that answered with an error, still aborts.
        """
        root = str(fs.root)
        # `rollback` is "may be hosting": a searcher enters it the moment
        # its DEPLOY RPC is attempted, because the server can host the
        # shard even when the response is lost (timeout mid-load,
        # connection dropped after host()).  Only a failure to *connect*
        # proves the request never arrived.  `hosted` counts confirmed
        # deploys -- what a degraded deploy needs at least one of.
        rollback: list[RemoteSearcherTransport] = []
        hosted = 0
        unreachable: Exception | None = None
        try:
            for transport in self._all_transports():
                rollback.append(transport)
                try:
                    transport.verify()
                    transport.deploy(index_name, index_path, root=root)
                except TransportError as exc:
                    degradeable = self.partial_policy == "degrade" and not (
                        isinstance(exc, RemoteCallError)
                    )
                    if not degradeable:
                        raise
                    unreachable = exc
                    if isinstance(exc, ConnectionLostError):
                        rollback.pop()  # provably never reached the server
                else:
                    hosted += 1
            if hosted == 0:
                raise TransportError(
                    "no searcher in the fleet confirmed the deploy"
                ) from unreachable
        except Exception:
            # Broad on purpose, and NOT a swallow: any failure rolls the
            # partially-deployed index back off the fleet, then re-raises.
            for transport in rollback:
                try:
                    transport.undeploy(index_name)
                except (TransportError, OSError):
                    pass
            raise

    def undeploy(self, index_name: str) -> None:
        """Remove an index from every searcher (end of an A/B test).

        The broker is closed *before* unhosting: close() drains requests
        still pending in the admission layer, and they must drain against
        searchers that still host the index.
        """
        if index_name not in self.brokers:
            raise KeyError(f"index {index_name!r} is not deployed")
        self.brokers[index_name].close()
        if self.remote:
            # Best-effort against connectivity failures: a crashed
            # searcher cannot unhost, but the undeploy must still clear
            # the surviving fleet members and this service's tables.
            for transport in self._all_transports():
                try:
                    transport.undeploy(index_name)
                except TransportError:
                    pass
        else:
            for searcher in self.searchers:
                searcher.unhost(index_name)
        self.cache.invalidate(index_name)
        del self.brokers[index_name]
        del self.configs[index_name]
        del self.deployments[index_name]

    def rolling_restart(
        self,
        shard_id: int,
        restart: Callable[[int, int], None],
        *,
        drain_timeout_s: float = 30.0,
        verify_timeout_s: float = 30.0,
    ) -> None:
        """Restart shard ``shard_id``'s replica group with zero drops.

        One replica at a time: (1) the replica is fenced off in every
        broker (``drain`` -- no new picks, no hedges land on it), (2)
        its in-flight requests are waited out, (3) the caller's
        ``restart(shard_id, replica_id)`` hook replaces the process at
        the same address, (4) a ping handshake confirms the replacement
        is up and announces the right shard, (5) every deployed index is
        re-hosted onto it, and (6) the fence lifts.  Sibling replicas
        serve the group's full traffic throughout, so no query is
        dropped or degraded.

        Requires a remote fleet and a group of at least two replicas --
        restarting a group's only member necessarily drops its shard.
        """
        if not self.remote:
            raise ValueError(
                "rolling restart requires a remote fleet (in-process "
                "searchers have no process to restart)"
            )
        if not 0 <= shard_id < len(self.searchers):
            raise ValueError(
                f"shard {shard_id} out of range for "
                f"{len(self.searchers)} shards"
            )
        entry = self.searchers[shard_id]
        group = entry if isinstance(entry, list) else [entry]
        if len(group) < 2:
            raise ValueError(
                f"rolling restart of shard {shard_id} needs a replica "
                f"group of >= 2 (got {len(group)}): restarting the only "
                "replica would drop the shard"
            )
        for replica_id, transport in enumerate(group):
            for broker in self.brokers.values():
                broker.groups[shard_id].drain(replica_id)
            try:
                deadline = time.monotonic() + drain_timeout_s
                while any(
                    broker.groups[shard_id].in_flight(replica_id) > 0
                    for broker in self.brokers.values()
                ):
                    if time.monotonic() > deadline:
                        raise TimeoutError(
                            f"shard {shard_id} replica {replica_id} still "
                            f"has in-flight requests after "
                            f"{drain_timeout_s}s"
                        )
                    time.sleep(0.002)
                restart(shard_id, replica_id)
                deadline = time.monotonic() + verify_timeout_s
                while True:
                    try:
                        transport.verify()
                        break
                    except TransportError:
                        if time.monotonic() > deadline:
                            raise
                        time.sleep(0.05)
                for index_name, (fs, index_path) in self.deployments.items():
                    try:
                        transport.deploy(
                            index_name, index_path, root=str(fs.root)
                        )
                    except RemoteCallError as exc:
                        # "already hosts": the hook restarted in place
                        # without wiping state (or never killed the
                        # process) -- the replica is serviceable.
                        if exc.error_type != "ValueError":
                            raise
            finally:
                for broker in self.brokers.values():
                    broker.groups[shard_id].restore(replica_id)

    def close(self) -> None:
        """Close every broker (drains admission layers); idempotent.

        For a remote fleet, also closes the per-searcher connection
        pools (the searcher *processes* keep running -- they are owned
        by whoever launched them).
        """
        for broker in self.brokers.values():
            broker.close()
        if self.remote:
            for transport in self._all_transports():
                transport.close()

    def stats(self) -> dict:
        """Service-wide serving stats: shared cache plus per-index brokers.

        Each index entry also reports its ``quantize`` backend so
        operators can see which deployments serve compressed-domain
        beam searches.
        """
        indices: dict[str, dict] = {}
        for name, broker in self.brokers.items():
            entry = broker.stats()
            entry["quantize"] = self.configs[name].quantize
            indices[name] = entry
        return {
            "cache": self.cache.stats.as_dict(),
            "indices": indices,
        }

    # -- serving -----------------------------------------------------------------------
    def _broker(self, index_name: str) -> Broker:
        try:
            return self.brokers[index_name]
        except KeyError:
            raise KeyError(
                f"index {index_name!r} is not deployed "
                f"(deployed: {self.deployed_indices})"
            ) from None

    def execute(self, request: SearchRequest) -> SearchResponse:
        """Serve one structured request against its deployed index."""
        return self._broker(request.index_name).execute(request)

    def query(
        self,
        query: np.ndarray,
        top_k: int,
        *,
        index_name: str = "default",
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve one query against a deployed index."""
        return self._broker(index_name).search(index_name, query, top_k, ef=ef)

    def query_batch(
        self,
        queries: np.ndarray,
        top_k: int,
        *,
        index_name: str = "default",
        ef: int | None = None,
        with_info: bool = False,
        spill: int | str | None = None,
    ) -> tuple:
        """Serve a query batch in one broker fan-out.

        Returns ``(B, top_k)`` id/distance arrays padded with ``-1`` /
        ``inf``; per-query results are identical to :meth:`query`.
        ``spill`` routes the batch through the broker's router (see
        :class:`~repro.online.types.SearchRequest`).  ``with_info=True``
        (deprecated -- use :meth:`execute`) appends the broker's
        partial-result annotation (``shards_answered`` per row).
        """
        return self._broker(index_name).search_batch(
            index_name, queries, top_k, ef=ef, with_info=with_info,
            spill=spill,
        )

    # The paper-facing name for the batch serving entry point.
    search_batch = query_batch

    def measure_qps(
        self,
        queries: np.ndarray,
        top_k: int,
        *,
        index_name: str = "default",
        ef: int | None = None,
        batch_size: int | None = None,
        spill: int | str | None = None,
    ) -> dict:
        """Serve a query set and report throughput / latency stats.

        With ``batch_size=None`` every query is served individually (the
        sequential baseline); otherwise queries are served in batches of
        ``batch_size`` through :meth:`query_batch` and each batch counts
        as one request for latency purposes.  ``spill`` applies spilled
        segment routing to the batched mode (the routed-serving
        benchmark's QPS comparison).  Timing comes from
        :mod:`repro.eval.timing` so both modes share one qps definition.

        Returns a dict with ``qps``, ``mean_latency_ms``,
        ``p99_latency_ms`` (the paper reports p99), ``count`` and
        ``batch_size``.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[np.newaxis, :]
        if batch_size is None:
            stats = measure_qps(
                lambda query: self.query(
                    query, top_k, index_name=index_name, ef=ef
                ),
                queries,
            )
            mean_ms, p99_ms = stats["mean_ms"], stats["p99_ms"]
        else:
            stats = measure_batch_qps(
                lambda batch: self.query_batch(
                    batch, top_k, index_name=index_name, ef=ef, spill=spill
                ),
                queries,
                batch_size,
            )
            mean_ms, p99_ms = stats["mean_batch_ms"], stats["p99_batch_ms"]
        return {
            "count": int(queries.shape[0]),
            "batch_size": batch_size,
            "qps": stats["qps"],
            "mean_latency_ms": mean_ms,
            "p99_latency_ms": p99_ms,
        }
