"""Opportunistic micro-batching: the broker's request-admission layer.

Under multi-client load, single-query requests arriving on many threads
would each pay a full shard fan-out.  The admission layer instead
collects concurrently arriving requests into *micro-batches* and executes
them through the existing lockstep batch path, so concurrent singles get
batched QPS instead of queueing behind each other.

A batch flushes when it reaches ``max_batch`` rows or when its oldest
request has waited ``max_wait_ms`` -- whichever comes first.  The wait is
self-regulating: while one batch executes, the next one accumulates, so
under sustained load the oldest pending request has usually already aged
past ``max_wait_ms`` by the time the flusher is free and the flush is
immediate.  Under light load a lone request waits at most ``max_wait_ms``.

Requests are grouped by an opaque *admission key* (for the broker:
``(index_name, top_k, ef, dim)``) because only requests with identical
search parameters can share a lockstep batch.  Correctness rests on the
batch kernels being batch-composition invariant -- a row's result never
depends on which other rows share the batch -- which
``tests/test_properties_cross_module.py`` pins down.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Hashable
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import get_registry

_FLUSHES = get_registry().counter(
    "lanns_microbatch_flushes_total",
    "Micro-batch flushes, labelled by reason (size/timeout/close).",
)

#: ``execute(key, queries)`` -> a tuple of per-row arrays, each with one
#: entry per query row (e.g. ``(ids, dists)`` or, with partial-result
#: annotation, ``(ids, dists, shards_answered)``).  The batcher slices
#: every element of the tuple back out per submitted block, so the
#: executor can grow its result without the admission layer changing.
ExecuteFn = Callable[[Hashable, np.ndarray], tuple[np.ndarray, ...]]


@dataclass
class _Pending:
    """One admitted request: a (B, d) query block awaiting execution."""

    queries: np.ndarray
    future: Future
    enqueued_at: float = field(default_factory=time.perf_counter)


class MicroBatcher:
    """Collects concurrent query blocks into opportunistic micro-batches.

    Parameters
    ----------
    execute:
        ``execute(key, queries)`` running one coalesced ``(B, d)`` batch;
        called on the flusher thread (or inline after :meth:`close`).
    max_batch:
        Flush as soon as a group holds this many rows.
    max_wait_ms:
        Flush a group once its oldest request has waited this long, even
        if the batch is not full.
    on_queue_wait:
        Optional callback receiving each block's admission-to-flush wait
        in seconds (feeds the broker's queue-wait stage latency).

    Notes
    -----
    Blocks are never split: a multi-row ``query_batch`` block stays
    contiguous inside the coalesced batch (a block larger than
    ``max_batch`` simply flushes alone), which keeps result slicing
    trivial and preserves the caller's one-request-one-fan-out latency
    model.  :meth:`close` drains every in-flight request before
    returning, is idempotent, and later submissions fall back to direct
    inline execution -- so no caller can deadlock on a closed batcher.
    """

    def __init__(
        self,
        execute: ExecuteFn,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        on_queue_wait: Callable[[float], None] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._execute = execute
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1e3
        self._on_queue_wait = on_queue_wait
        self._cond = threading.Condition()
        self._groups: dict[Hashable, deque[_Pending]] = {}
        self._stopped = False
        #: Lifetime counters: admitted blocks/rows, executed batches/rows.
        self.stats = {
            "blocks_admitted": 0,
            "rows_admitted": 0,
            "batches_executed": 0,
            "rows_executed": 0,
            "largest_batch": 0,
            "inline_after_close": 0,
            "flush_reasons": {"size": 0, "timeout": 0, "close": 0},
        }
        self._flusher = threading.Thread(
            target=self._run, name="broker-microbatch", daemon=True
        )
        self._flusher.start()

    # -- client side -----------------------------------------------------------------
    def submit(self, key: Hashable, queries: np.ndarray) -> Future:
        """Admit one ``(B, d)`` block; resolve to its ``(ids, dists)``.

        The returned future yields arrays covering exactly the submitted
        rows, in order, regardless of how the block was coalesced.
        """
        future: Future = Future()
        with self._cond:
            if not self._stopped:
                pending = _Pending(queries=queries, future=future)
                self._groups.setdefault(key, deque()).append(pending)
                self.stats["blocks_admitted"] += 1
                self.stats["rows_admitted"] += int(queries.shape[0])
                self._cond.notify_all()
                return future
            self.stats["inline_after_close"] += 1
        # Closed: serve the caller inline rather than failing or hanging.
        try:
            future.set_result(self._execute(key, queries))
        except BaseException as exc:  # propagate to the caller, not the thread
            future.set_exception(exc)
        return future

    def close(self) -> None:
        """Drain pending requests, stop the flusher, and join it.

        Safe to call concurrently with in-flight :meth:`submit` calls
        (their futures complete -- drained by the flusher or served
        inline) and safe to call more than once.
        """
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        self._flusher.join()

    # -- flusher side ----------------------------------------------------------------
    def _run(self) -> None:
        try:
            while True:
                batch = self._next_batch()
                if batch is None:
                    return
                self._run_batch(*batch)
        finally:
            # Reached normally only after a drain; on an unexpected
            # flusher death, stop admitting (so submit() falls back to
            # inline execution instead of queueing forever) and fail
            # whatever is still queued.
            with self._cond:
                self._stopped = True
            self._fail_remaining()

    def _next_batch(
        self,
    ) -> tuple[Hashable, list[_Pending], str] | None:
        """Block until a group is ready to flush (or drained + stopped)."""
        with self._cond:
            while True:
                if self._stopped and not self._groups:
                    return None
                key, reason, timeout = self._select_locked()
                if key is not None:
                    return key, self._pop_locked(key), reason
                self._cond.wait(timeout)

    def _select_locked(
        self,
    ) -> tuple[Hashable | None, str | None, float | None]:
        """Pick a flush-ready group (with *why* it flushed: ``size`` --
        the batch filled, ``timeout`` -- its oldest request aged out,
        ``close`` -- the batcher is draining), else the wait until one
        ripens."""
        now = time.perf_counter()
        ready: Hashable | None = None
        ready_reason: str | None = None
        ready_age = -1.0
        timeout: float | None = None
        for key, pending in self._groups.items():
            rows = sum(block.queries.shape[0] for block in pending)
            age = now - pending[0].enqueued_at
            if rows >= self.max_batch:
                reason = "size"
            elif age >= self.max_wait_s:
                reason = "timeout"
            elif self._stopped:
                reason = "close"
            else:
                remaining = self.max_wait_s - age
                timeout = remaining if timeout is None else min(timeout, remaining)
                continue
            if age > ready_age:
                ready, ready_reason, ready_age = key, reason, age
        return ready, ready_reason, timeout

    def _pop_locked(self, key: Hashable) -> list[_Pending]:
        """Take whole blocks until the flush reaches ``max_batch`` rows."""
        pending = self._groups[key]
        taken: list[_Pending] = [pending.popleft()]
        rows = taken[0].queries.shape[0]
        while pending and rows + pending[0].queries.shape[0] <= self.max_batch:
            block = pending.popleft()
            rows += block.queries.shape[0]
            taken.append(block)
        if not pending:
            del self._groups[key]
        return taken

    def _run_batch(
        self, key: Hashable, blocks: list[_Pending], reason: str
    ) -> None:
        # Everything after popping the blocks runs under one try: once a
        # block leaves the queue, _fail_remaining can no longer see it,
        # so ANY failure here (even in stacking/slicing, not just in the
        # execute call) must reach the waiting futures, never the thread.
        try:
            flushed_at = time.perf_counter()
            if self._on_queue_wait is not None:
                for block in blocks:
                    self._on_queue_wait(flushed_at - block.enqueued_at)
            stacked = (
                blocks[0].queries
                if len(blocks) == 1
                else np.concatenate(
                    [block.queries for block in blocks], axis=0
                )
            )
            with self._cond:
                # submit() mutates these counters under the condition's
                # lock; the flusher thread must too, or concurrent bumps
                # lose increments.
                self.stats["batches_executed"] += 1
                self.stats["rows_executed"] += int(stacked.shape[0])
                self.stats["flush_reasons"][reason] += 1
                self.stats["largest_batch"] = max(
                    self.stats["largest_batch"], int(stacked.shape[0])
                )
            _FLUSHES.inc(reason=reason)
            # Claim each future before computing: a waiter cancelled
            # after flush (e.g. an abandoned server-side request) is
            # skipped here and can no longer race result delivery for
            # the rest of the batch.
            claimed = [
                block.future.set_running_or_notify_cancel()
                for block in blocks
            ]
            if not any(claimed):
                return
            parts = self._execute(key, stacked)
            start = 0
            for block, live in zip(blocks, claimed):
                stop = start + block.queries.shape[0]
                if live:
                    block.future.set_result(
                        tuple(part[start:stop] for part in parts)
                    )
                start = stop
        except BaseException as exc:
            for block in blocks:
                if not block.future.done():
                    block.future.set_exception(exc)

    def _fail_remaining(self) -> None:
        """Backstop: never leave a caller blocked if the flusher dies."""
        with self._cond:
            groups, self._groups = self._groups, {}
        for pending in groups.values():
            for block in pending:
                if not block.future.done():
                    block.future.set_exception(
                        RuntimeError("micro-batch flusher exited unexpectedly")
                    )
