"""Searcher nodes: the per-shard serving processes.

"The first stage of the two-step merging, i.e., the shard level merging,
happens at the machine where the shard is hosted (called a 'searcher')."

A searcher can host the same shard of *several* indices ("to enable
online A/B tests between different modeling techniques"), keyed by index
name.  Hosting changes (deploy/undeploy) may race in-flight searches on
the broker's fan-out pool, so the hosting table is copy-on-write: a
search either sees an index fully attached or not at all, never a
half-mutated dict.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.index import ShardIndex
from repro.obs.cost import FIELDS as _COST_FIELDS
from repro.obs.metrics import get_registry

_REGISTRY = get_registry()
_REQUESTS = _REGISTRY.counter(
    "lanns_searcher_requests_total", "Fan-out requests served by a searcher."
)
_QUERIES = _REGISTRY.counter(
    "lanns_searcher_queries_total", "Query rows served by a searcher."
)
_MEMORY_VECTORS = _REGISTRY.gauge(
    "lanns_searcher_memory_vectors",
    "Vectors resident on a searcher across hosted indices.",
)
_COST_COUNTERS = {
    field: _REGISTRY.counter(
        f"lanns_search_cost_{field}_total",
        f"Accumulated per-query search cost: {field}.",
    )
    for field in _COST_FIELDS
}


class SearcherNode:
    """One serving machine hosting shard ``shard_id`` of named indices."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = int(shard_id)
        self._indices: dict[str, ShardIndex] = {}
        self._host_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        #: Lifetime counters: fan-out requests and query rows served.
        self.requests_served = 0
        self.queries_served = 0

    def _count_request(self, num_queries: int) -> None:
        # Fan-out pools may run several batches against this searcher at
        # once; += on an attribute is not atomic, so take the lock.
        with self._stats_lock:
            self.requests_served += 1
            self.queries_served += num_queries
        _REQUESTS.inc(shard=self.shard_id)
        _QUERIES.inc(num_queries, shard=self.shard_id)

    # -- hosting -----------------------------------------------------------------
    def host(self, index_name: str, shard: ShardIndex) -> None:
        """Attach one index's shard under ``index_name``."""
        if shard.shard_id != self.shard_id:
            raise ValueError(
                f"searcher {self.shard_id} cannot host shard "
                f"{shard.shard_id}"
            )
        with self._host_lock:
            if index_name in self._indices:
                raise ValueError(
                    f"searcher {self.shard_id} already hosts index "
                    f"{index_name!r}"
                )
            updated = dict(self._indices)
            updated[index_name] = shard
            self._indices = updated
            _MEMORY_VECTORS.set(
                sum(len(s) for s in updated.values()), shard=self.shard_id
            )

    def unhost(self, index_name: str) -> None:
        """Detach a hosted index (e.g. at the end of an A/B test)."""
        with self._host_lock:
            if index_name not in self._indices:
                raise KeyError(f"index {index_name!r} is not hosted here")
            updated = dict(self._indices)
            del updated[index_name]
            self._indices = updated
            _MEMORY_VECTORS.set(
                sum(len(s) for s in updated.values()), shard=self.shard_id
            )

    @property
    def hosted_indices(self) -> list[str]:
        """Names of the indices this searcher serves."""
        return sorted(self._indices)

    def stats(self) -> dict:
        """Counters snapshot (served verbatim by the STATS RPC).

        One *consistent* snapshot: the hosting table reference and the
        counters are captured under the same lock, so a concurrent
        deploy/undeploy cannot yield a report whose ``hosted_indices``
        and ``memory_vectors`` disagree with the counters' point in
        time.  (The table itself is copy-on-write, so the captured
        reference is immutable.)
        """
        with self._stats_lock:
            indices = self._indices
            requests, queries = self.requests_served, self.queries_served
        return {
            "shard_id": self.shard_id,
            "hosted_indices": sorted(indices),
            "memory_vectors": sum(len(shard) for shard in indices.values()),
            "requests_served": requests,
            "queries_served": queries,
        }

    def memory_vectors(self) -> int:
        """Total stored vectors across hosted indices.

        "The majority of storage needed in the online node comes from the
        vector representations" -- this is the proxy the capacity tests
        use.
        """
        return sum(len(shard) for shard in self._indices.values())

    # -- serving --------------------------------------------------------------------
    def search(
        self,
        index_name: str,
        query: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
    ) -> list[tuple[float, int]]:
        """Serve one query against the hosted shard of ``index_name``.

        Performs segment routing + the in-node (level 1) merge; returns at
        most ``k`` ``(distance, id)`` pairs -- the ``perShardTopK`` budget
        the broker asked for.
        """
        self._count_request(1)
        return self._shard(index_name).search(query, k, ef=ef)

    def search_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
        probes: list[tuple[int, ...]] | None = None,
        cost=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve a query batch against the hosted shard of ``index_name``.

        One network round-trip's worth of work in the real system: the
        broker ships the whole batch, the searcher lockstep-searches its
        shard and returns ``(B, k)`` id/distance arrays (padded with
        ``-1`` / ``inf``).  ``probes`` carries the broker router's
        segment choice (see :meth:`ShardIndex.search_batch`).

        ``cost`` optionally accumulates this request's search work; the
        collected increments are also flushed into the process metrics
        registry under this searcher's ``shard`` label.
        """
        self._count_request(int(np.asarray(queries).shape[0]))
        before = cost.as_dict() if cost is not None else None
        result = self._shard(index_name).search_batch(
            queries, k, ef=ef, probes=probes, cost=cost
        )
        if cost is not None:
            for field, counter in _COST_COUNTERS.items():
                delta = getattr(cost, field) - before[field]
                if delta:
                    counter.inc(delta, shard=self.shard_id)
        return result

    def _shard(self, index_name: str):
        try:
            return self._indices[index_name]
        except KeyError:
            raise KeyError(
                f"searcher {self.shard_id} does not host index "
                f"{index_name!r} (hosted: {self.hosted_indices})"
            ) from None

    def __repr__(self) -> str:
        return (
            f"SearcherNode(shard_id={self.shard_id}, "
            f"indices={self.hosted_indices})"
        )
