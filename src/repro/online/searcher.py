"""Searcher nodes: the per-shard serving processes.

"The first stage of the two-step merging, i.e., the shard level merging,
happens at the machine where the shard is hosted (called a 'searcher')."

A searcher can host the same shard of *several* indices ("to enable
online A/B tests between different modeling techniques"), keyed by index
name.
"""

from __future__ import annotations

import numpy as np

from repro.core.index import ShardIndex


class SearcherNode:
    """One serving machine hosting shard ``shard_id`` of named indices."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = int(shard_id)
        self._indices: dict[str, ShardIndex] = {}

    # -- hosting -----------------------------------------------------------------
    def host(self, index_name: str, shard: ShardIndex) -> None:
        """Attach one index's shard under ``index_name``."""
        if shard.shard_id != self.shard_id:
            raise ValueError(
                f"searcher {self.shard_id} cannot host shard "
                f"{shard.shard_id}"
            )
        if index_name in self._indices:
            raise ValueError(
                f"searcher {self.shard_id} already hosts index "
                f"{index_name!r}"
            )
        self._indices[index_name] = shard

    def unhost(self, index_name: str) -> None:
        """Detach a hosted index (e.g. at the end of an A/B test)."""
        if index_name not in self._indices:
            raise KeyError(f"index {index_name!r} is not hosted here")
        del self._indices[index_name]

    @property
    def hosted_indices(self) -> list[str]:
        """Names of the indices this searcher serves."""
        return sorted(self._indices)

    def memory_vectors(self) -> int:
        """Total stored vectors across hosted indices.

        "The majority of storage needed in the online node comes from the
        vector representations" -- this is the proxy the capacity tests
        use.
        """
        return sum(len(shard) for shard in self._indices.values())

    # -- serving --------------------------------------------------------------------
    def search(
        self,
        index_name: str,
        query: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
    ) -> list[tuple[float, int]]:
        """Serve one query against the hosted shard of ``index_name``.

        Performs segment routing + the in-node (level 1) merge; returns at
        most ``k`` ``(distance, id)`` pairs -- the ``perShardTopK`` budget
        the broker asked for.
        """
        return self._shard(index_name).search(query, k, ef=ef)

    def search_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Serve a query batch against the hosted shard of ``index_name``.

        One network round-trip's worth of work in the real system: the
        broker ships the whole batch, the searcher lockstep-searches its
        shard and returns ``(B, k)`` id/distance arrays (padded with
        ``-1`` / ``inf``).
        """
        return self._shard(index_name).search_batch(queries, k, ef=ef)

    def _shard(self, index_name: str):
        try:
            return self._indices[index_name]
        except KeyError:
            raise KeyError(
                f"searcher {self.shard_id} does not host index "
                f"{index_name!r} (hosted: {self.hosted_indices})"
            ) from None

    def __repr__(self) -> str:
        return (
            f"SearcherNode(shard_id={self.shard_id}, "
            f"indices={self.hosted_indices})"
        )
