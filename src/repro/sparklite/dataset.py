"""Eager partitioned collections: the RDD-flavoured half of sparklite.

Only the operations LANNS pipelines need (Figures 6-8): elementwise maps,
partition-wise maps, key-based repartitioning ("shuffles") and grouping.
Execution is eager -- each transformation runs one stage on the cluster
and returns a new materialised dataset -- which keeps the engine tiny and
the per-stage metrics easy to attribute.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.sharding.sharder import stable_hash


class Dataset:
    """A list of partitions, each a Python list, bound to a cluster."""

    def __init__(self, cluster, partitions: list[list]) -> None:
        self.cluster = cluster
        self.partitions = partitions

    # -- constructors ------------------------------------------------------------
    @classmethod
    def from_items(
        cls, cluster, items: Sequence, num_partitions: int | None = None
    ) -> "Dataset":
        """Split ``items`` into ``num_partitions`` contiguous partitions."""
        items = list(items)
        if num_partitions is None:
            num_partitions = cluster.num_executors
        if num_partitions < 1:
            raise ValueError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        partitions: list[list] = [[] for _ in range(num_partitions)]
        if items:
            base, extra = divmod(len(items), num_partitions)
            start = 0
            for index in range(num_partitions):
                size = base + (1 if index < extra else 0)
                partitions[index] = items[start : start + size]
                start += size
        return cls(cluster, partitions)

    # -- introspection ------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """Number of partitions."""
        return len(self.partitions)

    def count(self) -> int:
        """Total number of rows."""
        return sum(len(partition) for partition in self.partitions)

    def collect(self) -> list:
        """All rows, concatenated in partition order."""
        return [row for partition in self.partitions for row in partition]

    # -- stages ----------------------------------------------------------------------
    def _run_per_partition(
        self, fn: Callable[[list], list], stage: str, checkpoint: bool = False
    ) -> "Dataset":
        def make_task(partition: list):
            def task() -> list:
                return fn(partition)

            return task

        tasks = [make_task(partition) for partition in self.partitions]
        outcome = self.cluster.run_tasks(tasks, stage=stage, checkpoint=checkpoint)
        return Dataset(self.cluster, outcome.results)

    def map_partitions(
        self,
        fn: Callable[[list], list],
        *,
        stage: str = "map_partitions",
        checkpoint: bool = False,
    ) -> "Dataset":
        """Apply ``fn`` to each whole partition (one task per partition)."""
        return self._run_per_partition(fn, stage, checkpoint)

    def map(self, fn: Callable, *, stage: str = "map") -> "Dataset":
        """Apply ``fn`` to each row."""
        return self._run_per_partition(
            lambda partition: [fn(row) for row in partition], stage
        )

    def flat_map(self, fn: Callable, *, stage: str = "flat_map") -> "Dataset":
        """Apply ``fn`` (returning an iterable) to each row and flatten."""

        def per_partition(partition: list) -> list:
            output: list = []
            for row in partition:
                output.extend(fn(row))
            return output

        return self._run_per_partition(per_partition, stage)

    def filter(self, predicate: Callable, *, stage: str = "filter") -> "Dataset":
        """Keep rows where ``predicate`` is true."""
        return self._run_per_partition(
            lambda partition: [row for row in partition if predicate(row)],
            stage,
        )

    # -- shuffles -----------------------------------------------------------------------
    def repartition_by_key(
        self,
        num_partitions: int,
        key_fn: Callable = None,
        *,
        stage: str = "repartition",
    ) -> "Dataset":
        """Shuffle rows so equal keys land in the same partition.

        ``key_fn`` defaults to ``row[0]`` (key-value pairs).  Keys are
        placed by stable hash, so the layout is process-independent.
        """
        if num_partitions < 1:
            raise ValueError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        if key_fn is None:
            key_fn = lambda row: row[0]  # noqa: E731 - tiny default
        buckets: list[list] = [[] for _ in range(num_partitions)]
        for partition in self.partitions:
            for row in partition:
                buckets[stable_hash(key_fn(row)) % num_partitions].append(row)
        # The shuffle itself is a data movement, not compute; run a trivial
        # identity stage so it still appears in the metrics.
        return Dataset(self.cluster, buckets)._run_per_partition(
            lambda partition: partition, stage
        )

    def group_by_key(
        self, key_fn: Callable = None, *, stage: str = "group_by_key"
    ) -> "Dataset":
        """Group rows by key *within each partition*.

        Repartition by the same key first for a global grouping; rows
        become ``(key, [row, ...])`` pairs.
        """
        if key_fn is None:
            key_fn = lambda row: row[0]  # noqa: E731 - tiny default

        def per_partition(partition: list) -> list:
            groups: dict = {}
            for row in partition:
                groups.setdefault(key_fn(row), []).append(row)
            return sorted(groups.items(), key=lambda item: str(item[0]))

        return self._run_per_partition(per_partition, stage)
