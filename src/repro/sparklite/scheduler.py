"""Task scheduling and the simulated-makespan model.

The experiments of Tables 2/3/5/6 sweep the *number of Spark executors*.
The grading host has two cores, so running 8 real executors would show no
scaling.  Instead the cluster measures real per-task durations and this
module schedules them onto ``E`` virtual executors with the classic
Longest-Processing-Time (LPT) greedy rule; the resulting makespan is the
reported "build/query time with E executors".

LPT is within 4/3 of the optimal makespan and is exactly what a work-
stealing executor pool approximates in practice, so the *shape* of the
paper's scaling curves (time ~ total_work / E, floored by the longest
single task) is preserved.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence


def lpt_assignment(
    durations: Sequence[float], num_executors: int
) -> list[list[int]]:
    """Assign task indices to executors by Longest-Processing-Time-first.

    Returns
    -------
    ``assignment[e]`` is the list of task indices given to executor ``e``.
    """
    if num_executors < 1:
        raise ValueError(f"num_executors must be >= 1, got {num_executors}")
    for duration in durations:
        if duration < 0:
            raise ValueError(f"negative task duration: {duration}")
    assignment: list[list[int]] = [[] for _ in range(num_executors)]
    # Min-heap of (load, executor); pop the least-loaded executor for each
    # task in decreasing-duration order.
    loads = [(0.0, executor) for executor in range(num_executors)]
    heapq.heapify(loads)
    order = sorted(range(len(durations)), key=lambda i: -durations[i])
    for task in order:
        load, executor = heapq.heappop(loads)
        assignment[executor].append(task)
        heapq.heappush(loads, (load + durations[task], executor))
    return assignment


def simulated_makespan(
    durations: Sequence[float], num_executors: int
) -> float:
    """Completion time of ``durations`` on ``num_executors`` LPT executors.

    Properties (tested): non-increasing in ``num_executors``; never below
    ``max(durations)``; never below ``sum(durations) / num_executors``;
    equals ``sum(durations)`` for one executor.
    """
    assignment = lpt_assignment(durations, num_executors)
    return max(
        (sum(durations[task] for task in tasks) for tasks in assignment),
        default=0.0,
    )
