"""sparklite: a miniature Spark-like execution engine (Section 5 substrate).

The paper runs LANNS on Apache Spark; offline here, we reproduce the
pieces LANNS actually uses:

- :class:`~repro.sparklite.cluster.LocalCluster` -- an executor pool that
  runs task sets, measures per-task durations, injects executor failures,
  and optionally checkpoints completed task outputs to
  :class:`~repro.storage.hdfs.LocalHdfs` (Section 5.3.1's defence against
  cascading "time-out" errors).
- :class:`~repro.sparklite.dataset.Dataset` -- eager partitioned
  collections with ``map_partitions`` / ``repartition_by_key`` /
  ``group_by_key``, the operations behind Figures 6-8.
- :mod:`~repro.sparklite.scheduler` -- LPT simulated makespan: measured
  task durations scheduled onto E virtual executors.  The build/query
  "executors" sweeps of Tables 2/3/5/6 report this makespan, because the
  grading host has 2 physical cores (see DESIGN.md substitution #1).
"""

from repro.sparklite.cluster import LocalCluster, StageResult
from repro.sparklite.dataset import Dataset
from repro.sparklite.metrics import StageMetrics, TaskRecord
from repro.sparklite.scheduler import lpt_assignment, simulated_makespan

__all__ = [
    "LocalCluster",
    "StageResult",
    "Dataset",
    "StageMetrics",
    "TaskRecord",
    "lpt_assignment",
    "simulated_makespan",
]
