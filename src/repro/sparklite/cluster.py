"""The sparklite cluster: executor pools, failure injection, checkpoints.

Execution model
---------------
A *stage* is a list of zero-argument task callables run together.  Tasks
are distributed round-robin over ``num_executors`` virtual executors and
executed inline (deterministic, default), on a thread pool, or on a
process pool (``mode="processes"`` -- real GIL-free parallelism for
Python-heavy tasks such as per-partition HNSW builds; tasks and results
must be picklable).

Failure injection (Section 5.3.1)
---------------------------------
With ``failure_rate > 0``, each task attempt may kill its virtual
executor.  Without checkpointing, an executor death also *loses the
results of every task that executor completed in the current round* --
exactly the Spark behaviour the paper describes: "While waiting for these
recomputed results, some other executors may die, and so on.  This leads
to cascading failures".  When all retry rounds are exhausted the stage
raises :class:`~repro.errors.StageTimeoutError`.

With ``checkpoint=True`` (and an attached filesystem), every completed
task's output is immediately persisted, so executor deaths can only delay
-- never undo -- progress, and the stage completes whenever each task
succeeds at least once.  This reproduces the paper's fix of writing
partial results to a temporary HDFS path after each phase.
"""

from __future__ import annotations

import pickle
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import ClusterError, StageTimeoutError
from repro.sparklite.metrics import StageMetrics, TaskRecord
from repro.storage.hdfs import LocalHdfs

#: Execution modes for real (not simulated) parallelism.  ``"processes"``
#: escapes the GIL entirely (one OS process per worker) and is what makes
#: multi-partition HNSW builds actually run in parallel -- the build hot
#: loop is Python-heavy, so ``"threads"`` only overlaps the numpy
#: fraction.  Tasks and their results must be picklable under
#: ``"processes"`` (module-level callables / ``functools.partial``, not
#: closures).
EXECUTION_MODES = ("inline", "threads", "processes")


def _timed_call(fn: Callable[[], object]) -> tuple[object, float]:
    """Run one task in a worker process, timing it there.

    Module-level so the process pool can pickle it; the in-worker
    duration keeps per-task timings comparable with the other modes
    (parent-side timing would fold in queueing and IPC).
    """
    begin = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - begin


class ExecutorDeathError(ClusterError):
    """Raised inside a task attempt when its executor is killed."""


@dataclass
class StageResult:
    """Results plus metrics for one completed stage."""

    results: list
    metrics: StageMetrics


@dataclass
class _TaskState:
    index: int
    fn: Callable[[], object]
    attempts: int = 0
    done: bool = False
    checkpointed: bool = False
    result: object = None
    duration: float = 0.0
    executor: int = -1


class LocalCluster:
    """A small deterministic stand-in for a Spark cluster.

    Parameters
    ----------
    num_executors:
        Virtual executor count; tasks are assigned round-robin.  Also the
        default executor count for simulated makespans.
    mode:
        ``"inline"`` (sequential, deterministic timing -- default),
        ``"threads"`` (real thread pool; numpy kernels release the GIL)
        or ``"processes"`` (process pool; escapes the GIL -- tasks and
        results must be picklable).  Failure injection draws the same
        deterministic fate stream in every mode, and ``"processes"``
        applies it with ``"inline"``'s in-order semantics, so results
        (including retry/checkpoint behavior) are mode-independent for
        deterministic tasks.
    failure_rate:
        Probability that a task attempt kills its executor.
    max_rounds:
        Retry rounds per stage before declaring a time-out.
    seed:
        Seed of the failure-injection stream.
    fs:
        Optional :class:`~repro.storage.hdfs.LocalHdfs` used for
        checkpointing.
    """

    def __init__(
        self,
        num_executors: int = 2,
        *,
        mode: str = "inline",
        failure_rate: float = 0.0,
        max_rounds: int = 4,
        seed: int | None = 0,
        fs: LocalHdfs | None = None,
    ) -> None:
        if num_executors < 1:
            raise ValueError(f"num_executors must be >= 1, got {num_executors}")
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"mode must be one of {EXECUTION_MODES}, got {mode!r}"
            )
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1), got {failure_rate}"
            )
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.num_executors = int(num_executors)
        self.mode = mode
        self.failure_rate = float(failure_rate)
        self.max_rounds = int(max_rounds)
        self.fs = fs
        self._rng = np.random.default_rng(seed)
        #: StageMetrics of every stage run, in order.
        self.stages: list[StageMetrics] = []

    # -- public API -----------------------------------------------------------------
    def parallelize(self, items: Sequence, num_partitions: int | None = None):
        """Create a :class:`~repro.sparklite.dataset.Dataset` from a sequence."""
        from repro.sparklite.dataset import Dataset

        return Dataset.from_items(self, items, num_partitions)

    def run_tasks(
        self,
        tasks: Sequence[Callable[[], object]],
        *,
        stage: str = "stage",
        checkpoint: bool = False,
    ) -> StageResult:
        """Run a task set to completion; returns results in task order.

        See the module docstring for the failure/checkpoint semantics.
        """
        states = [_TaskState(index, fn) for index, fn in enumerate(tasks)]
        metrics = StageMetrics(stage=stage)
        checkpoint_path = None
        if checkpoint:
            if self.fs is None:
                raise ClusterError(
                    "checkpointing requires a cluster filesystem (fs=...)"
                )
            checkpoint_path = self.fs.make_temp_path(f"checkpoint-{stage}")
        started = time.perf_counter()

        # One process pool per stage (not per retry round): worker
        # startup is paid once however many failure-injection rounds
        # the stage takes.  Created lazily by the first round that has
        # more than one runnable task.
        pool: ProcessPoolExecutor | None = None
        try:
            rounds = 0
            while any(not state.done for state in states):
                rounds += 1
                if rounds > self.max_rounds:
                    raise StageTimeoutError(
                        f"stage {stage!r} did not finish within "
                        f"{self.max_rounds} rounds ({metrics.failures} "
                        "executor failures); enable checkpointing or lower "
                        "failure_rate"
                    )
                pending = [state for state in states if not state.done]
                if (
                    self.mode == "processes"
                    and pool is None
                    and len(pending) > 1
                ):
                    pool = ProcessPoolExecutor(
                        max_workers=min(self.num_executors, len(pending))
                    )
                dead_executors = self._run_round(pending, metrics, pool)
                if checkpoint_path is not None:
                    # "As soon as an executor finishes processing its task
                    # ... it can write to the HDFS": persist before any
                    # invalidation can touch the result.
                    for state in states:
                        if state.done and not state.checkpointed:
                            self.fs.write_bytes(
                                f"{checkpoint_path}/"
                                f"task-{state.index:05d}.pkl",
                                pickle.dumps(state.result, protocol=4),
                            )
                            state.checkpointed = True
                if dead_executors:
                    # Spark semantics: results held only by a dead executor
                    # are lost and must be recomputed.  Checkpointed results
                    # are durable on the filesystem and survive.
                    for state in states:
                        if (
                            state.done
                            and not state.checkpointed
                            and state.executor in dead_executors
                        ):
                            state.done = False
                            state.result = None
                            metrics.failures += 1
        finally:
            if pool is not None:
                pool.shutdown(wait=True)

        metrics.wall_time = time.perf_counter() - started
        metrics.rounds = rounds
        metrics.tasks = [
            TaskRecord(
                task_id=state.index,
                duration=state.duration,
                executor=state.executor,
                attempts=state.attempts,
            )
            for state in states
        ]
        self.stages.append(metrics)
        if checkpoint_path is not None:
            # Final results are safely in memory; clean the temp path the
            # way the paper cleans its temporary HDFS directory.
            self.fs.delete(checkpoint_path)
        return StageResult(
            results=[state.result for state in states], metrics=metrics
        )

    # -- internals ---------------------------------------------------------------------
    def _run_round(
        self,
        pending: list[_TaskState],
        metrics: StageMetrics,
        pool: ProcessPoolExecutor | None = None,
    ) -> set[int]:
        """Attempt every pending task once; returns executors that died.

        ``pool`` is the stage's shared process pool (``"processes"``
        mode with more than one pending task; ``None`` otherwise).
        """
        # Draw failure fates up-front so inline and threaded execution see
        # the same deterministic stream.
        fates = (
            self._rng.random(len(pending)) < self.failure_rate
            if self.failure_rate > 0.0
            else np.zeros(len(pending), dtype=bool)
        )
        dead: set[int] = set()

        def attempt(position: int, state: _TaskState) -> None:
            executor = state.index % self.num_executors
            state.attempts += 1
            if executor in dead or fates[position]:
                dead.add(executor)
                metrics.failures += 1
                return
            begin = time.perf_counter()
            state.result = state.fn()
            state.duration = time.perf_counter() - begin
            state.executor = executor
            state.done = True

        if pool is not None:
            # Fates are settled in the parent, in task order (identical
            # to inline semantics: a task whose executor was killed
            # earlier this round fails too); only surviving attempts
            # ship to worker processes.
            runnable: list[_TaskState] = []
            for position, state in enumerate(pending):
                executor = state.index % self.num_executors
                state.attempts += 1
                if executor in dead or fates[position]:
                    dead.add(executor)
                    metrics.failures += 1
                    continue
                runnable.append(state)
            futures = [
                pool.submit(_timed_call, state.fn) for state in runnable
            ]
            for state, future in zip(runnable, futures):
                state.result, state.duration = future.result()
                state.executor = state.index % self.num_executors
                state.done = True
        elif self.mode == "threads" and len(pending) > 1:
            workers = min(self.num_executors, len(pending))
            with ThreadPoolExecutor(max_workers=workers) as thread_pool:
                futures = [
                    thread_pool.submit(attempt, position, state)
                    for position, state in enumerate(pending)
                ]
                for future in futures:
                    future.result()
        else:
            for position, state in enumerate(pending):
                attempt(position, state)
        return dead

    def last_stage(self) -> StageMetrics:
        """Metrics of the most recent stage (raises if none ran)."""
        if not self.stages:
            raise ClusterError("no stages have run on this cluster")
        return self.stages[-1]

    def __repr__(self) -> str:
        return (
            f"LocalCluster(num_executors={self.num_executors}, "
            f"mode={self.mode!r}, failure_rate={self.failure_rate})"
        )
