"""Per-task and per-stage execution metrics.

Every stage run by the cluster records how long each task took and how
many attempts it needed.  The experiment harness uses these to report
both *measured* wall time and the *simulated* makespan for an arbitrary
executor count (see :mod:`repro.sparklite.scheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sparklite.scheduler import simulated_makespan


@dataclass
class TaskRecord:
    """Execution record of one task (its final, successful attempt)."""

    task_id: int
    duration: float
    executor: int
    attempts: int = 1


@dataclass
class StageMetrics:
    """Execution record of one stage (a set of tasks run together)."""

    stage: str
    tasks: list[TaskRecord] = field(default_factory=list)
    wall_time: float = 0.0
    failures: int = 0
    rounds: int = 1

    @property
    def task_durations(self) -> list[float]:
        """Durations of all successful tasks, in task order."""
        return [task.duration for task in sorted(self.tasks, key=lambda t: t.task_id)]

    @property
    def total_task_time(self) -> float:
        """Sum of task durations (work, ignoring parallelism)."""
        return sum(task.duration for task in self.tasks)

    def makespan(self, num_executors: int) -> float:
        """Simulated completion time on ``num_executors`` executors."""
        return simulated_makespan(self.task_durations, num_executors)

    def __repr__(self) -> str:
        return (
            f"StageMetrics(stage={self.stage!r}, tasks={len(self.tasks)}, "
            f"wall={self.wall_time:.3f}s, work={self.total_task_time:.3f}s, "
            f"failures={self.failures})"
        )
