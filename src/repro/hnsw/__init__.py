"""Hierarchical Navigable Small World graphs, from scratch.

This subpackage implements the full HNSW algorithm of Malkov & Yashunin
(TPAMI 2016) that LANNS uses as its core ANN engine (Section 3 of the
paper): a multi-layer proximity graph with power-law level assignment,
greedy coarse-to-fine descent, beam search (``SEARCH-LAYER``) on the base
layer and the neighbor-selection *heuristic* with bidirectional link
shrinking.

Public API::

    from repro.hnsw import HnswIndex, HnswParams

    index = HnswIndex(dim=128, metric="euclidean", params=HnswParams(M=16))
    index.add(vectors, ids=my_ids)
    ids, dists = index.search(query, k=10)
"""

from repro.hnsw.params import HnswParams
from repro.hnsw.graph import HnswGraph, VisitedTable
from repro.hnsw.index import HnswIndex, build_hnsw

__all__ = ["HnswParams", "HnswGraph", "VisitedTable", "HnswIndex", "build_hnsw"]
