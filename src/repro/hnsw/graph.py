"""Layered adjacency storage for HNSW plus the visited-set machinery.

The graph is deliberately simple: for each node we keep one Python list of
neighbor ids per level the node participates in.  Python lists beat numpy
arrays here because neighbor lists are short (<= 2M entries), mutated on
every insert, and iterated in the hot loop.
"""

from __future__ import annotations

import threading


class HnswGraph:
    """The multi-layer proximity graph.

    Attributes
    ----------
    levels:
        ``levels[node]`` is the top level of ``node`` (0 = base layer only).
    entry_point:
        Node id used as the global entry point, or ``-1`` when empty.
    """

    __slots__ = ("_neighbors", "levels", "entry_point", "max_level")

    def __init__(self) -> None:
        # _neighbors[node][level] -> list[int]
        self._neighbors: list[list[list[int]]] = []
        self.levels: list[int] = []
        self.entry_point: int = -1
        self.max_level: int = -1

    def __len__(self) -> int:
        return len(self.levels)

    def add_node(self, level: int) -> int:
        """Create a node participating in layers ``0..level``; return its id."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        node = len(self.levels)
        self.levels.append(level)
        self._neighbors.append([[] for _ in range(level + 1)])
        return node

    def add_nodes(self, levels: list[int]) -> int:
        """Bulk :meth:`add_node`: create one node per level, in order.

        Returns the id of the first created node; ids are consecutive.
        Used by the batched insert path (a whole construction wave joins
        the graph before any of it is linked) and by the bulk loader.
        """
        if any(level < 0 for level in levels):
            raise ValueError("levels must be non-negative")
        first = len(self.levels)
        self.levels.extend(int(level) for level in levels)
        self._neighbors.extend(
            [[] for _ in range(level + 1)] for level in levels
        )
        return first

    def neighbors(self, node: int, level: int) -> list[int]:
        """The (mutable) neighbor list of ``node`` at ``level``."""
        return self._neighbors[node][level]

    def set_level_csr(
        self,
        level: int,
        nodes: list[int],
        indptr: list[int],
        indices: list[int],
    ) -> None:
        """Bulk-load one layer's adjacency from a CSR (indptr, indices) pair.

        ``indptr`` is indexed by node id (``len(self) + 1`` entries,
        absent nodes spanning empty ranges); ``nodes`` lists the nodes
        that participate at ``level``.  Both are flat Python lists so each
        neighbor list is one list slice -- no per-node array slicing or
        ``tolist()`` calls, which keeps bulk index loads O(edges) instead
        of O(nodes) numpy round-trips.
        """
        neighbors = self._neighbors
        for node in nodes:
            neighbors[node][level] = indices[indptr[node] : indptr[node + 1]]

    def set_neighbors(self, node: int, level: int, neighbor_ids: list[int]) -> None:
        """Replace the neighbor list of ``node`` at ``level``."""
        self._neighbors[node][level] = list(neighbor_ids)

    def add_link(self, node: int, level: int, neighbor: int) -> None:
        """Append a directed edge ``node -> neighbor`` at ``level``."""
        self._neighbors[node][level].append(neighbor)

    def degree(self, node: int, level: int) -> int:
        """Out-degree of ``node`` at ``level``."""
        return len(self._neighbors[node][level])

    # -- invariants (used by tests and sanity checks) ------------------------------
    def check_invariants(self, max_m: int, max_m0: int) -> None:
        """Raise ``AssertionError`` if structural invariants are violated.

        Checks: degrees within bounds, neighbors exist at the same level,
        no self-loops, entry point is at ``max_level``.
        """
        n = len(self)
        if n == 0:
            assert self.entry_point == -1
            return
        assert 0 <= self.entry_point < n
        assert self.levels[self.entry_point] == self.max_level
        for node in range(n):
            for level in range(self.levels[node] + 1):
                nbrs = self._neighbors[node][level]
                bound = max_m0 if level == 0 else max_m
                assert len(nbrs) <= bound, (
                    f"node {node} level {level} degree {len(nbrs)} > {bound}"
                )
                assert node not in nbrs, f"self-loop at node {node}"
                assert len(set(nbrs)) == len(nbrs), (
                    f"duplicate neighbors at node {node} level {level}"
                )
                for nbr in nbrs:
                    assert 0 <= nbr < n
                    assert self.levels[nbr] >= level, (
                        f"node {node} links to {nbr} above its top level"
                    )


class VisitedTable:
    """Epoch-based visited marker: O(1) reset between searches.

    A plain ``set`` allocates per search; a boolean array needs an O(n)
    clear.  Tagging each slot with the epoch of its last visit makes reset a
    single integer increment.

    The tags live in a plain Python list (not numpy): the search inner
    loop tests one node at a time, and CPython list indexing is an order
    of magnitude faster than numpy scalar indexing.  ``search_layer``
    accesses ``tags`` / ``epoch`` directly for the same reason.
    """

    __slots__ = ("tags", "epoch")

    def __init__(self, capacity: int = 1024) -> None:
        self.tags: list[int] = [0] * max(capacity, 1)
        self.epoch = 0

    def reset(self, capacity: int) -> None:
        """Start a new search over ``capacity`` nodes."""
        if capacity > len(self.tags):
            self.tags.extend([0] * (2 * capacity - len(self.tags)))
        self.epoch += 1

    def visit(self, node: int) -> None:
        """Mark ``node`` visited in the current epoch."""
        self.tags[node] = self.epoch

    def visited(self, node: int) -> bool:
        """Whether ``node`` was visited in the current epoch."""
        return self.tags[node] == self.epoch


class VisitedPool:
    """Thread-local pool of :class:`VisitedTable` instances.

    Offline query pipelines search one index from several threads; giving
    each thread its own table avoids both locking and per-query allocation.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def __getstate__(self) -> dict:
        # Thread-local table caches are scratch space bound to threads of
        # the originating process; a pickled pool (an index crossing a
        # processes-mode cluster boundary) restarts empty.
        return {}

    def __setstate__(self, state: dict) -> None:
        self._local = threading.local()

    def get(self, capacity: int) -> VisitedTable:
        """Borrow this thread's table, reset for ``capacity`` nodes."""
        table = getattr(self._local, "table", None)
        if table is None:
            table = VisitedTable(capacity)
            self._local.table = table
        table.reset(capacity)
        return table

    def get_many(self, capacity: int, count: int) -> list[VisitedTable]:
        """Borrow ``count`` reset tables for one lockstep batch search.

        The batch query path runs ``count`` searches concurrently in one
        thread, so each needs its own visited set; the tables are reused
        across batches on the same thread.
        """
        tables = getattr(self._local, "tables", None)
        if tables is None:
            tables = []
            self._local.tables = tables
        while len(tables) < count:
            tables.append(VisitedTable(capacity))
        borrowed = tables[:count]
        for table in borrowed:
            table.reset(capacity)
        return borrowed
