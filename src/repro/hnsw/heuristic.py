"""Neighbor selection for HNSW link construction.

Implements ``SELECT-NEIGHBORS-HEURISTIC`` (Algorithm 4 of Malkov &
Yashunin): a candidate ``e`` is linked only if it is closer to the new
point than to every already-selected neighbor.  This favours edges that
span *different* directions, which is what keeps the graph navigable in
clustered data; plain "closest M" selection degrades recall noticeably
(see ``benchmarks/bench_ablation_heuristic.py``).
"""

from __future__ import annotations

import numpy as np

from repro.distance.scorer import Scorer

_IDS_DTYPE = np.int64


def select_neighbors_simple(
    candidates: list[tuple[float, int]], m: int
) -> list[tuple[float, int]]:
    """Plain closest-``m`` selection (``SELECT-NEIGHBORS-SIMPLE``)."""
    return sorted(candidates)[:m]


def select_neighbors_heuristic(
    scorer: Scorer,
    candidates: list[tuple[float, int]],
    m: int,
    *,
    keep_pruned: bool = True,
) -> list[tuple[float, int]]:
    """Diversity-aware neighbor selection.

    Parameters
    ----------
    scorer:
        Used to measure candidate-to-candidate distances (reduced space).
    candidates:
        ``(reduced_distance_to_query, node)`` pairs, any order.
    m:
        Maximum number of neighbors to select.
    keep_pruned:
        When ``True``, pad the result with the best discarded candidates
        (``keepPrunedConnections`` in the paper).

    Returns
    -------
    Selected ``(reduced_distance, node)`` pairs, at most ``m``.
    """
    if m <= 0:
        return []
    ordered = sorted(candidates)
    if len(ordered) <= m:
        return ordered

    # One GEMM gives all candidate-to-candidate distances; the selection
    # loop then runs on plain Python floats (no per-pair numpy calls).
    ids = np.asarray([node for _, node in ordered], dtype=_IDS_DTYPE)
    cross = scorer.pairwise_ids(ids).tolist()

    selected: list[tuple[float, int]] = []
    selected_positions: list[int] = []
    discarded: list[tuple[float, int]] = []
    for position, (dist, node) in enumerate(ordered):
        if len(selected) >= m:
            discarded.append((dist, node))
            continue
        # Keep `node` only if it is closer to the query than to every
        # already-selected neighbor.
        row = cross[position]
        if any(row[other] < dist for other in selected_positions):
            discarded.append((dist, node))
        else:
            selected.append((dist, node))
            selected_positions.append(position)
    if keep_pruned and len(selected) < m:
        selected.extend(discarded[: m - len(selected)])
        selected.sort()
    return selected
