"""Neighbor selection for HNSW link construction.

Implements ``SELECT-NEIGHBORS-HEURISTIC`` (Algorithm 4 of Malkov &
Yashunin): a candidate ``e`` is linked only if it is closer to the new
point than to every already-selected neighbor.  This favours edges that
span *different* directions, which is what keeps the graph navigable in
clustered data; plain "closest M" selection degrades recall noticeably
(see ``benchmarks/bench_ablation_heuristic.py``).
"""

from __future__ import annotations

import numpy as np

from repro.distance.scorer import Scorer

_IDS_DTYPE = np.int64


def select_neighbors_simple(
    candidates: list[tuple[float, int]], m: int
) -> list[tuple[float, int]]:
    """Plain closest-``m`` selection (``SELECT-NEIGHBORS-SIMPLE``)."""
    return sorted(candidates)[:m]


def select_neighbors_heuristic(
    scorer: Scorer,
    candidates: list[tuple[float, int]],
    m: int,
    *,
    keep_pruned: bool = True,
) -> list[tuple[float, int]]:
    """Diversity-aware neighbor selection (a batch of one problem).

    Parameters
    ----------
    scorer:
        Used to measure candidate-to-candidate distances (reduced space).
    candidates:
        ``(reduced_distance_to_query, node)`` pairs, any order.
    m:
        Maximum number of neighbors to select.
    keep_pruned:
        When ``True``, pad the result with the best discarded candidates
        (``keepPrunedConnections`` in the paper).

    Returns
    -------
    Selected ``(reduced_distance, node)`` pairs, at most ``m``.
    """
    return select_neighbors_heuristic_batch(
        scorer, [candidates], m, keep_pruned=keep_pruned
    )[0]


def select_neighbors_heuristic_batch(
    scorer: Scorer,
    problems: list[list[tuple[float, int]]],
    m: int,
    *,
    keep_pruned: bool = True,
) -> list[list[tuple[float, int]]]:
    """Run many independent neighbor selections in one vectorised round.

    Problem ``p`` gets exactly the result of
    :func:`select_neighbors_heuristic` on ``problems[p]``: the candidate
    ids of every problem that actually needs pruning are padded into one
    ``(P, C)`` stack and all candidate-to-candidate distances come from a
    single :meth:`~repro.distance.scorer.Scorer.pairwise_ids_batch` call
    (each stack slice is an independent GEMM, so grouping problems never
    changes any problem's distances).  The selection loop then runs on
    plain Python floats.  This is what the batched construction wave uses
    to select every (row, layer) neighbor list of a wave at once.
    """
    if m <= 0:
        return [[] for _ in problems]
    output: list[list[tuple[float, int]] | None] = [None] * len(problems)
    pending: list[tuple[int, list[tuple[float, int]]]] = []
    for position, candidates in enumerate(problems):
        ordered = sorted(candidates)
        if len(ordered) <= m:
            output[position] = ordered
        else:
            pending.append((position, ordered))
    if not pending:
        return output  # type: ignore[return-value]

    # One batched GEMM gives every pending problem's cross distances.
    # Padding repeats the problem's own first id; the selection loop
    # below never looks past each problem's true candidate count.
    width = max(len(ordered) for _, ordered in pending)
    ids = np.empty((len(pending), width), dtype=_IDS_DTYPE)
    for row, (_, ordered) in enumerate(pending):
        ids[row, : len(ordered)] = [node for _, node in ordered]
        ids[row, len(ordered) :] = ordered[0][1]
    cross_stack = scorer.pairwise_ids_batch(ids)

    for row, (position, ordered) in enumerate(pending):
        count = len(ordered)
        cross = cross_stack[row]
        query_dists = np.asarray([dist for dist, _ in ordered])
        # Column-wise formulation of the selection loop: a candidate is
        # discarded iff it is closer to some already-selected neighbor
        # than to the query, so *selecting* index ``s`` dominates every
        # later candidate ``t`` with ``cross[t, s] < dist_to_query[t]``.
        # One boolean vector op per selected neighbor (<= m of them)
        # replaces the per-pair Python scan over the full cross matrix.
        dominated = np.zeros(count, dtype=bool)
        selected_idx: list[int] = []
        for index in range(count):
            if dominated[index]:
                continue
            selected_idx.append(index)
            if len(selected_idx) >= m:
                break
            closer = cross[:count, index] < query_dists
            closer[: index + 1] = False
            dominated |= closer
        selected = [ordered[index] for index in selected_idx]
        if keep_pruned and len(selected) < m:
            keep = np.ones(count, dtype=bool)
            keep[selected_idx] = False
            # Discard order is candidate order, exactly as the scan.
            for index in np.flatnonzero(keep)[: m - len(selected)]:
                selected.append(ordered[index])
            selected.sort()
        output[position] = selected
    return output  # type: ignore[return-value]
