"""The public HNSW index: insertion, search, external ids, persistence.

Implements ``INSERT`` (Algorithm 1) and ``K-NN-SEARCH`` (Algorithm 5) of
Malkov & Yashunin on top of the primitives in :mod:`repro.hnsw.search` and
:mod:`repro.hnsw.heuristic`.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.distance.scorer import QuantizedStore, Scorer
from repro.errors import IndexNotBuiltError
from repro.hnsw.graph import HnswGraph, VisitedPool
from repro.hnsw.heuristic import (
    select_neighbors_heuristic,
    select_neighbors_heuristic_batch,
    select_neighbors_simple,
)
from repro.hnsw.params import HnswParams
from repro.hnsw.search import (
    descend_to_level,
    descend_to_level_batch,
    descend_to_levels_batch,
    search_layer,
    search_layer_batch,
)
from repro.obs.tracing import current_recorder, maybe_span
from repro.utils.validation import as_matrix, as_vector

_IDS_DTYPE = np.int64

#: Upper bound on queries searched in one lockstep round.  Each lockstep
#: query needs its own O(num_nodes) visited table (pooled per thread), so
#: an unbounded batch would cost O(B * num_nodes) memory; larger groups
#: also stop amortising once the flat scoring calls are a few thousand
#: rows wide.  search_batch slices big batches into groups of this size.
_MAX_LOCKSTEP = 64


class HnswIndex:
    """A Hierarchical Navigable Small World index.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    metric:
        ``"euclidean"``, ``"cosine"`` or ``"inner_product"``.
    params:
        Hyper-parameters; see :class:`~repro.hnsw.params.HnswParams`.

    Notes
    -----
    The index is *incremental*: :meth:`add` may be called repeatedly.
    External ids are arbitrary non-negative integers (defaults to
    0..n-1 in insertion order); duplicates are rejected.
    """

    def __init__(
        self,
        dim: int,
        metric: str = "euclidean",
        params: HnswParams | None = None,
    ) -> None:
        self.params = params or HnswParams()
        self.metric_name = metric if isinstance(metric, str) else metric.name
        self._scorer = Scorer(metric, dim)
        self._graph = HnswGraph()
        self._external_ids: list[int] = []
        self._id_to_row: dict[int, int] = {}
        self._rng = np.random.default_rng(self.params.seed)
        self._visited_pool = VisitedPool()
        # Compressed-domain scoring tier: the beam search traverses on
        # codes, the final candidates are rescored exactly (see
        # _search_many_quantized).  Construction always runs on float32.
        self._quantized: QuantizedStore | None = None
        if self.params.quantize != "none":
            self._quantized = QuantizedStore(
                self._scorer,
                self.params.quantize,
                pq_subspaces=self.params.pq_subspaces,
                seed=self.params.seed,
            )

    # -- introspection -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._graph)

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._scorer.dim

    @property
    def max_level(self) -> int:
        """Top layer currently present (-1 when empty)."""
        return self._graph.max_level

    @property
    def graph(self) -> HnswGraph:
        """The underlying layered graph (read-mostly; used by tests)."""
        return self._graph

    @property
    def external_ids(self) -> np.ndarray:
        """External ids in internal row order."""
        return np.asarray(self._external_ids, dtype=_IDS_DTYPE)

    @property
    def distance_ops(self) -> int:
        """Full-vector distance evaluations so far (build + search)."""
        return self._scorer.ops

    def reset_distance_ops(self) -> None:
        """Zero the distance counter (e.g. after build, before search)."""
        self._scorer.ops = 0

    def vector(self, external_id: int) -> np.ndarray:
        """Stored vector for ``external_id`` (normalised for cosine)."""
        return np.array(self._scorer.data[self._id_to_row[external_id]])

    # -- construction ----------------------------------------------------------------
    def _draw_level(self) -> int:
        uniform = float(self._rng.random())
        # Guard against log(0).
        uniform = max(uniform, np.finfo(np.float64).tiny)
        return int(-math.log(uniform) * self.params.effective_ml)

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> None:
        """Insert vectors (Algorithm 1 of Malkov & Yashunin).

        With ``params.build_batch > 1`` (the default) rows are inserted
        in lockstep construction waves (:meth:`_insert_wave`); ``<= 1``
        keeps the one-row-at-a-time sequential path.  Both paths draw one
        level per row from the same RNG stream, in row order.

        Parameters
        ----------
        vectors:
            Shape ``(n, dim)`` or a single ``(dim,)`` vector.
        ids:
            Optional external ids, one per vector; must be new.
        """
        vectors = as_matrix(vectors, dim=self.dim, name="vectors")
        n = vectors.shape[0]
        if ids is None:
            start = (max(self._id_to_row) + 1) if self._id_to_row else 0
            ids = np.arange(start, start + n, dtype=_IDS_DTYPE)
        else:
            ids = np.asarray(ids, dtype=_IDS_DTYPE)
            if ids.shape != (n,):
                raise ValueError(
                    f"ids has shape {ids.shape}, expected ({n},)"
                )
            if (ids < 0).any():
                # -1 is the batch-result padding sentinel; negative
                # external ids would be indistinguishable from it.
                raise ValueError("external ids must be non-negative")
            if np.unique(ids).size != n:
                raise ValueError("duplicate ids within one add() call")
        if self._id_to_row and n >= 1024:
            # Bulk insert: one vectorised membership check.  The
            # existing-id array costs O(len(index)) to materialise, so
            # this only pays off when the batch is large enough to
            # amortise it.
            clashes = np.isin(ids, self.external_ids)
            if clashes.any():
                clash = int(ids[np.flatnonzero(clashes)[0]])
                raise ValueError(f"id {clash} already present")
        elif self._id_to_row:
            # Small incremental add: the dict probe is O(n) regardless
            # of index size, where the vectorised check would be
            # O(len(index)) per call -- quadratic across many calls.
            for external_id in ids.tolist():
                if external_id in self._id_to_row:
                    raise ValueError(f"id {external_id} already present")
        rows = self._scorer.add(vectors)
        row_list = rows.tolist()
        self._external_ids.extend(ids.tolist())
        for row, external_id in zip(row_list, ids.tolist()):
            self._id_to_row[external_id] = row

        wave = self.params.build_batch
        if wave <= 1 or n <= 1:
            for row in row_list:
                self._insert_row(row)
        else:
            # Levels are drawn up-front in row order: the batched path
            # consumes the RNG stream exactly like the sequential one.
            levels = [self._draw_level() for _ in range(n)]
            start = 0
            if len(self._graph) == 0:
                # Bootstrap an empty graph: the first row becomes the
                # entry point the first wave descends from.
                self._insert_row(row_list[0], level=levels[0])
                start = 1
            for begin in range(start, n, wave):
                self._insert_wave(
                    row_list[begin : begin + wave],
                    levels[begin : begin + wave],
                )
        if self._quantized is not None:
            # Retrain the codec over the full stored matrix: codes must
            # cover every row before the next search, and refitting on
            # the same data + seed is deterministic.
            self._quantized.refresh()

    def _insert_row(self, row: int, level: int | None = None) -> None:
        params = self.params
        graph = self._graph
        if level is None:
            level = self._draw_level()
        query = self._scorer.data[row]

        if len(graph) == 0:
            graph.add_node(level)
            graph.entry_point = row
            graph.max_level = level
            return

        previous_max = graph.max_level
        graph.add_node(level)
        visited = self._visited_pool.get(len(graph))
        # The squared query norm is constant across the whole insert;
        # hoist it out of the thousands of score_ids calls below.
        query_sq = float(query @ query)

        # Phase 1: greedy descent through layers above `level`.
        entry, entry_dist = descend_to_level(
            graph, self._scorer, query, level, query_sq
        )

        # Phase 2: beam search and linking from min(level, previous_max) to 0.
        ef = max(params.ef_construction, 1)
        entries = [(entry_dist, entry)]
        for layer in range(min(level, previous_max), -1, -1):
            visited.reset(len(graph))
            candidates = search_layer(
                graph,
                self._scorer,
                query,
                entries,
                ef,
                layer,
                visited,
                query_sq,
            )
            m = params.M
            if params.use_heuristic:
                neighbors = select_neighbors_heuristic(
                    self._scorer,
                    candidates,
                    m,
                    keep_pruned=params.keep_pruned_connections,
                )
            else:
                neighbors = select_neighbors_simple(candidates, m)
            graph.set_neighbors(row, layer, [node for _, node in neighbors])
            max_degree = (
                params.effective_max_m0 if layer == 0 else params.effective_max_m
            )
            for dist, neighbor in neighbors:
                self._link_back(neighbor, row, dist, layer, max_degree)
            entries = candidates  # reuse the beam as entries for the next layer
        if level > previous_max:
            graph.entry_point = row
            graph.max_level = level

    def _insert_wave(self, rows: list[int], levels: list[int]) -> None:
        """Insert one construction wave through the lockstep batch kernels.

        The whole wave descends and beam-searches against a *snapshot* of
        the graph (wave members are unreachable until the apply phase, so
        every row sees the same pre-wave links), pooling each round's
        distance evaluations into one vectorised call exactly like the
        batched query path.  Because wave members cannot find each other
        by traversal, every row's candidate lists are augmented with its
        *earlier* wave-mates -- the neighbors sequential insertion would
        have been able to reach -- scored by one wave-wide GEMM.  Neighbor
        selection for all (row, layer) problems runs as one
        :func:`select_neighbors_heuristic_batch` round, and links (forward
        lists plus reverse-link shrinking) are applied in ascending row
        order, so the same seed and wave size always produce the same
        graph.  The graph must be non-empty.
        """
        params = self.params
        graph = self._graph
        scorer = self._scorer
        count = len(rows)
        previous_max = graph.max_level
        graph.add_nodes(levels)

        queries = scorer.data[rows]  # fancy indexing: a true snapshot copy
        query_sq = scorer.query_sq_norms(queries)
        wave_ids = np.asarray(rows, dtype=_IDS_DTYPE)
        # Intra-wave candidate distances: earlier rows of the wave are
        # legitimate neighbors for later ones even though no traversal
        # can reach them yet.  Each row only offers its nearest earlier
        # wave-mates to the selection heuristic -- selection keeps at
        # most M links, so a 2x pool preserves the diversity choice while
        # keeping the padded selection problems small.
        wave_cross_np = scorer.pairwise_ids(wave_ids)
        wave_cross = wave_cross_np.tolist()
        mate_cap = 2 * params.M
        nearest_mates: list[list[int]] = [[]]
        for i in range(1, count):
            order = np.argsort(wave_cross_np[i, :i], kind="stable")
            nearest_mates.append(order[:mate_cap].tolist())

        join = [min(level, previous_max) for level in levels]
        entries, entry_dists = descend_to_levels_batch(
            graph, scorer, queries, join, query_sq
        )
        beams: list[list[tuple[float, int]]] = [
            [(entry_dists[i], entries[i])] for i in range(count)
        ]
        ef = max(params.ef_construction, 1)
        layer_candidates: dict[tuple[int, int], list[tuple[float, int]]] = {}
        for layer in range(max(join), -1, -1):
            active = [i for i in range(count) if join[i] >= layer]
            sub_queries = queries[active]
            tables = self._visited_pool.get_many(len(graph), len(active))
            found = search_layer_batch(
                graph,
                scorer,
                sub_queries,
                [beams[i] for i in active],
                ef,
                layer,
                tables,
                query_sq[active],
            )
            for i, candidates in zip(active, found):
                layer_candidates[(i, layer)] = candidates
                beams[i] = candidates

        # One vectorised selection round for every (row, layer) problem,
        # in apply order: row ascending, layer descending.
        problem_keys: list[tuple[int, int]] = []
        problems: list[list[tuple[float, int]]] = []
        for i in range(count):
            for layer in range(join[i], -1, -1):
                candidates = list(layer_candidates[(i, layer)])
                cross_row = wave_cross[i]
                for j in nearest_mates[i]:
                    if levels[j] >= layer:
                        candidates.append((cross_row[j], rows[j]))
                problem_keys.append((i, layer))
                problems.append(candidates)
        if params.use_heuristic:
            selections = select_neighbors_heuristic_batch(
                scorer,
                problems,
                params.M,
                keep_pruned=params.keep_pruned_connections,
            )
        else:
            selections = [
                select_neighbors_simple(problem, params.M)
                for problem in problems
            ]

        # Apply phase: deterministic row order.  Reverse links are
        # appended without per-edge shrinking; (node, layer) pairs pushed
        # over their degree bound are re-selected afterwards in one
        # vectorised round (one shrink per wave instead of one per edge,
        # and the re-selection sees every wave row that linked in).
        max_m = params.effective_max_m
        max_m0 = params.effective_max_m0
        overfull: dict[tuple[int, int], None] = {}
        for (i, layer), selected in zip(problem_keys, selections):
            row = rows[i]
            graph.set_neighbors(row, layer, [node for _, node in selected])
            max_degree = max_m0 if layer == 0 else max_m
            for _, neighbor in selected:
                graph.add_link(neighbor, layer, row)
                if graph.degree(neighbor, layer) > max_degree:
                    overfull[(neighbor, layer)] = None
        if overfull:
            self._shrink_links_wave(list(overfull))

        # Entry-point evolution mirrors sequential insertion: the first
        # row to exceed the running maximum takes over.
        running_max = previous_max
        for i in range(count):
            if levels[i] > running_max:
                graph.entry_point = rows[i]
                running_max = levels[i]
        graph.max_level = running_max

    def _shrink_links_wave(self, targets: list[tuple[int, int]]) -> None:
        """Re-select the out-links of over-full ``(node, layer)`` pairs.

        The wave counterpart of the shrink inside :meth:`_link_back`: all
        node-to-neighbor distances come from one
        :meth:`~repro.distance.scorer.Scorer.score_pairs` call and the
        re-selections run as (at most) two
        :func:`select_neighbors_heuristic_batch` rounds -- one per degree
        bound -- instead of one small GEMM per over-full edge.  Unlike the
        sequential path, each node is shrunk once per wave with *every*
        wave row that linked to it in the candidate set, which can only
        widen the pool the diversity heuristic picks from.

        Also unlike the sequential shrink, pruned candidates are never
        kept: an over-full list is being *pruned*, and padding it
        straight back to the degree bound densifies the graph far beyond
        the sequential path's degree profile -- which measurably slows
        every later wave's beam search.  hnswlib's reverse-link shrink
        makes the same call.
        """
        graph = self._graph
        scorer = self._scorer
        params = self.params
        neighbor_lists = [
            graph.neighbors(node, layer) for node, layer in targets
        ]
        flat_rows: list[int] = []
        flat_ids: list[int] = []
        for position, nbrs in enumerate(neighbor_lists):
            flat_rows.extend([position] * len(nbrs))
            flat_ids.extend(nbrs)
        node_ids = np.asarray(
            [node for node, _ in targets], dtype=_IDS_DTYPE
        )
        queries = scorer.data[node_ids]
        dists = scorer.score_pairs(
            queries,
            np.asarray(flat_rows),
            np.asarray(flat_ids, dtype=_IDS_DTYPE),
            scorer.query_sq_norms(queries),
        ).tolist()
        # Two batch rounds at most: the degree bound differs between the
        # base layer and the upper layers.
        by_bound: dict[int, tuple[list[int], list[list[tuple[float, int]]]]]
        by_bound = {}
        offset = 0
        for position, (_node, layer) in enumerate(targets):
            nbrs = neighbor_lists[position]
            problem = list(zip(dists[offset : offset + len(nbrs)], nbrs))
            offset += len(nbrs)
            bound = (
                params.effective_max_m0
                if layer == 0
                else params.effective_max_m
            )
            positions, problems = by_bound.setdefault(bound, ([], []))
            positions.append(position)
            problems.append(problem)
        for bound, (positions, problems) in by_bound.items():
            if params.use_heuristic:
                reselected = select_neighbors_heuristic_batch(
                    scorer,
                    problems,
                    bound,
                    keep_pruned=False,
                )
            else:
                reselected = [
                    select_neighbors_simple(problem, bound)
                    for problem in problems
                ]
            for position, selected in zip(positions, reselected):
                node, layer = targets[position]
                graph.set_neighbors(
                    node, layer, [nbr for _, nbr in selected]
                )

    def _link_back(
        self, node: int, new_row: int, dist: float, layer: int, max_degree: int
    ) -> None:
        """Add the reverse edge ``node -> new_row``, shrinking if over-full."""
        graph = self._graph
        neighbors = graph.neighbors(node, layer)
        if len(neighbors) < max_degree:
            graph.add_link(node, layer, new_row)
            return
        # Over-full: re-select the best `max_degree` among old + new using
        # the same diversity heuristic, measured from `node`.
        node_vector = self._scorer.data[node]
        candidate_ids = neighbors + [new_row]
        dists = self._scorer.score_ids(
            node_vector, np.asarray(candidate_ids, dtype=_IDS_DTYPE)
        )
        candidates = list(zip(dists.tolist(), candidate_ids))
        if self.params.use_heuristic:
            reselected = select_neighbors_heuristic(
                self._scorer,
                candidates,
                max_degree,
                keep_pruned=self.params.keep_pruned_connections,
            )
        else:
            reselected = select_neighbors_simple(candidates, max_degree)
        graph.set_neighbors(node, layer, [nbr for _, nbr in reselected])

    # -- search ------------------------------------------------------------------------
    def _search_many(
        self, queries: np.ndarray, k: int, ef: int | None, cost=None
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Lockstep-search a prepared batch; per-query (ids, true_dists).

        This is the single query code path: :meth:`search` runs it with a
        batch of one.  All distance evaluations go through the
        batch-composition-invariant :meth:`Scorer.score_pairs` kernel, so
        results do not depend on how queries are grouped into batches.

        ``cost`` (an optional :class:`~repro.obs.cost.SearchCost`)
        accumulates hops / candidates from the kernels plus this batch's
        ``Scorer.ops`` delta as ``distance_comps`` -- under concurrent
        searches of one segment the delta can misattribute work between
        batches, but the totals stay exact.  When a tracing recorder is
        active (:func:`~repro.obs.tracing.current_recorder`), descend /
        beam / rescore stages are recorded as spans; with no recorder
        and ``cost=None`` this path is bit-for-bit the pre-accounting
        hot path.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if len(self._graph) == 0:
            raise IndexNotBuiltError("search on an empty HNSW index")
        if len(self._graph) < self.params.min_graph_size:
            return self._search_many_exact(queries, k, cost)
        prepared = self._scorer.prepare_queries(queries)
        query_sq = self._scorer.query_sq_norms(prepared)
        beam = max(ef if ef is not None else self.params.ef_search, k)
        if self._quantized is not None:
            return self._search_many_quantized(
                prepared, query_sq, k, beam, cost
            )

        ops_before = self._scorer.ops if cost is not None else 0
        recorder = current_recorder()
        with maybe_span(recorder, "descend"):
            entries, entry_dists = descend_to_level_batch(
                self._graph, self._scorer, prepared, 0, query_sq, cost
            )
        tables = self._visited_pool.get_many(
            len(self._graph), queries.shape[0]
        )
        with maybe_span(
            recorder, "beam", ef=beam, num_queries=queries.shape[0]
        ):
            per_query = search_layer_batch(
                self._graph,
                self._scorer,
                prepared,
                [
                    [(entry_dists[i], entries[i])]
                    for i in range(queries.shape[0])
                ],
                beam,
                0,
                tables,
                query_sq,
                cost,
            )
        if cost is not None:
            cost.distance_comps += self._scorer.ops - ops_before
        external = self.external_ids  # one O(n) list->array conversion
        output: list[tuple[np.ndarray, np.ndarray]] = []
        for candidates in per_query:
            top = candidates[:k]
            rows = np.asarray([node for _, node in top], dtype=_IDS_DTYPE)
            reduced = np.asarray([dist for dist, _ in top], dtype=np.float64)
            output.append(
                (external[rows], self._scorer.to_true(reduced))
            )
        return output

    def _search_many_quantized(
        self,
        prepared: np.ndarray,
        query_sq: np.ndarray,
        k: int,
        beam: int,
        cost=None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Quantized beam search + exact rescore over a prepared batch.

        The descent and beam traversal run entirely on compressed codes:
        a per-batch :meth:`QuantizedStore.view` slots into the unchanged
        lockstep kernels in place of the float scorer, so each scoring
        round gathers int8 rows (or PQ lookup tables) instead of float32
        vectors.  Approximate scores only decide *which* candidates
        survive -- the beam keeps ``max(beam, rescore_k)`` of them, every
        survivor is then rescored by the same batch-composition-invariant
        float32 :meth:`Scorer.score_pairs` kernel the float path scores
        with, and the top ``k`` after the exact re-sort are returned.
        Returned distances are therefore bit-identical to the float path
        for any candidate both paths return.
        """
        num_queries = prepared.shape[0]
        depth = max(beam, self.params.rescore_k)
        view = self._quantized.view(prepared)
        ops_before = self._scorer.ops if cost is not None else 0
        recorder = current_recorder()
        with maybe_span(recorder, "descend", quantized=True):
            entries, entry_dists = descend_to_level_batch(
                self._graph, view, prepared, 0, query_sq, cost
            )
        tables = self._visited_pool.get_many(len(self._graph), num_queries)
        with maybe_span(
            recorder, "beam", ef=depth, num_queries=num_queries,
            quantized=True,
        ):
            per_query = search_layer_batch(
                self._graph,
                view,
                prepared,
                [[(entry_dists[i], entries[i])] for i in range(num_queries)],
                depth,
                0,
                tables,
                query_sq,
                cost,
            )
        # Exact rescore: one flat float32 scoring call for every beam
        # survivor of the whole batch.
        flat_ids: list[int] = []
        span_counts: list[int] = []
        for candidates in per_query:
            span_counts.append(len(candidates))
            flat_ids.extend(node for _, node in candidates)
        with maybe_span(recorder, "rescore", rows=len(flat_ids)):
            exact = self._scorer.score_pairs(
                prepared,
                np.repeat(np.arange(num_queries), span_counts),
                np.asarray(flat_ids, dtype=_IDS_DTYPE),
                query_sq,
            ).tolist()
        if cost is not None:
            cost.rescore_rows += len(flat_ids)
            cost.distance_comps += self._scorer.ops - ops_before
        external = self.external_ids
        output: list[tuple[np.ndarray, np.ndarray]] = []
        offset = 0
        for count in span_counts:
            nodes = flat_ids[offset : offset + count]
            # Same (distance, node) tie-break the float path's sorted
            # beam produces.
            top = sorted(zip(exact[offset : offset + count], nodes))[:k]
            offset += count
            rows = np.asarray([node for _, node in top], dtype=_IDS_DTYPE)
            reduced = np.asarray([dist for dist, _ in top], dtype=np.float64)
            output.append((external[rows], self._scorer.to_true(reduced)))
        return output

    def _search_many_exact(
        self, queries: np.ndarray, k: int, cost=None
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Exact fallback for tiny indices: one GEMM scan, no traversal.

        Used when the index holds fewer than ``params.min_graph_size``
        vectors: ``Scorer.score_all_batch`` scores the whole segment as
        a flat ``(1, d) @ (d, n)`` product per row, which beats beam
        search on segments small enough that the graph buys nothing --
        and is exact by construction.  Rows are scored one at a time on
        purpose: BLAS accumulation order inside a multi-row GEMM varies
        with the batch shape, and the serving stack's coalescing layers
        rely on every row's result being bit-independent of which other
        rows share the batch.  Results are sorted ascending by reduced
        distance with ties broken by internal row (stable argsort), the
        same order the blocked exact scan in
        :func:`repro.offline.brute_force.exact_top_k` produces.
        """
        ops_before = self._scorer.ops if cost is not None else 0
        prepared = self._scorer.prepare_queries(queries)
        scores = np.vstack(
            [
                self._scorer.score_all_batch(prepared[row : row + 1])
                for row in range(prepared.shape[0])
            ]
        )
        if cost is not None:
            cost.distance_comps += self._scorer.ops - ops_before
        count = scores.shape[1]
        keep = min(k, count)
        order = np.argsort(scores, axis=1, kind="stable")[:, :keep]
        external = self.external_ids
        output: list[tuple[np.ndarray, np.ndarray]] = []
        for row in range(queries.shape[0]):
            rows = order[row]
            reduced = scores[row, rows].astype(np.float64)
            output.append((external[rows], self._scorer.to_true(reduced)))
        return output

    def search(
        self, query: np.ndarray, k: int, ef: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return the approximate ``k`` nearest neighbors of ``query``.

        A thin wrapper over :meth:`search_batch` with a batch of one.

        Parameters
        ----------
        query:
            A single ``(dim,)`` vector.
        k:
            Number of neighbors.
        ef:
            Beam width; defaults to ``max(params.ef_search, k)``.

        Returns
        -------
        (ids, distances):
            External ids and *true* metric distances, ascending, length
            ``min(k, len(index))``.
        """
        query = as_vector(query, dim=self.dim, name="query")
        return self._search_many(query[np.newaxis, :], k, ef)[0]

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        ef: int | None = None,
        *,
        cost=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Search many queries in lockstep; ``(B, k)`` id/distance arrays.

        Per-query results are identical to calling :meth:`search` in a
        loop; the batch amortises query preparation, entry-point descent
        setup and pools every round's distance evaluations into one
        vectorised call.  Rows are padded with id ``-1`` / distance
        ``inf`` when the index holds fewer than ``k`` points.  ``cost``
        optionally accumulates this batch's search work (see
        :class:`~repro.obs.cost.SearchCost`); results are identical
        either way.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = as_matrix(queries, dim=self.dim, name="queries")
        n = queries.shape[0]
        ids = np.full((n, k), -1, dtype=_IDS_DTYPE)
        dists = np.full((n, k), np.inf, dtype=np.float64)
        if n == 0:
            return ids, dists
        for start in range(0, n, _MAX_LOCKSTEP):
            group = queries[start : start + _MAX_LOCKSTEP]
            for i, (found_ids, found_dists) in enumerate(
                self._search_many(group, k, ef, cost), start=start
            ):
                count = len(found_ids)
                ids[i, :count] = found_ids
                dists[i, :count] = found_dists
        return ids, dists

    # -- persistence --------------------------------------------------------------------
    def to_arrays(self) -> dict:
        """Serialize to a dict of numpy arrays + metadata (npz-friendly).

        Adjacency is stored per level as a CSR-style (indptr, indices)
        pair over all nodes; nodes below a level contribute empty ranges.
        """
        n = len(self._graph)
        payload: dict = {
            "format_version": np.asarray(1),
            "metric": np.asarray(self.metric_name),
            "dim": np.asarray(self.dim),
            "count": np.asarray(n),
            "entry_point": np.asarray(self._graph.entry_point),
            "max_level": np.asarray(self._graph.max_level),
            "levels": np.asarray(self._graph.levels, dtype=np.int32),
            "external_ids": self.external_ids,
            "vectors": np.array(self._scorer.data),
            "params_json": np.asarray(_params_to_json(self.params)),
        }
        levels = np.asarray(self._graph.levels, dtype=np.int64)
        for level in range(self._graph.max_level + 1):
            # indptr/indices are assembled with numpy (counts -> cumsum,
            # one chained fromiter) instead of a per-node Python
            # accumulation; absent nodes contribute empty ranges.
            counts = np.zeros(n, dtype=np.int64)
            chunks: list[list[int]] = []
            for node in np.flatnonzero(levels >= level).tolist():
                nbrs = self._graph.neighbors(node, level)
                counts[node] = len(nbrs)
                chunks.append(nbrs)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indices = np.fromiter(
                itertools.chain.from_iterable(chunks),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            payload[f"indptr_{level}"] = indptr
            payload[f"indices_{level}"] = indices
        if self._quantized is not None:
            if not self._quantized.is_trained and n:
                self._quantized.refresh()
            payload.update(self._quantized.to_arrays())
        return payload

    @classmethod
    def from_arrays(cls, payload: dict) -> "HnswIndex":
        """Inverse of :meth:`to_arrays`."""
        params = _params_from_json(str(payload["params_json"]))
        index = cls(
            dim=int(payload["dim"]),
            metric=str(payload["metric"]),
            params=params,
        )
        n = int(payload["count"])
        if n == 0:
            return index
        levels = np.asarray(payload["levels"], dtype=np.int64)
        vectors = np.asarray(payload["vectors"], dtype=np.float32)
        graph = index._graph
        # Rebuild storage directly (vectors are already normalised for
        # cosine, so bypass Scorer.add's re-normalisation).
        index._scorer._grow(n)
        index._scorer._data[:n] = vectors
        index._scorer._sq_norms[:n] = np.einsum("ij,ij->i", vectors, vectors)
        index._scorer._count = n
        graph.add_nodes(levels.tolist())
        graph.entry_point = int(payload["entry_point"])
        graph.max_level = int(payload["max_level"])
        for level in range(graph.max_level + 1):
            indptr = np.asarray(
                payload[f"indptr_{level}"], dtype=np.int64
            ).tolist()
            indices = np.asarray(
                payload[f"indices_{level}"], dtype=np.int64
            ).tolist()
            graph.set_level_csr(
                level,
                np.flatnonzero(levels >= level).tolist(),
                indptr,
                indices,
            )
        external = np.asarray(payload["external_ids"], dtype=np.int64)
        if (external < 0).any():
            # Same invariant add() enforces: -1 is the batch padding
            # sentinel, so a loaded index must not carry negative ids.
            raise ValueError(
                "persisted index contains negative external ids"
            )
        index._external_ids = external.tolist()
        index._id_to_row = {ext: row for row, ext in enumerate(index._external_ids)}
        if index._quantized is not None and "codec_kind" in payload:
            # Codes are restored, not retrained: the persisted codec is
            # the one the offline build fitted on this segment.
            index._quantized = QuantizedStore.from_arrays(
                index._scorer,
                payload,
                pq_subspaces=params.pq_subspaces,
                seed=params.seed,
            )
        return index

    def save(self, path: str) -> None:
        """Save to an ``.npz`` file."""
        np.savez_compressed(path, **self.to_arrays())

    @classmethod
    def load(cls, path: str) -> "HnswIndex":
        """Load from an ``.npz`` file written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key] for key in archive.files}
        return cls.from_arrays(payload)


def _params_to_json(params: HnswParams) -> str:
    import json

    return json.dumps(params.to_dict())


def _params_from_json(text: str) -> HnswParams:
    import json

    return HnswParams.from_dict(json.loads(text))


def build_hnsw(
    vectors: np.ndarray,
    *,
    ids: np.ndarray | None = None,
    metric: str = "euclidean",
    params: HnswParams | None = None,
) -> HnswIndex:
    """One-call construction of an :class:`HnswIndex` over ``vectors``."""
    vectors = as_matrix(vectors, name="vectors")
    index = HnswIndex(dim=vectors.shape[1], metric=metric, params=params)
    index.add(vectors, ids=ids)
    return index
