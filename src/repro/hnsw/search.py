"""HNSW search primitives: greedy descent and beam search.

These free functions implement ``SEARCH-LAYER`` (Algorithm 2 of Malkov &
Yashunin) and the greedy single-entry descent used on the upper layers.
Both the build path and the query path share them.

Distances are in the scorer's *reduced* space throughout (see
:mod:`repro.distance.scorer`).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.distance.scorer import Scorer
from repro.hnsw.graph import HnswGraph, VisitedTable

_IDS_DTYPE = np.int64


def greedy_descent(
    graph: HnswGraph,
    scorer: Scorer,
    query: np.ndarray,
    entry_point: int,
    entry_dist: float,
    level: int,
) -> tuple[int, float]:
    """Greedily walk to the local minimum of ``query`` at ``level``.

    Equivalent to ``SEARCH-LAYER`` with ``ef=1`` but cheaper: it keeps a
    single current node and moves to any strictly closer neighbor.

    Returns
    -------
    (node, reduced_distance) of the local minimum reached.
    """
    current, current_dist = entry_point, entry_dist
    while True:
        neighbors = graph.neighbors(current, level)
        if not neighbors:
            return current, current_dist
        ids = np.asarray(neighbors, dtype=_IDS_DTYPE)
        dists = scorer.score_ids(query, ids)
        best = int(np.argmin(dists))
        best_dist = float(dists[best])
        if best_dist >= current_dist:
            return current, current_dist
        current, current_dist = neighbors[best], best_dist


def search_layer(
    graph: HnswGraph,
    scorer: Scorer,
    query: np.ndarray,
    entry_points: list[tuple[float, int]],
    ef: int,
    level: int,
    visited: VisitedTable,
) -> list[tuple[float, int]]:
    """Beam search at one layer (``SEARCH-LAYER``, Algorithm 2).

    Parameters
    ----------
    entry_points:
        ``(reduced_distance, node)`` seeds; all are marked visited.
    ef:
        Beam width: the size of the dynamic result list.

    Returns
    -------
    Up to ``ef`` ``(reduced_distance, node)`` pairs sorted ascending.
    """
    # candidates: min-heap of frontier nodes; results: max-heap (negated)
    # of the best `ef` found so far.
    candidates: list[tuple[float, int]] = []
    results: list[tuple[float, int]] = []
    tags, epoch = visited.tags, visited.epoch  # direct access: hot loop
    for dist, node in entry_points:
        tags[node] = epoch
        candidates.append((dist, node))
        results.append((-dist, node))
    heapq.heapify(candidates)
    heapq.heapify(results)

    while candidates:
        dist, node = heapq.heappop(candidates)
        if dist > -results[0][0] and len(results) >= ef:
            break  # frontier is strictly worse than the full beam
        fresh = [
            neighbor
            for neighbor in graph.neighbors(node, level)
            if tags[neighbor] != epoch
        ]
        if not fresh:
            continue
        for neighbor in fresh:
            tags[neighbor] = epoch
        dists = scorer.score_ids(query, np.asarray(fresh, dtype=_IDS_DTYPE))
        worst = -results[0][0]
        full = len(results) >= ef
        for neighbor_dist, neighbor in zip(dists.tolist(), fresh):
            if not full:
                heapq.heappush(results, (-neighbor_dist, neighbor))
                heapq.heappush(candidates, (neighbor_dist, neighbor))
                full = len(results) >= ef
                worst = -results[0][0]
            elif neighbor_dist < worst:
                heapq.heapreplace(results, (-neighbor_dist, neighbor))
                heapq.heappush(candidates, (neighbor_dist, neighbor))
                worst = -results[0][0]
    return sorted((-neg_dist, node) for neg_dist, node in results)


def descend_to_level(
    graph: HnswGraph,
    scorer: Scorer,
    query: np.ndarray,
    target_level: int,
) -> tuple[int, float]:
    """Greedy-descend from the global entry point down to ``target_level + 1``.

    Returns the entry ``(node, reduced_distance)`` to use at
    ``target_level``.  The graph must be non-empty.
    """
    entry = graph.entry_point
    entry_dist = float(
        scorer.score_ids(query, np.asarray([entry], dtype=_IDS_DTYPE))[0]
    )
    for level in range(graph.max_level, target_level, -1):
        entry, entry_dist = greedy_descent(
            graph, scorer, query, entry, entry_dist, level
        )
    return entry, entry_dist
