"""HNSW search primitives: greedy descent and beam search.

These free functions implement ``SEARCH-LAYER`` (Algorithm 2 of Malkov &
Yashunin) and the greedy single-entry descent used on the upper layers.
Both the build path and the query path share them.

Distances are in the scorer's *reduced* space throughout (see
:mod:`repro.distance.scorer`).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.distance.scorer import Scorer
from repro.hnsw.graph import HnswGraph, VisitedTable

_IDS_DTYPE = np.int64


def greedy_descent(
    graph: HnswGraph,
    scorer: Scorer,
    query: np.ndarray,
    entry_point: int,
    entry_dist: float,
    level: int,
    query_sq: float | None = None,
) -> tuple[int, float]:
    """Greedily walk to the local minimum of ``query`` at ``level``.

    Equivalent to ``SEARCH-LAYER`` with ``ef=1`` but cheaper: it keeps a
    single current node and moves to any strictly closer neighbor.
    ``query_sq`` optionally carries the precomputed squared query norm so
    the caller hoists it out of the descent loop.

    Returns
    -------
    (node, reduced_distance) of the local minimum reached.
    """
    current, current_dist = entry_point, entry_dist
    while True:
        neighbors = graph.neighbors(current, level)
        if not neighbors:
            return current, current_dist
        ids = np.asarray(neighbors, dtype=_IDS_DTYPE)
        dists = scorer.score_ids(query, ids, query_sq)
        best = int(np.argmin(dists))
        best_dist = float(dists[best])
        if best_dist >= current_dist:
            return current, current_dist
        current, current_dist = neighbors[best], best_dist


def search_layer(
    graph: HnswGraph,
    scorer: Scorer,
    query: np.ndarray,
    entry_points: list[tuple[float, int]],
    ef: int,
    level: int,
    visited: VisitedTable,
    query_sq: float | None = None,
) -> list[tuple[float, int]]:
    """Beam search at one layer (``SEARCH-LAYER``, Algorithm 2).

    Parameters
    ----------
    entry_points:
        ``(reduced_distance, node)`` seeds; all are marked visited.
    ef:
        Beam width: the size of the dynamic result list.
    query_sq:
        Optional precomputed squared query norm, hoisted out of the
        per-round :meth:`Scorer.score_ids` calls.

    Returns
    -------
    Up to ``ef`` ``(reduced_distance, node)`` pairs sorted ascending.
    """
    # candidates: min-heap of frontier nodes; results: max-heap (negated)
    # of the best `ef` found so far.
    candidates: list[tuple[float, int]] = []
    results: list[tuple[float, int]] = []
    tags, epoch = visited.tags, visited.epoch  # direct access: hot loop
    for dist, node in entry_points:
        tags[node] = epoch
        candidates.append((dist, node))
        results.append((-dist, node))
    heapq.heapify(candidates)
    heapq.heapify(results)

    while candidates:
        dist, node = heapq.heappop(candidates)
        if dist > -results[0][0] and len(results) >= ef:
            break  # frontier is strictly worse than the full beam
        fresh = [
            neighbor
            for neighbor in graph.neighbors(node, level)
            if tags[neighbor] != epoch
        ]
        if not fresh:
            continue
        for neighbor in fresh:
            tags[neighbor] = epoch
        dists = scorer.score_ids(
            query, np.asarray(fresh, dtype=_IDS_DTYPE), query_sq
        )
        worst = -results[0][0]
        full = len(results) >= ef
        for neighbor_dist, neighbor in zip(dists.tolist(), fresh):
            if not full:
                heapq.heappush(results, (-neighbor_dist, neighbor))
                heapq.heappush(candidates, (neighbor_dist, neighbor))
                full = len(results) >= ef
                worst = -results[0][0]
            elif neighbor_dist < worst:
                heapq.heapreplace(results, (-neighbor_dist, neighbor))
                heapq.heappush(candidates, (neighbor_dist, neighbor))
                worst = -results[0][0]
    return sorted((-neg_dist, node) for neg_dist, node in results)


def descend_to_level(
    graph: HnswGraph,
    scorer: Scorer,
    query: np.ndarray,
    target_level: int,
    query_sq: float | None = None,
) -> tuple[int, float]:
    """Greedy-descend from the global entry point down to ``target_level + 1``.

    Returns the entry ``(node, reduced_distance)`` to use at
    ``target_level``.  The graph must be non-empty.
    """
    entry = graph.entry_point
    entry_dist = float(
        scorer.score_ids(
            query, np.asarray([entry], dtype=_IDS_DTYPE), query_sq
        )[0]
    )
    for level in range(graph.max_level, target_level, -1):
        entry, entry_dist = greedy_descent(
            graph, scorer, query, entry, entry_dist, level, query_sq
        )
    return entry, entry_dist


# -- lockstep batch kernels ----------------------------------------------------------
#
# The batched query path runs B independent searches "in lockstep": each
# round, every still-active query contributes the candidate ids it needs
# scored, the flat union is scored in ONE vectorised Scorer.score_pairs
# call, and the per-query heap logic then consumes its slice.  Each
# query's control flow (pop order, visited set, termination) is exactly
# the single-query algorithm -- only the distance evaluations are pooled
# -- and score_pairs is batch-composition-invariant, so a batch of one is
# bit-identical to any larger batch.


def descend_to_level_batch(
    graph: HnswGraph,
    scorer: Scorer,
    queries: np.ndarray,
    target_level: int,
    query_sq: np.ndarray | None = None,
    cost=None,
) -> tuple[list[int], list[float]]:
    """Batched :func:`descend_to_level` over a *prepared* ``(B, d)`` batch.

    Returns per-query entry nodes and reduced entry distances for
    ``target_level``.  The graph must be non-empty.
    """
    return descend_to_levels_batch(
        graph,
        scorer,
        queries,
        [target_level] * queries.shape[0],
        query_sq,
        cost,
    )


def descend_to_levels_batch(
    graph: HnswGraph,
    scorer: Scorer,
    queries: np.ndarray,
    target_levels: list[int],
    query_sq: np.ndarray | None = None,
    cost=None,
) -> tuple[list[int], list[float]]:
    """Batched greedy descent with a *per-query* target level.

    Query ``i`` walks from the global entry point down through layers
    ``max_level .. target_levels[i] + 1`` and settles where
    :func:`descend_to_level` would.  The construction wave needs the
    per-query targets: each new row stops descending at its own drawn
    level, yet all rows of a wave share every round's scoring call.

    ``cost`` is an optional :class:`~repro.obs.cost.SearchCost`: when
    given, each round adds the queries that moved to ``hops`` -- one
    bounded increment per round, so ``cost=None`` leaves the hot path
    untouched.
    """
    num_queries = queries.shape[0]
    entry = graph.entry_point
    entry_dists = scorer.score_pairs(
        queries,
        np.arange(num_queries),
        np.full(num_queries, entry, dtype=_IDS_DTYPE),
        query_sq,
    )
    current = [entry] * num_queries
    current_dist = [float(dist) for dist in entry_dists]
    for level in range(graph.max_level, min(target_levels, default=0), -1):
        active = [i for i in range(num_queries) if target_levels[i] < level]
        while active:
            flat_ids: list[int] = []
            span_rows: list[int] = []
            span_counts: list[int] = []
            for i in active:
                neighbors = graph.neighbors(current[i], level)
                if not neighbors:
                    continue  # local minimum: settled at this level
                span_rows.append(i)
                span_counts.append(len(neighbors))
                flat_ids.extend(neighbors)
            if not flat_ids:
                break
            dists = scorer.score_pairs(
                queries,
                np.repeat(span_rows, span_counts),
                np.asarray(flat_ids, dtype=_IDS_DTYPE),
                query_sq,
            )
            moved: list[int] = []
            offset = 0
            for i, count in zip(span_rows, span_counts):
                segment = dists[offset : offset + count]
                best = int(np.argmin(segment))
                best_dist = float(segment[best])
                if best_dist < current_dist[i]:
                    current[i] = flat_ids[offset + best]
                    current_dist[i] = best_dist
                    moved.append(i)
                offset += count
            if cost is not None:
                cost.hops += len(moved)
            active = moved
    return current, current_dist


def search_layer_batch(
    graph: HnswGraph,
    scorer: Scorer,
    queries: np.ndarray,
    entry_points: list[list[tuple[float, int]]],
    ef: int,
    level: int,
    visited_tables: list[VisitedTable],
    query_sq: np.ndarray | None = None,
    cost=None,
) -> list[list[tuple[float, int]]]:
    """Batched :func:`search_layer`: one beam search per query, in lockstep.

    Parameters
    ----------
    queries:
        Prepared ``(B, d)`` query batch.
    entry_points:
        Per-query ``(reduced_distance, node)`` seeds.
    visited_tables:
        One reset :class:`VisitedTable` per query.
    cost:
        Optional :class:`~repro.obs.cost.SearchCost`: each round adds
        the queries that advanced to ``hops`` and the fresh neighbors
        scored to ``candidates_visited`` (two bounded increments per
        round; ``None`` leaves the hot path untouched).

    Returns
    -------
    Per-query sorted ``(reduced_distance, node)`` lists, each at most
    ``ef`` long -- identical to running :func:`search_layer` per query.
    """
    num_queries = queries.shape[0]
    adjacency = graph._neighbors  # direct slot access: hot loop
    candidates: list[list[tuple[float, int]]] = []
    results: list[list[tuple[float, int]]] = []
    for i in range(num_queries):
        table = visited_tables[i]
        tags, epoch = table.tags, table.epoch
        cand: list[tuple[float, int]] = []
        res: list[tuple[float, int]] = []
        for dist, node in entry_points[i]:
            tags[node] = epoch
            cand.append((dist, node))
            res.append((-dist, node))
        heapq.heapify(cand)
        heapq.heapify(res)
        candidates.append(cand)
        results.append(res)

    active = [i for i in range(num_queries) if candidates[i]]
    while active:
        # Phase 1: advance each query to its next scoring point (or done).
        flat_ids: list[int] = []
        span_rows: list[int] = []
        span_counts: list[int] = []
        for i in active:
            cand = candidates[i]
            res = results[i]
            table = visited_tables[i]
            tags, epoch = table.tags, table.epoch
            fresh: list[int] = []
            while cand:
                dist, node = heapq.heappop(cand)
                if dist > -res[0][0] and len(res) >= ef:
                    cand.clear()  # frontier strictly worse: terminate
                    break
                fresh = [
                    neighbor
                    for neighbor in adjacency[node][level]
                    if tags[neighbor] != epoch
                ]
                if fresh:
                    for neighbor in fresh:
                        tags[neighbor] = epoch
                    break
            if fresh:
                span_rows.append(i)
                span_counts.append(len(fresh))
                flat_ids.extend(fresh)
        if not flat_ids:
            break
        if cost is not None:
            cost.hops += len(span_rows)
            cost.candidates_visited += len(flat_ids)

        # Phase 2: one vectorised scoring call for the whole round.
        dists = scorer.score_pairs(
            queries,
            np.repeat(span_rows, span_counts),
            np.asarray(flat_ids, dtype=_IDS_DTYPE),
            query_sq,
        )
        flat_dists = dists.tolist()

        # Phase 3: per-query heap updates (same inner loop as search_layer).
        still_active: list[int] = []
        offset = 0
        for i, count in zip(span_rows, span_counts):
            cand = candidates[i]
            res = results[i]
            worst = -res[0][0]
            full = len(res) >= ef
            for position in range(offset, offset + count):
                neighbor_dist = flat_dists[position]
                neighbor = flat_ids[position]
                if not full:
                    heapq.heappush(res, (-neighbor_dist, neighbor))
                    heapq.heappush(cand, (neighbor_dist, neighbor))
                    full = len(res) >= ef
                    worst = -res[0][0]
                elif neighbor_dist < worst:
                    heapq.heapreplace(res, (-neighbor_dist, neighbor))
                    heapq.heappush(cand, (neighbor_dist, neighbor))
                    worst = -res[0][0]
            offset += count
            if cand:
                still_active.append(i)
        active = still_active
    return [
        sorted((-neg_dist, node) for neg_dist, node in res) for res in results
    ]
