"""HNSW hyper-parameters.

Names follow the original paper / hnswlib conventions:

- ``M`` -- target out-degree on the upper layers; ``max_m0`` (default
  ``2 * M``) bounds the base layer, which needs more links because it holds
  every element.
- ``ef_construction`` -- beam width used while inserting.
- ``ef_search`` -- default beam width used while querying; per-query
  override is available on :meth:`repro.hnsw.HnswIndex.search`.
- ``ml`` -- level-generation factor; the level of a new point is
  ``floor(-ln(U) * ml)``.  The paper recommends ``1 / ln(M)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class HnswParams:
    """Immutable bundle of HNSW hyper-parameters (validated on creation)."""

    M: int = 16
    ef_construction: int = 100
    ef_search: int = 50
    max_m: int | None = None
    max_m0: int | None = None
    ml: float | None = None
    seed: int = 0
    extend_candidates: bool = False
    keep_pruned_connections: bool = True
    #: Use SELECT-NEIGHBORS-HEURISTIC (True, the paper's choice) or plain
    #: closest-M selection (False; ablation only -- hurts recall on
    #: clustered data).
    use_heuristic: bool = True
    #: Indices holding fewer than this many vectors answer queries by an
    #: exact ``(B, d) @ (d, n)`` GEMM scan instead of graph traversal --
    #: on tiny segments (skewed segmenter splits, small tail shards) the
    #: flat scan is both exact and faster than beam search.  ``0``
    #: (default) disables the fallback; the graph is still *built*
    #: either way, so a segment that grows past the threshold switches
    #: to graph search transparently.
    min_graph_size: int = 0
    #: Construction wave size for the batched lockstep insert path:
    #: :meth:`~repro.hnsw.HnswIndex.add` groups incoming rows into waves
    #: of this many, descends and beam-searches each wave against a
    #: snapshot of the graph through the lockstep batch kernels, then
    #: links in deterministic row order.  ``<= 1`` falls back to the
    #: one-row-at-a-time sequential insert.  Larger waves amortise more
    #: numpy dispatch but search a slightly staler snapshot; the default
    #: matches the serving path's lockstep group size.
    build_batch: int = 64
    #: Compressed-domain scoring backend for the beam search: ``"none"``
    #: (float32 rows, today's path), ``"int8"`` (per-dimension scalar
    #: quantization, ~4x less memory traffic per beam round) or ``"pq"``
    #: (product quantization scored via ADC lookup tables).  With either
    #: quantized backend the traversal runs entirely on codes and the
    #: final candidate set is rescored exactly against the retained
    #: float32 rows, so returned distances are bit-identical to the
    #: float path for the candidates both would return.
    quantize: str = "none"
    #: Rescore depth for quantized search: the beam keeps
    #: ``max(ef, k, rescore_k)`` candidates on codes and all of them are
    #: rescored exactly before the top ``k`` are returned.  ``0`` means
    #: "just the beam" (``max(ef, k)``).  Ignored when ``quantize`` is
    #: ``"none"``.
    rescore_k: int = 0
    #: Subspace count for the ``"pq"`` backend (clamped to the largest
    #: divisor of the dimensionality that does not exceed it).
    pq_subspaces: int = 8

    def __post_init__(self) -> None:
        if self.M < 2:
            raise ValueError(f"M must be >= 2, got {self.M}")
        if self.ef_construction < 1:
            raise ValueError(
                f"ef_construction must be >= 1, got {self.ef_construction}"
            )
        if self.ef_search < 1:
            raise ValueError(f"ef_search must be >= 1, got {self.ef_search}")
        if self.max_m is not None and self.max_m < 1:
            raise ValueError(f"max_m must be >= 1, got {self.max_m}")
        if self.max_m0 is not None and self.max_m0 < 1:
            raise ValueError(f"max_m0 must be >= 1, got {self.max_m0}")
        if self.ml is not None and self.ml <= 0:
            raise ValueError(f"ml must be positive, got {self.ml}")
        if self.min_graph_size < 0:
            raise ValueError(
                f"min_graph_size must be >= 0, got {self.min_graph_size}"
            )
        if self.build_batch < 0:
            raise ValueError(
                f"build_batch must be >= 0, got {self.build_batch}"
            )
        if self.quantize not in ("none", "int8", "pq"):
            raise ValueError(
                f"quantize must be one of 'none', 'int8', 'pq', got "
                f"{self.quantize!r}"
            )
        if self.rescore_k < 0:
            raise ValueError(
                f"rescore_k must be >= 0, got {self.rescore_k}"
            )
        if self.pq_subspaces < 1:
            raise ValueError(
                f"pq_subspaces must be >= 1, got {self.pq_subspaces}"
            )

    @property
    def effective_max_m(self) -> int:
        """Maximum out-degree on layers above the base layer."""
        return self.max_m if self.max_m is not None else self.M

    @property
    def effective_max_m0(self) -> int:
        """Maximum out-degree on the base layer (default ``2 * M``)."""
        return self.max_m0 if self.max_m0 is not None else 2 * self.M

    @property
    def effective_ml(self) -> float:
        """Level-generation factor (default ``1 / ln(M)``)."""
        return self.ml if self.ml is not None else 1.0 / math.log(self.M)

    def to_dict(self) -> dict:
        """Plain-dict form used by the serialization layer."""
        return {
            "M": self.M,
            "ef_construction": self.ef_construction,
            "ef_search": self.ef_search,
            "max_m": self.max_m,
            "max_m0": self.max_m0,
            "ml": self.ml,
            "seed": self.seed,
            "extend_candidates": self.extend_candidates,
            "keep_pruned_connections": self.keep_pruned_connections,
            "use_heuristic": self.use_heuristic,
            "min_graph_size": self.min_graph_size,
            "build_batch": self.build_batch,
            "quantize": self.quantize,
            "rescore_k": self.rescore_k,
            "pq_subspaces": self.pq_subspaces,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HnswParams":
        """Inverse of :meth:`to_dict` (ignores unknown keys)."""
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})
