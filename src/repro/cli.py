"""Command-line interface for the LANNS platform.

The subcommands mirror the platform lifecycle::

    python -m repro.cli build  --data vectors.npy --out idx --shards 2 \
        --segments 4 --segmenter apd --root /tmp/lanns
    python -m repro.cli serve-searcher --shard-id 0 --port 7201 \
        --root /tmp/lanns
    python -m repro.cli query  --index idx --queries q.npy --top-k 10 \
        --root /tmp/lanns --out results.npz
    python -m repro.cli query  --index idx --queries q.npy --top-k 10 \
        --root /tmp/lanns --searchers 127.0.0.1:7201,127.0.0.1:7202
    python -m repro.cli info   --index idx --root /tmp/lanns
    python -m repro.cli bench  --dataset sift1m --top-k 10
    python -m repro.cli stats  --searchers 127.0.0.1:7201,127.0.0.1:7202
    python -m repro.cli trace  --file trace.json

``--root`` is the LocalHdfs root directory all paths are relative to.
Vector files are ``.npy`` (float32 matrices) or ``.fvecs``.
``serve-searcher`` turns this process into one searcher machine of the
paper's online topology (Section 7); ``query --searchers`` fronts such a
fleet with an in-process broker instead of running the offline pipeline.
``stats`` merges a fleet's metric registries into one Prometheus-style
text dump; ``trace`` pretty-prints trace JSON (``query --trace-out``)
as an indented span tree.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.config import LannsConfig
from repro.data.io import read_fvecs
from repro.errors import LannsError
from repro.hnsw.params import HnswParams
from repro.offline.indexing import build_index_job
from repro.offline.querying import query_index_job
from repro.sparklite.cluster import LocalCluster
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import load_manifest


def _load_vectors(path: str) -> np.ndarray:
    """Load a vector matrix from .npy or .fvecs."""
    suffix = Path(path).suffix.lower()
    if suffix == ".npy":
        return np.load(path).astype(np.float32)
    if suffix == ".fvecs":
        return read_fvecs(path)
    raise SystemExit(f"unsupported vector file {path!r} (use .npy or .fvecs)")


def _spill(value: str):
    """Parse --spill: a positive int, or the string 'all'."""
    if value == "all":
        return "all"
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a segment count or 'all', got {value!r}"
        ) from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"spill must be >= 1, got {value!r}"
        )
    return parsed


def _hedge_after(value: str):
    """Parse --hedge-after-s: a positive float, or the string 'auto'."""
    if value == "auto":
        return "auto"
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a delay in seconds or 'auto', got {value!r}"
        ) from None
    if not parsed > 0:  # also rejects NaN
        raise argparse.ArgumentTypeError(
            f"delay must be positive, got {value!r}"
        )
    return parsed


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root", required=True, help="LocalHdfs root directory"
    )
    parser.add_argument(
        "--executors", type=int, default=4, help="cluster executors"
    )


def _cmd_build(args: argparse.Namespace) -> int:
    vectors = _load_vectors(args.data)
    config = LannsConfig(
        num_shards=args.shards,
        num_segments=args.segments,
        sharding=args.sharding,
        segmenter=args.segmenter,
        alpha=args.alpha,
        spill_mode=args.spill_mode,
        metric=args.metric,
        hnsw=HnswParams(
            M=args.hnsw_m,
            ef_construction=args.ef_construction,
            min_graph_size=args.min_graph_size,
            build_batch=args.build_batch,
            quantize=args.quantize,
            rescore_k=args.rescore_k,
            pq_subspaces=args.pq_subspaces,
        ),
        seed=args.seed,
    )
    fs = LocalHdfs(args.root)
    cluster = LocalCluster(
        num_executors=args.executors, mode=args.cluster_mode, fs=fs
    )
    begin = time.perf_counter()
    manifest, metrics = build_index_job(
        cluster, fs, vectors, config, args.out
    )
    elapsed = time.perf_counter() - begin
    print(
        f"built {manifest.total_vectors} vectors "
        f"({config.num_shards}x{config.num_segments} partitions) "
        f"into {args.root}/{args.out} in {elapsed:.1f}s"
    )
    print(f"per-partition build work: {metrics.total_task_time:.1f}s")
    for executors in (2, 4, 8):
        print(
            f"  simulated makespan @ {executors} executors: "
            f"{metrics.makespan(executors):.1f}s"
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    queries = _load_vectors(args.queries)
    fs = LocalHdfs(args.root)
    if args.searchers:
        return _query_remote(args, fs, queries)
    cluster = LocalCluster(num_executors=args.executors, fs=fs)
    begin = time.perf_counter()
    result = query_index_job(
        cluster,
        fs,
        args.index,
        queries,
        args.top_k,
        ef=args.ef,
        checkpoint=not args.no_checkpoint,
    )
    elapsed = time.perf_counter() - begin
    print(
        f"answered {queries.shape[0]} queries (top-{args.top_k}) "
        f"in {elapsed:.2f}s "
        f"({elapsed / queries.shape[0] * 1e3:.2f} ms/query wall)"
    )
    if args.out:
        np.savez_compressed(args.out, ids=result.ids, dists=result.dists)
        print(f"wrote ids/dists to {args.out}")
    else:
        preview = min(5, queries.shape[0])
        for row in range(preview):
            print(f"  query {row}: {result.ids[row][:10].tolist()}")
    return 0


def _query_remote(
    args: argparse.Namespace, fs: LocalHdfs, queries: np.ndarray
) -> int:
    """Front a remote searcher fleet: deploy over RPC, one broker fan-out.

    Remote queries always use the asyncio fan-out (the sync RPC client
    is retired from the search hot path -- it still runs the deploy /
    verify control plane underneath).
    """
    from repro.online.service import OnlineService
    from repro.online.types import SearchRequest

    trace_out = getattr(args, "trace_out", None)
    service = OnlineService(
        searchers=args.searchers,
        async_fanout=True,
        hedge_after_s=args.hedge_after_s,
        partial_policy=args.partial_policy,
        request_timeout_s=args.request_timeout_s,
        # --trace-out force-samples this one request so the exported
        # trace is guaranteed to exist.
        trace_sample_rate=1.0 if trace_out else 0.0,
    )
    deployed = False
    try:
        service.deploy(fs, args.index, index_name="default")
        deployed = True
        begin = time.perf_counter()
        response = service.execute(
            SearchRequest(
                queries=queries,
                top_k=args.top_k,
                index_name="default",
                ef=args.ef,
                spill=args.spill,
            )
        )
        elapsed = time.perf_counter() - begin
        ids, dists = response.ids, response.dists
        print(
            f"answered {queries.shape[0]} queries (top-{args.top_k}) over "
            f"{len(service.searchers)} remote searchers in {elapsed:.2f}s "
            f"({elapsed / queries.shape[0] * 1e3:.2f} ms/query wall)"
        )
        if args.spill is not None and args.spill != "all":
            routed = response.shards_routed
            print(
                f"  routed (spill={args.spill}): mean "
                f"{routed.mean():.2f} of {response.num_shards} "
                "shard groups queried per row"
            )
        if response.degraded_rows:
            print(
                f"  DEGRADED: {response.degraded_rows} of "
                f"{queries.shape[0]} rows missing at least one "
                "routed shard"
            )
        if response.cost is not None:
            cost = response.cost
            print(
                f"  cost: {cost.get('distance_comps', 0)} distance comps, "
                f"{cost.get('hops', 0)} hops, "
                f"{cost.get('segments_probed', 0)} segments probed"
            )
        if trace_out:
            if response.trace is None:
                print("  no trace captured (request served from cache?)")
            else:
                with open(trace_out, "w") as handle:
                    json.dump(response.trace, handle, indent=2)
                print(
                    f"wrote trace to {trace_out} "
                    f"(pretty-print: python -m repro.cli trace "
                    f"--file {trace_out})"
                )
        if args.out:
            np.savez_compressed(args.out, ids=ids, dists=dists)
            print(f"wrote ids/dists to {args.out}")
        else:
            for row in range(min(5, queries.shape[0])):
                print(f"  query {row}: {ids[row][:10].tolist()}")
    finally:
        # Always leave the fleet clean: a query failure (or Ctrl-C)
        # must not keep 'default' hosted, or the next run's deploy
        # would refuse with "already hosts".
        if deployed:
            try:
                service.undeploy("default")
            except (LannsError, OSError) as exc:
                # Cleanup is best-effort (the fleet may already be gone),
                # but the operator should know the undeploy didn't land.
                print(f"warning: undeploy failed: {exc}", file=sys.stderr)
        service.close()
    return 0


def _cmd_serve_searcher(args: argparse.Namespace) -> int:
    from repro.net.chaos import FaultPlan
    from repro.net.server import SearcherServer
    from repro.online.searcher import SearcherNode

    chaos = (
        FaultPlan.parse(args.chaos_spec) if args.chaos_spec else None
    )
    server = SearcherServer(
        SearcherNode(args.shard_id),
        host=args.host,
        port=args.port,
        root=args.root,
        slow_every=args.slow_every,
        slow_delay_s=args.slow_delay_s,
        max_in_flight=args.max_in_flight,
        queue_cap=args.queue_cap,
        retry_after_s=args.retry_after_s,
        batch_max=args.batch_max,
        batch_wait_ms=args.batch_wait_ms,
        chaos=chaos,
    )
    return server.run()


def _cmd_info(args: argparse.Namespace) -> int:
    fs = LocalHdfs(args.root)
    manifest = load_manifest(fs, args.index)
    payload = manifest.to_dict()
    payload.pop("checksums", None)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Pretty-print exported trace JSON as indented span trees.

    Accepts a single trace dict (``query --trace-out``), a list of them
    (``Tracer.export_json``), or ``-`` for stdin.
    """
    from repro.obs.tracing import format_trace

    if args.file == "-":
        payload = json.load(sys.stdin)
    else:
        with open(args.file) as handle:
            payload = json.load(handle)
    traces = [payload] if isinstance(payload, dict) else list(payload)
    for position, trace in enumerate(traces):
        if position:
            print()
        print(format_trace(trace))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Fan STATS out to a searcher fleet; merge and render its metrics.

    Every searcher ships its process-wide metrics snapshot inside the
    STATS reply; merging them into one fresh registry yields a single
    fleet-level Prometheus text dump (counters add, gauges last-write,
    histogram buckets add).  ``--json`` prints the raw per-node stats
    instead.
    """
    from repro.net.client import RemoteSearcherClient
    from repro.net.fleet import parse_fleet_spec
    from repro.obs.metrics import MetricsRegistry

    addresses = [
        address
        for group in parse_fleet_spec(args.searchers)
        for address in group
    ]
    merged = MetricsRegistry()
    nodes: list[tuple[str, dict]] = []
    for address in addresses:
        client = RemoteSearcherClient(address, timeout_s=args.timeout_s)
        try:
            stats = client.stats(
                deadline=time.monotonic() + args.timeout_s
            )
        finally:
            client.close()
        merged.merge_snapshot(stats.pop("metrics", {}))
        nodes.append((address, stats))
    if args.json:
        print(json.dumps(dict(nodes), indent=2, sort_keys=True, default=str))
        return 0
    for address, stats in nodes:
        print(
            f"# searcher {address}: shard {stats.get('shard_id')}, "
            f"{stats.get('requests_served', 0)} requests, "
            f"{stats.get('queries_served', 0)} queries"
        )
    print(merged.render_text(), end="")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.core.builder import build_lanns_index
    from repro.data.datasets import load_dataset
    from repro.eval.harness import serving_throughput
    from repro.offline.recall import recall_at_k

    dataset = load_dataset(args.dataset)
    config = LannsConfig(
        num_shards=args.shards,
        num_segments=args.segments,
        segmenter=args.segmenter,
        hnsw=HnswParams(
            M=args.hnsw_m,
            ef_construction=args.ef_construction,
            build_batch=args.build_batch,
            quantize=args.quantize,
        ),
        seed=args.seed,
    )
    print(f"dataset {dataset!r}")
    begin = time.perf_counter()
    index = build_lanns_index(dataset.base, config=config)
    print(f"build: {time.perf_counter() - begin:.1f}s")
    top_k = min(args.top_k, dataset.num_base)
    report = serving_throughput(
        index,
        dataset.queries,
        top_k,
        ef=args.ef,
        batch_size=args.batch_size,
        collect_ids=True,
    )
    recall = recall_at_k(report["ids"], dataset.ground_truth(top_k), top_k)
    sequential, batched = report["sequential"], report["batched"]
    print(
        f"recall@{top_k}: {recall:.4f}  "
        f"qps: {sequential['qps']:.0f}  p99: {sequential['p99_ms']:.2f} ms"
    )
    print(
        f"batched (B={args.batch_size}) qps: {batched['qps']:.0f}  "
        f"batch p99: {batched['p99_batch_ms']:.2f} ms  "
        f"speedup: {report['speedup']:.2f}x"
    )
    if args.clients > 0:
        from repro.eval.harness import concurrent_serving_throughput

        load = concurrent_serving_throughput(
            index,
            dataset.queries,
            top_k,
            ef=args.ef,
            clients=args.clients,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            cache_size=args.cache_size,
        )
        concurrent, cached = load["concurrent"], load["cached"]
        print(
            f"concurrent ({load['clients']} clients, micro-batch "
            f"{args.max_batch}/{args.max_wait_ms}ms) qps: "
            f"{concurrent['qps']:.0f}  p99: {concurrent['p99_ms']:.2f} ms  "
            f"speedup: {load['concurrent_speedup']:.2f}x"
        )
        print(
            f"cached repeats qps: {cached['qps']:.0f}  "
            f"speedup: {load['cache_speedup']:.2f}x  "
            f"(hits: {load['core_stats']['cache']['hits']})"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.linter import main as lint_main

    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="LANNS: web-scale approximate nearest neighbor lookup",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build and persist an index")
    _add_common(build)
    build.add_argument("--data", required=True, help=".npy or .fvecs matrix")
    build.add_argument("--out", required=True, help="index path under root")
    build.add_argument("--shards", type=int, default=1)
    build.add_argument("--segments", type=int, default=1)
    build.add_argument(
        "--sharding",
        choices=["hash", "segment"],
        default="hash",
        help=(
            "'segment' aligns shards with segments (requires shards == "
            "segments): each shard hosts exactly one segment, which "
            "lets the online router prune fan-out to the top-spill "
            "shard groups"
        ),
    )
    build.add_argument(
        "--segmenter", choices=["rs", "rh", "apd"], default="rs"
    )
    build.add_argument("--alpha", type=float, default=0.15)
    build.add_argument(
        "--spill-mode", choices=["virtual", "physical"], default="virtual"
    )
    build.add_argument(
        "--metric",
        choices=["euclidean", "cosine", "inner_product"],
        default="euclidean",
    )
    build.add_argument("--hnsw-m", type=int, default=16)
    build.add_argument("--ef-construction", type=int, default=100)
    build.add_argument(
        "--min-graph-size",
        type=int,
        default=0,
        help=(
            "segments smaller than this answer by exact GEMM scan "
            "instead of graph search (0 disables)"
        ),
    )
    build.add_argument(
        "--build-batch",
        type=int,
        default=64,
        help=(
            "construction wave size for the batched lockstep insert "
            "path (<= 1 falls back to one-row-at-a-time insertion)"
        ),
    )
    build.add_argument(
        "--quantize",
        choices=["none", "int8", "pq"],
        default="none",
        help=(
            "compressed-domain scoring: beam search runs on int8 or "
            "PQ codes and the final candidates are rescored exactly "
            "against the retained float32 vectors ('none' keeps the "
            "all-float path)"
        ),
    )
    build.add_argument(
        "--rescore-k",
        type=int,
        default=0,
        help=(
            "rescore depth for quantized search: the beam keeps "
            "max(ef, k, rescore_k) candidates on codes before the "
            "exact rescore (0 = just the beam)"
        ),
    )
    build.add_argument(
        "--pq-subspaces",
        type=int,
        default=8,
        help=(
            "subspace count for --quantize pq (clamped to the largest "
            "divisor of the dimensionality)"
        ),
    )
    build.add_argument(
        "--cluster-mode",
        choices=["inline", "threads", "processes"],
        default="inline",
        help=(
            "how per-partition build tasks execute: 'processes' runs "
            "them on a process pool (real parallelism for multi-"
            "segment builds)"
        ),
    )
    build.add_argument("--seed", type=int, default=0)
    build.set_defaults(handler=_cmd_build)

    serve = commands.add_parser(
        "serve-searcher",
        help="serve one shard position over TCP (the paper's searcher)",
    )
    serve.add_argument(
        "--shard-id", type=int, required=True, help="shard this node serves"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = pick a free one; announced on stdout)",
    )
    serve.add_argument(
        "--root",
        default=None,
        help=(
            "LocalHdfs root to load shards from (defaults to the root "
            "sent with each deploy request)"
        ),
    )
    serve.add_argument(
        "--slow-every",
        type=int,
        default=0,
        help=(
            "straggler injection: stall every Nth SEARCH request "
            "(benchmarks/tests; 0 disables)"
        ),
    )
    serve.add_argument(
        "--slow-delay-s",
        type=float,
        default=0.0,
        help="stall duration in seconds for --slow-every",
    )
    serve.add_argument(
        "--max-in-flight",
        type=int,
        default=0,
        help=(
            "admission control: concurrent SEARCH executions before "
            "requests queue (0 = unbounded, admission disabled)"
        ),
    )
    serve.add_argument(
        "--queue-cap",
        type=int,
        default=0,
        help=(
            "admission control: SEARCH requests allowed to wait for a "
            "slot; beyond this the server sheds with OVERLOADED"
        ),
    )
    serve.add_argument(
        "--retry-after-s",
        type=float,
        default=0.05,
        help="backoff hint carried inside OVERLOADED error frames",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=1,
        help=(
            "server-side micro-batching: coalesce up to this many query "
            "rows across connections per lockstep batch (1 disables)"
        ),
    )
    serve.add_argument(
        "--batch-wait-ms",
        type=float,
        default=2.0,
        help="max wait before a partial server-side micro-batch flushes",
    )
    serve.add_argument(
        "--chaos-spec",
        default=None,
        help=(
            "seeded fault injection, e.g. "
            "'seed=42,reset_rate=0.05,delay_rate=0.1,delay_s=0.02' "
            "(see repro.net.chaos.FaultPlan)"
        ),
    )
    serve.set_defaults(handler=_cmd_serve_searcher)

    query = commands.add_parser("query", help="query a persisted index")
    _add_common(query)
    query.add_argument("--index", required=True, help="index path under root")
    query.add_argument("--queries", required=True, help=".npy or .fvecs")
    query.add_argument("--top-k", type=int, default=10)
    query.add_argument("--ef", type=int, default=None)
    query.add_argument("--out", default=None, help="write results .npz here")
    query.add_argument("--no-checkpoint", action="store_true")
    query.add_argument(
        "--searchers",
        default=None,
        help=(
            "running serve-searcher processes, in shard order; queries "
            "then go through the online broker instead of the offline "
            "pipeline.  Comma-separated host:port per shard "
            "('h:1,h:2'), or ';'-separated replica groups with ','-"
            "separated interchangeable replicas inside each "
            "('h:1,h:2;h:3,h:4' = two shards, two replicas each)"
        ),
    )
    query.add_argument(
        "--spill",
        type=_spill,
        default=None,
        help=(
            "route each query to its top-SPILL segments and fan out "
            "only to the shard groups hosting them ('all' or omitted = "
            "query every shard group; requires a segment-aligned index "
            "for real fan-out savings)"
        ),
    )
    query.add_argument(
        "--partial-policy",
        choices=["fail", "degrade"],
        default="fail",
        help="what a dead searcher does to a request (remote mode)",
    )
    query.add_argument(
        "--request-timeout-s",
        type=float,
        default=None,
        help="per-request fan-out deadline in seconds (remote mode)",
    )
    query.add_argument(
        "--async-fanout",
        action="store_true",
        help=(
            "multiplex all remote shard RPCs on one event loop "
            "(now always on in remote mode; flag kept for "
            "compatibility)"
        ),
    )
    query.add_argument(
        "--hedge-after-s",
        type=_hedge_after,
        default=None,
        help=(
            "hedge a straggling shard RPC on a second connection after "
            "this many seconds ('auto' derives the delay from the live "
            "shard_rpc latency window), budget permitting; implies "
            "--async-fanout (remote mode)"
        ),
    )
    query.add_argument(
        "--trace-out",
        default=None,
        help=(
            "force-sample this request and write its trace (broker + "
            "searcher spans) as JSON here (remote mode; pretty-print "
            "with 'repro.cli trace')"
        ),
    )
    query.set_defaults(handler=_cmd_query)

    info = commands.add_parser("info", help="print an index's manifest")
    _add_common(info)
    info.add_argument("--index", required=True)
    info.set_defaults(handler=_cmd_info)

    stats = commands.add_parser(
        "stats",
        help="merge a searcher fleet's metrics into one text dump",
    )
    stats.add_argument(
        "--searchers",
        required=True,
        help=(
            "running serve-searcher processes (same spec as "
            "'query --searchers')"
        ),
    )
    stats.add_argument(
        "--timeout-s",
        type=float,
        default=10.0,
        help="per-node STATS deadline in seconds",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="print raw per-node stats JSON instead of merged metrics",
    )
    stats.set_defaults(handler=_cmd_stats)

    trace = commands.add_parser(
        "trace",
        help="pretty-print exported trace JSON as a span tree",
    )
    trace.add_argument(
        "--file",
        required=True,
        help="trace JSON ('query --trace-out' output; '-' reads stdin)",
    )
    trace.set_defaults(handler=_cmd_trace)

    bench = commands.add_parser(
        "bench", help="build + evaluate a registry dataset in one shot"
    )
    bench.add_argument("--dataset", default="sift1m")
    bench.add_argument("--top-k", type=int, default=10)
    bench.add_argument("--ef", type=int, default=96)
    bench.add_argument(
        "--batch-size",
        type=int,
        default=32,
        help="batch size for the batched serving measurement",
    )
    bench.add_argument(
        "--clients",
        type=int,
        default=0,
        help=(
            "also load-test the concurrent serving core with this many "
            "closed-loop client threads (0 = skip)"
        ),
    )
    bench.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="micro-batch flush size for the concurrent load test",
    )
    bench.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batch flush deadline (ms) for the concurrent load test",
    )
    bench.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help=(
            "broker result-cache capacity for the concurrent load test "
            "(default: 2x the query count)"
        ),
    )
    bench.add_argument("--shards", type=int, default=1)
    bench.add_argument("--segments", type=int, default=4)
    bench.add_argument(
        "--segmenter", choices=["rs", "rh", "apd"], default="apd"
    )
    bench.add_argument("--hnsw-m", type=int, default=12)
    bench.add_argument("--ef-construction", type=int, default=56)
    bench.add_argument(
        "--build-batch",
        type=int,
        default=64,
        help="construction wave size (<= 1 = sequential insertion)",
    )
    bench.add_argument(
        "--quantize",
        choices=["none", "int8", "pq"],
        default="none",
        help="compressed-domain scoring backend for the built segments",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.set_defaults(handler=_cmd_bench)

    lint = commands.add_parser(
        "lint",
        help=(
            "run the repo-specific invariant linter (lock discipline, "
            "asyncio hygiene, determinism, error discipline, wire-protocol "
            "sync)"
        ),
    )
    lint.add_argument(
        "paths", nargs="*", help="files or directories (default: src/repro)"
    )
    lint.add_argument(
        "--format",
        choices=["text", "github"],
        default="text",
        help="diagnostic format: human text or GitHub ::error annotations",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        help="suppression baseline (default: src/repro/analysis/baseline.toml)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    lint.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
