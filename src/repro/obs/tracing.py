"""Sampled request tracing with cross-wire span propagation.

A **trace** is a tree of spans covering one request end to end: broker
side (queue wait, cache, routing, every shard RPC with hedge/failover
attempts as children, merge) and searcher side (decode, descend, beam,
rescore, encode).  The trace context travels in the SEARCH frame header;
the searcher's spans come back in the RESULT header and are spliced
under the broker's RPC-attempt span, so one request yields ONE trace
even across process boundaries.

Tracing is **sampled** (:class:`Tracer`, ``sample_rate``, default 0 =
off -- the serving hot path then never touches a clock) and a
**slow-query log** force-keeps any request whose wall time crosses a
threshold, sampled or not.

Spans are plain dicts -- JSON-safe by construction, which is what lets
them ride the wire protocol's JSON headers untouched::

    {"name": "beam", "start_ms": 1.2, "dur_ms": 3.4,
     "annotations": {...}, "children": [...]}

``start_ms`` is relative to the owning recorder's start (the broker's
trace, or the searcher's per-request recorder); :func:`rebase_spans`
shifts a remote recorder's spans onto the local timeline when splicing.

Searcher-side kernels pick up the active recorder ambiently
(:func:`current_recorder` / :func:`activate`); the broker's fan-out
passes span objects explicitly instead, because its RPCs run on a
separate event-loop thread where context variables do not follow.
"""

from __future__ import annotations

import json
import logging
import random
import threading
import time
from collections import deque
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar

logger = logging.getLogger("repro.obs.slow_query")


def _new_span(name: str, start_ms: float, annotations: dict) -> dict:
    return {
        "name": name,
        "start_ms": start_ms,
        "dur_ms": 0.0,
        "annotations": annotations,
        "children": [],
    }


def rebase_spans(spans: list[dict], base_ms: float) -> list[dict]:
    """Shift remote spans (and their subtrees) onto a local timeline.

    A remote recorder's ``start_ms`` values are relative to *its* start;
    adding the local parent span's start approximates one shared
    timeline (clock skew only shifts, never reorders, a subtree).
    """
    rebased = []
    for span in spans:
        copy = dict(span)
        copy["start_ms"] = float(span.get("start_ms", 0.0)) + base_ms
        copy["children"] = rebase_spans(span.get("children", []), base_ms)
        rebased.append(copy)
    return rebased


class SpanRecorder:
    """Collects a span tree for one request on one side of the wire.

    ``span()`` is the nested context-manager interface (single-threaded
    use: the searcher's request handler, the broker's request thread);
    ``start_span``/``end_span`` are the explicit-parent interface for
    code running off-thread (the broker's fan-out event loop), where
    nesting-by-stack would race.
    """

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self.spans: list[dict] = []
        self._stack: list[dict] = []

    def _now_ms(self) -> float:
        return (time.perf_counter() - self._t0) * 1e3

    @contextmanager
    def span(self, name: str, **annotations):
        entry = self.start_span(name, **annotations)
        self._stack.append(entry)
        try:
            yield entry
        finally:
            self._stack.pop()
            self.end_span(entry)

    def start_span(
        self, name: str, parent: dict | None = None, **annotations
    ) -> dict:
        """Open a span under ``parent`` (or the current nesting level)."""
        entry = _new_span(name, self._now_ms(), annotations)
        if parent is not None:
            parent["children"].append(entry)
        elif self._stack:
            self._stack[-1]["children"].append(entry)
        else:
            self.spans.append(entry)
        return entry

    def end_span(self, span: dict) -> dict:
        span["dur_ms"] = self._now_ms() - span["start_ms"]
        return span

    def attach_remote(self, parent: dict, remote_spans: list[dict]) -> None:
        """Splice another process's spans under a local span."""
        parent["children"].extend(
            rebase_spans(remote_spans, parent["start_ms"])
        )

    def export(self) -> list[dict]:
        return self.spans


class Trace(SpanRecorder):
    """A :class:`SpanRecorder` with an identity and a sampling verdict."""

    def __init__(self, trace_id: str, sampled: bool) -> None:
        super().__init__()
        self.trace_id = trace_id
        self.sampled = sampled
        self.duration_ms: float = 0.0

    def context(self) -> dict:
        """The wire form propagated in the SEARCH frame header."""
        return {"id": self.trace_id}

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "sampled": self.sampled,
            "duration_ms": self.duration_ms,
            "spans": self.spans,
        }


class Tracer:
    """Sampling policy + bounded storage for finished traces.

    Parameters
    ----------
    sample_rate:
        Probability a request is traced; ``0.0`` (default) keeps the
        hot path free of any tracing work unless the slow-query log is
        armed.
    slow_query_threshold_s:
        When set, *every* request is recorded, and any whose wall time
        crosses the threshold is kept (and logged) even when the sample
        coin said no -- the slow-query log.
    capacity:
        Ring size for kept traces (oldest evicted first).
    seed:
        Seeds the sampling RNG (tests want deterministic sampling).
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        slow_query_threshold_s: float | None = None,
        capacity: int = 64,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if slow_query_threshold_s is not None and slow_query_threshold_s < 0:
            raise ValueError("slow_query_threshold_s must be >= 0")
        self.sample_rate = float(sample_rate)
        self.slow_query_threshold_s = slow_query_threshold_s
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._kept: deque[Trace] = deque(maxlen=max(1, int(capacity)))
        self._slow: deque[Trace] = deque(maxlen=max(1, int(capacity)))
        self.started = 0
        self.kept = 0
        self.slow_queries = 0

    @property
    def enabled(self) -> bool:
        """Whether any request could be recorded at all."""
        return (
            self.sample_rate > 0.0 or self.slow_query_threshold_s is not None
        )

    def begin(self) -> Trace | None:
        """Start a trace for one request, or ``None`` when off.

        Returns a :class:`Trace` whenever recording is worthwhile: the
        sample coin came up, or the slow-query log is armed (the trace
        is then recorded *tentatively* and only kept if it turns out
        slow).
        """
        if not self.enabled:
            return None
        with self._lock:
            sampled = (
                self.sample_rate > 0.0
                and self._rng.random() < self.sample_rate
            )
            if not sampled and self.slow_query_threshold_s is None:
                return None
            self.started += 1
            trace_id = f"{self._rng.getrandbits(64):016x}"
        return Trace(trace_id, sampled)

    def finish(self, trace: Trace | None, duration_s: float) -> bool:
        """Close out a request's trace; returns whether it was kept."""
        if trace is None:
            return False
        trace.duration_ms = duration_s * 1e3
        slow = (
            self.slow_query_threshold_s is not None
            and duration_s >= self.slow_query_threshold_s
        )
        if not (trace.sampled or slow):
            return False
        with self._lock:
            self._kept.append(trace)
            self.kept += 1
            if slow:
                self._slow.append(trace)
                self.slow_queries += 1
        if slow:
            logger.warning(
                "slow query: trace %s took %.1f ms (threshold %.1f ms)",
                trace.trace_id,
                trace.duration_ms,
                self.slow_query_threshold_s * 1e3,
            )
        return True

    def traces(self) -> list[Trace]:
        with self._lock:
            return list(self._kept)

    def slow(self) -> list[Trace]:
        with self._lock:
            return list(self._slow)

    def export(self) -> list[dict]:
        """Kept traces as JSON-safe dicts (newest last)."""
        return [trace.to_dict() for trace in self.traces()]

    def export_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.export(), indent=indent)

    def stats(self) -> dict:
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "slow_query_threshold_s": self.slow_query_threshold_s,
                "started": self.started,
                "kept": self.kept,
                "slow_queries": self.slow_queries,
            }


#: The ambient recorder searcher-side kernels report spans into.
_ACTIVE: ContextVar[SpanRecorder | None] = ContextVar(
    "repro_obs_active_recorder", default=None
)


def current_recorder() -> SpanRecorder | None:
    """The recorder activated for the current context, if any."""
    return _ACTIVE.get()


def activate(recorder: SpanRecorder | None):
    """Install ``recorder`` as the ambient recorder; returns the token.

    Must be called *inside* the executing context: ``contextvars`` do
    not propagate into ``run_in_executor`` workers or foreign event
    loops, so whoever runs the work activates explicitly.
    """
    return _ACTIVE.set(recorder)


def deactivate(token) -> None:
    _ACTIVE.reset(token)


def maybe_span(recorder: SpanRecorder | None, name: str, **annotations):
    """A ``recorder.span`` when tracing, a free no-op context otherwise."""
    if recorder is None:
        return nullcontext()
    return recorder.span(name, **annotations)


def format_trace(trace: dict) -> str:
    """Pretty-print one exported trace as an indented span tree."""
    lines = [
        f"trace {trace.get('trace_id', '?')}  "
        f"{trace.get('duration_ms', 0.0):.2f} ms"
        + ("" if trace.get("sampled", True) else "  [slow-query]")
    ]

    def walk(spans: list[dict], depth: int) -> None:
        for span in spans:
            annotations = span.get("annotations") or {}
            extra = (
                "  " + " ".join(
                    f"{key}={value}" for key, value in annotations.items()
                )
                if annotations
                else ""
            )
            lines.append(
                f"{'  ' * depth}- {span['name']:<12} "
                f"@{span.get('start_ms', 0.0):>8.2f} ms  "
                f"{span.get('dur_ms', 0.0):>8.2f} ms{extra}"
            )
            walk(span.get("children", []), depth + 1)

    walk(trace.get("spans", []), 1)
    return "\n".join(lines)
