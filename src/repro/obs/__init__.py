"""Observability: metrics registry, request tracing, search-cost accounting.

Three small, dependency-free building blocks shared by every serving
layer:

- :mod:`repro.obs.metrics` -- a process-wide registry of labelled
  counters / gauges / fixed-bucket histograms with Prometheus-style text
  exposition and a snapshot format that merges across processes (the
  STATS RPC aggregates a whole fleet into one snapshot).
- :mod:`repro.obs.tracing` -- sampled request traces: span trees that
  cross the wire (the SEARCH frame carries the trace context, the RESULT
  frame carries the searcher's spans back), plus a slow-query log that
  force-keeps any request over a threshold.
- :mod:`repro.obs.cost` -- per-query-batch search-cost counters (hops,
  distance computations, candidates visited, segments probed, rescore
  rows) threaded through the lockstep HNSW kernels.
"""

from repro.obs.cost import SearchCost
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import SpanRecorder, Trace, Tracer

__all__ = [
    "MetricsRegistry",
    "SearchCost",
    "SpanRecorder",
    "Trace",
    "Tracer",
    "get_registry",
]
