"""A process-wide registry of labelled, mergeable metrics.

Three instrument kinds, all thread-safe and all label-aware:

- :class:`Counter` -- monotonically increasing totals (``inc``).
- :class:`Gauge` -- point-in-time values (``set`` / ``add``).
- :class:`Histogram` -- fixed-bucket distributions (``observe``);
  fixed bounds make histograms *mergeable*: two snapshots of the same
  histogram add bucket-wise, which is what lets the STATS RPC fold a
  whole fleet into one distribution.

Every instrument lives in a :class:`MetricsRegistry`.  Serving code uses
the process-wide registry (:func:`get_registry`); tests can construct
private registries.  Registration is idempotent: asking for an existing
``(name, kind)`` returns the same instrument (so every ``Broker`` in the
process shares one ``lanns_broker_queries_total``, distinguished by
labels), while re-registering a name under a different kind raises.

``snapshot()`` returns a plain JSON-safe dict; ``merge_snapshot()``
folds such a dict (typically from another process, via the STATS RPC)
into this registry -- counters and histograms add, gauges add too (fleet
snapshots label series per shard/replica, so distinct processes occupy
distinct series and "add" degenerates to "union").  ``render_text()``
emits the Prometheus text exposition format.
"""

from __future__ import annotations

import math
import threading

#: Default histogram bounds (seconds): tuned for serving latencies from
#: sub-millisecond cache hits to multi-second degraded fan-outs.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def _label_key(labels: dict) -> tuple:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    """Escape a label value for the Prometheus text format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_series(name: str, key: tuple, extra: tuple = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return name
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared bookkeeping: name, help text, per-label-set series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.RLock):
        self.name = name
        self.help = help_text
        self._lock = lock
        self._series: dict[tuple, object] = {}

    def _snapshot_series(self) -> list:
        with self._lock:
            return [
                [[list(pair) for pair in key], self._export_value(value)]
                for key, value in sorted(self._series.items())
            ]

    def _export_value(self, value):
        return value


class Counter(_Metric):
    """A monotonically increasing total, one value per label set."""

    kind = "counter"

    def inc(self, value: float = 1, **labels) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + value

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def _merge_series(self, key: tuple, exported) -> None:
        with self._lock:
            self._series[key] = self._series.get(key, 0) + exported


class Gauge(_Metric):
    """A point-in-time value, one per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    def add(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + value

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def _merge_series(self, key: tuple, exported) -> None:
        with self._lock:
            self._series[key] = self._series.get(key, 0) + exported


class Histogram(_Metric):
    """A fixed-bucket distribution; fixed bounds make snapshots add."""

    kind = "histogram"

    def __init__(self, name, help_text, lock, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help_text, lock)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} buckets must be increasing")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                # counts has one slot per bound plus the +Inf overflow.
                series = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._series[key] = series
            slot = len(self.buckets)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    slot = index
                    break
            series["counts"][slot] += 1
            series["sum"] += value
            series["count"] += 1

    def value(self, **labels) -> dict | None:
        """The raw series dict for a label set (None when unobserved)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return None if series is None else dict(series)

    def _export_value(self, value):
        return {
            "counts": list(value["counts"]),
            "sum": value["sum"],
            "count": value["count"],
        }

    def _merge_series(self, key: tuple, exported) -> None:
        counts = exported["counts"]
        if len(counts) != len(self.buckets) + 1:
            raise ValueError(
                f"histogram {self.name}: snapshot has {len(counts)} "
                f"buckets, registry has {len(self.buckets) + 1}"
            )
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._series[key] = series
            for slot, count in enumerate(counts):
                series["counts"][slot] += count
            series["sum"] += exported["sum"]
            series["count"] += exported["count"]


class MetricsRegistry:
    """A named collection of metrics with snapshot / merge / exposition."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls, name: str, help_text: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help_text, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(Gauge, name, help_text)

    def histogram(
        self, name: str, help_text: str = "", buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(Histogram, name, help_text, buckets=buckets)

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every metric (tests only)."""
        with self._lock:
            self._metrics.clear()

    # -- snapshot / merge ----------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain JSON-safe dump of every metric and series."""
        out: dict = {}
        for metric in self.metrics():
            entry = {
                "kind": metric.kind,
                "help": metric.help,
                "series": metric._snapshot_series(),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            out[metric.name] = entry
        return out

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another process's :meth:`snapshot` into this registry."""
        for name, entry in snap.items():
            kind = entry.get("kind", "counter")
            if kind == "counter":
                metric = self.counter(name, entry.get("help", ""))
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""))
            elif kind == "histogram":
                metric = self.histogram(
                    name,
                    entry.get("help", ""),
                    buckets=entry.get("buckets", DEFAULT_BUCKETS),
                )
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            for raw_key, exported in entry.get("series", []):
                key = tuple((str(k), str(v)) for k, v in raw_key)
                metric._merge_series(key, exported)

    # -- exposition ----------------------------------------------------------------
    def render_text(self) -> str:
        """Prometheus text exposition of every metric."""
        lines: list[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for raw_key, exported in metric._snapshot_series():
                key = tuple((k, v) for k, v in raw_key)
                if isinstance(metric, Histogram):
                    running = 0
                    for bound, count in zip(
                        metric.buckets, exported["counts"]
                    ):
                        running += count
                        series = _format_series(
                            metric.name + "_bucket",
                            key,
                            (("le", _format_number(bound)),),
                        )
                        lines.append(f"{series} {running}")
                    running += exported["counts"][-1]
                    series = _format_series(
                        metric.name + "_bucket", key, (("le", "+Inf"),)
                    )
                    lines.append(f"{series} {running}")
                    lines.append(
                        f"{_format_series(metric.name + '_sum', key)} "
                        f"{_format_number(exported['sum'])}"
                    )
                    lines.append(
                        f"{_format_series(metric.name + '_count', key)} "
                        f"{exported['count']}"
                    )
                else:
                    lines.append(
                        f"{_format_series(metric.name, key)} "
                        f"{_format_number(exported)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _format_number(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


#: The process-wide registry all serving code reports into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY
