"""Per-query-batch search-cost accounting.

The paper's core tradeoff is recall vs *work* (Tables 3/6): how many
graph hops, distance computations and candidate visits a query spends.
:class:`SearchCost` is the accumulator the lockstep HNSW kernels write
into -- passed as an optional ``cost=None`` parameter so the hot path is
bit-for-bit unchanged when accounting is off -- and the serving tier
carries over the wire (``as_dict`` / ``from_dict`` / ``merge``) into
``SearchResponse.info()`` and the metrics registry.

Counter semantics (all totals over the query batch the cost was
collected for):

- ``hops``: greedy/beam advance steps taken (one per query per round a
  query moved or popped a candidate).
- ``distance_comps``: full distance evaluations, including quantized
  code scoring and the exact rescore (the ``Scorer.ops`` delta).
- ``candidates_visited``: neighbor candidates scored by the beam rounds.
- ``segments_probed``: (query row, segment) probe executions.
- ``rescore_rows``: beam survivors rescored exactly (quantized path).
"""

from __future__ import annotations

FIELDS = (
    "hops",
    "distance_comps",
    "candidates_visited",
    "segments_probed",
    "rescore_rows",
)


class SearchCost:
    """Mutable cost counters for one query batch (see module docstring)."""

    __slots__ = FIELDS

    def __init__(
        self,
        hops: int = 0,
        distance_comps: int = 0,
        candidates_visited: int = 0,
        segments_probed: int = 0,
        rescore_rows: int = 0,
    ) -> None:
        self.hops = int(hops)
        self.distance_comps = int(distance_comps)
        self.candidates_visited = int(candidates_visited)
        self.segments_probed = int(segments_probed)
        self.rescore_rows = int(rescore_rows)

    def merge(self, other: "SearchCost | dict | None") -> "SearchCost":
        """Add another cost (or its ``as_dict`` form) into this one."""
        if other is None:
            return self
        if isinstance(other, dict):
            other = SearchCost.from_dict(other)
        for field in FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))
        return self

    def as_dict(self) -> dict:
        return {field: getattr(self, field) for field in FIELDS}

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchCost":
        """Build from ``as_dict`` output; unknown keys are ignored."""
        return cls(**{
            field: int(payload.get(field, 0)) for field in FIELDS
        })

    def __eq__(self, other) -> bool:
        if not isinstance(other, SearchCost):
            return NotImplemented
        return all(
            getattr(self, field) == getattr(other, field) for field in FIELDS
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{f}={getattr(self, f)}" for f in FIELDS)
        return f"SearchCost({inner})"
