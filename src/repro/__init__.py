"""LANNS: a web-scale approximate nearest neighbor lookup system.

This package is a from-scratch reproduction of the VLDB 2021 industrial
paper *"LANNS: A Web-Scale Approximate Nearest Neighbor Lookup System"*
(Doshi et al., LinkedIn).  It provides:

- :mod:`repro.hnsw` -- a complete Hierarchical Navigable Small World index.
- :mod:`repro.segmenters` -- the RS / RH / APD data segmenters with virtual
  and physical spill, plus the recall-bound theory from the paper.
- :mod:`repro.core` -- the LANNS index itself: two-level (shard, segment)
  partitioning, two-level merging and the ``perShardTopK`` optimisation.
- :mod:`repro.sparklite` -- a miniature Spark-like execution engine used by
  the offline pipelines.
- :mod:`repro.storage` -- a local stand-in for HDFS plus the index export
  format.
- :mod:`repro.offline` / :mod:`repro.online` -- the offline (Spark-style)
  pipelines and the online searcher/broker serving tier.
- :mod:`repro.baselines` -- from-scratch ANN baselines (Annoy-like RP
  forest, LSH, IVF, IVF-PQ, brute force) used for the Figure 1 frontier.
- :mod:`repro.data` / :mod:`repro.eval` -- synthetic dataset recipes with
  the paper's dimensionalities, ground truth, and the evaluation harness.

Quickstart::

    import numpy as np
    from repro import LannsConfig, build_lanns_index

    rng = np.random.default_rng(0)
    data = rng.normal(size=(2000, 64)).astype(np.float32)
    config = LannsConfig(num_shards=2, num_segments=4, segmenter="apd")
    index = build_lanns_index(data, config=config)
    ids, dists = index.query(data[0], top_k=10)
"""

from repro.core.config import LannsConfig
from repro.core.builder import build_lanns_index, LannsBuilder
from repro.core.index import LannsIndex, ShardIndex
from repro.core.topk import per_shard_top_k
from repro.hnsw import HnswIndex, HnswParams
from repro.version import __version__

__all__ = [
    "LannsConfig",
    "LannsBuilder",
    "LannsIndex",
    "ShardIndex",
    "HnswIndex",
    "HnswParams",
    "build_lanns_index",
    "per_shard_top_k",
    "__version__",
]
