"""Evaluation: timing, table formatting, and the shared experiment harness
behind every benchmark in ``benchmarks/``."""

from repro.eval.timing import Timer, measure_latency, measure_qps
from repro.eval.tables import format_table, write_result_table
from repro.eval.harness import (
    SegmentedExperiment,
    build_partitioned,
    evaluate_recall,
    query_experiment,
    swap_segmenter,
)

__all__ = [
    "Timer",
    "measure_qps",
    "measure_latency",
    "format_table",
    "write_result_table",
    "SegmentedExperiment",
    "build_partitioned",
    "evaluate_recall",
    "query_experiment",
    "swap_segmenter",
]
