"""Evaluation: timing, table formatting, and the shared experiment harness
behind every benchmark in ``benchmarks/``."""

from repro.eval.timing import (
    StageLatencyRecorder,
    Timer,
    measure_concurrent_qps,
    measure_latency,
    measure_qps,
)
from repro.eval.tables import format_table, write_result_table
from repro.eval.harness import (
    SegmentedExperiment,
    build_partitioned,
    concurrent_serving_throughput,
    evaluate_recall,
    query_experiment,
    swap_segmenter,
)

__all__ = [
    "StageLatencyRecorder",
    "Timer",
    "measure_qps",
    "measure_concurrent_qps",
    "measure_latency",
    "concurrent_serving_throughput",
    "format_table",
    "write_result_table",
    "SegmentedExperiment",
    "build_partitioned",
    "evaluate_recall",
    "query_experiment",
    "swap_segmenter",
]
