"""Paper-style result tables.

Every benchmark renders its rows with :func:`format_table` and persists
them with :func:`write_result_table` to ``benchmarks/results/<name>.txt``
(plus a machine-readable ``.json`` next to it), so a full
``pytest benchmarks/ --benchmark-only`` run leaves the reproduced tables
on disk for comparison against the paper.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    if value is None:
        return "-"
    return str(value)


def format_table(
    rows: Sequence[Mapping],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned, boxless text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_render_cell(row.get(column)) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(
        str(column).ljust(widths[i]) for i, column in enumerate(columns)
    )
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line))
        )
    return "\n".join(lines)


def write_result_table(
    name: str,
    rows: Sequence[Mapping],
    *,
    results_dir: str | Path,
    title: str | None = None,
    columns: Sequence[str] | None = None,
    notes: str | None = None,
) -> str:
    """Persist a table as ``<results_dir>/<name>.txt`` + ``.json``.

    Returns the rendered text (also printed by the benchmarks).
    """
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    text = format_table(rows, columns=columns, title=title)
    if notes:
        text = text + "\n\n" + notes.strip() + "\n"
    (results_dir / f"{name}.txt").write_text(text, encoding="utf-8")
    payload = {"name": name, "title": title, "rows": [dict(row) for row in rows]}
    (results_dir / f"{name}.json").write_text(
        json.dumps(payload, indent=2, default=str), encoding="utf-8"
    )
    return text
