"""Shared experiment machinery used by the benchmark suite.

The Table 1-6 experiments all follow the same flow: build a partitioned
index through the offline pipeline (collecting build-stage metrics), run
the query pipeline (collecting query-stage metrics), and score recall
against exact ground truth.  This module wraps that flow once so each
benchmark file only declares its sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import LannsConfig
from repro.core.index import LannsIndex, ShardIndex
from repro.data.datasets import Dataset
from repro.eval.timing import (
    measure_batch_qps,
    measure_concurrent_qps,
    measure_qps,
)
from repro.offline.indexing import build_index_job
from repro.offline.querying import QueryJobResult, query_index_job
from repro.offline.recall import recall_curve
from repro.segmenters.base import Segmenter
from repro.sparklite.cluster import LocalCluster
from repro.sparklite.metrics import StageMetrics
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import IndexManifest, load_lanns_index


@dataclass
class SegmentedExperiment:
    """A built-and-persisted index plus everything needed to query it."""

    dataset: Dataset
    config: LannsConfig
    fs: LocalHdfs
    cluster: LocalCluster
    index_path: str
    manifest: IndexManifest
    build_metrics: StageMetrics

    def load_index(self) -> LannsIndex:
        """Materialise the persisted index in memory."""
        return load_lanns_index(self.fs, self.index_path)

    def query(
        self,
        top_k: int,
        *,
        ef: int | None = None,
        num_query_partitions: int | None = None,
    ) -> QueryJobResult:
        """Run the offline query pipeline over the dataset's query set."""
        return query_index_job(
            self.cluster,
            self.fs,
            self.index_path,
            self.dataset.queries,
            top_k,
            ef=ef,
            num_query_partitions=num_query_partitions,
            checkpoint=False,
        )


def build_partitioned(
    dataset: Dataset,
    config: LannsConfig,
    fs: LocalHdfs,
    cluster: LocalCluster,
    *,
    index_path: str | None = None,
    segmenter: Segmenter | None = None,
) -> SegmentedExperiment:
    """Build one configuration through the offline pipeline."""
    if index_path is None:
        index_path = (
            f"indices/{dataset.name}/{config.segmenter}"
            f"-s{config.num_shards}x{config.num_segments}"
            f"-{config.spill_mode}-a{config.alpha}"
        )
    manifest, build_metrics = build_index_job(
        cluster,
        fs,
        dataset.base,
        config,
        index_path,
        segmenter=segmenter,
    )
    return SegmentedExperiment(
        dataset=dataset,
        config=config,
        fs=fs,
        cluster=cluster,
        index_path=index_path,
        manifest=manifest,
        build_metrics=build_metrics,
    )


def evaluate_recall(
    dataset: Dataset, result_ids: np.ndarray, ks: list[int]
) -> dict[int, float]:
    """Recall of ``result_ids`` against the dataset's exact ground truth."""
    truth = dataset.ground_truth(max(ks))
    return recall_curve(result_ids, truth, ks)


def query_experiment(
    experiment: SegmentedExperiment,
    top_k: int,
    ks: list[int],
    *,
    ef: int | None = None,
) -> tuple[QueryJobResult, dict[int, float]]:
    """Query + score one experiment; returns (job result, recall@k map)."""
    result = experiment.query(top_k, ef=ef)
    recalls = evaluate_recall(experiment.dataset, result.ids, ks)
    return result, recalls


def serving_throughput(
    index: LannsIndex,
    queries: np.ndarray,
    top_k: int,
    *,
    ef: int | None = None,
    batch_size: int = 32,
    collect_ids: bool = False,
) -> dict:
    """Compare sequential single-query QPS to batched QPS on one index.

    Serves the query set twice -- once query-at-a-time through
    :meth:`~repro.core.index.LannsIndex.query` and once in batches of
    ``batch_size`` through
    :meth:`~repro.core.index.LannsIndex.query_batch` -- and reports both
    throughput dicts plus the batched/sequential speedup.  With
    ``collect_ids`` the batched pass's ``(n, top_k)`` result ids are
    returned under ``"ids"`` (e.g. for recall scoring) so callers do not
    need a third serving pass.
    """
    queries = np.asarray(queries, dtype=np.float32)
    if queries.shape[0] == 0:
        raise ValueError("serving_throughput needs at least one query")
    sequential = measure_qps(
        lambda query: index.query(query, top_k, ef=ef), queries
    )
    chunks: list[np.ndarray] = []

    def serve_batch(batch: np.ndarray) -> None:
        ids, _ = index.query_batch(batch, top_k, ef=ef)
        if collect_ids:
            chunks.append(ids)

    batched = measure_batch_qps(serve_batch, queries, batch_size)
    report = {
        "sequential": sequential,
        "batched": batched,
        "speedup": batched["qps"] / sequential["qps"]
        if sequential["qps"] > 0
        else float("inf"),
    }
    if collect_ids:
        report["ids"] = np.concatenate(chunks, axis=0)
    return report


def concurrent_serving_throughput(
    index: LannsIndex,
    queries: np.ndarray,
    top_k: int,
    *,
    ef: int | None = None,
    clients: int = 8,
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    cache_size: int | None = None,
    check_parity: bool = True,
) -> dict:
    """Load-test the concurrent serving core against the PR-1 baseline.

    Fronts ``index`` with two brokers over one shared searcher fleet:

    - *baseline* -- the plain PR-1 broker (no admission layer, no cache),
      serving the query set one call at a time (``sequential``);
    - *core* -- the micro-batching broker with a result cache, driven by
      ``clients`` closed-loop threads issuing single-query calls
      (``concurrent``), then re-serving the now-cached query set
      (``cached``).

    With ``check_parity`` every concurrent and cached answer is asserted
    bit-identical (ids and distances) to the baseline's sequential
    answer, so the speedups cannot come from wrong results.  Returns the
    three throughput dicts, the ``concurrent_speedup`` and
    ``cache_speedup`` ratios, and the core broker's ``stats()`` snapshot.
    """
    from repro.online.broker import Broker
    from repro.online.searcher import SearcherNode

    queries = np.asarray(queries, dtype=np.float32)
    if queries.shape[0] == 0:
        raise ValueError("concurrent_serving_throughput needs queries")
    num_shards = index.config.num_shards
    searchers = [SearcherNode(shard_id) for shard_id in range(num_shards)]
    for shard_id, searcher in enumerate(searchers):
        searcher.host("bench", index.shards[shard_id])
    if cache_size is None:
        cache_size = 2 * queries.shape[0]
    baseline = Broker(
        searchers, index.config, parallel_fanout=num_shards > 1
    )
    core = Broker(
        searchers,
        index.config,
        parallel_fanout=num_shards > 1,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        cache_size=cache_size,
    )
    try:
        expected = [
            baseline.search("bench", query, top_k, ef=ef)
            for query in queries
        ]
        sequential = measure_qps(
            lambda query: baseline.search("bench", query, top_k, ef=ef),
            queries,
        )
        concurrent = measure_concurrent_qps(
            lambda query: core.search("bench", query, top_k, ef=ef),
            queries,
            clients,
        )
        # The concurrent pass filled the cache; this pass is all hits.
        cached = measure_qps(
            lambda query: core.search("bench", query, top_k, ef=ef),
            queries,
        )
        # Snapshot before the parity re-serves below, so the reported
        # hit/miss counters reflect the measured traffic only.
        core_stats = core.stats()
        if check_parity:
            # Explicit raises, not bare asserts: parity is the guarantee
            # behind the reported speedups and must survive ``python -O``.
            def require(ok: bool, what: str, row: int) -> None:
                if not ok:
                    raise AssertionError(
                        f"{what} mismatch vs sequential at query {row}"
                    )

            for row, (want_ids, want_dists) in enumerate(expected):
                got_ids, got_dists = concurrent["results"][row]
                require((got_ids == want_ids).all(), "concurrent id", row)
                require(
                    (got_dists == want_dists).all(),
                    "concurrent distance",
                    row,
                )
                hit_ids, hit_dists = core.search(
                    "bench", queries[row], top_k, ef=ef
                )
                require((hit_ids == want_ids).all(), "cached id", row)
                require(
                    (hit_dists == want_dists).all(), "cached distance", row
                )
    finally:
        baseline.close()
        core.close()
    concurrent = {
        key: value for key, value in concurrent.items() if key != "results"
    }
    return {
        "clients": concurrent["clients"],
        "sequential": sequential,
        "concurrent": concurrent,
        "cached": cached,
        "concurrent_speedup": concurrent["qps"] / sequential["qps"]
        if sequential["qps"] > 0
        else float("inf"),
        "cache_speedup": cached["qps"] / sequential["qps"]
        if sequential["qps"] > 0
        else float("inf"),
        "core_stats": core_stats,
    }


def remote_serving_throughput(
    fs: LocalHdfs,
    index_path: str,
    queries: np.ndarray,
    top_k: int,
    *,
    addresses: list[str],
    ef: int | None = None,
    batch_size: int = 32,
    max_batch: int = 1,
    max_wait_ms: float = 2.0,
    cache_size: int = 0,
    request_timeout_s: float | None = None,
    async_fanout: bool = False,
    hedge_after_s: float | str | None = None,
    check_parity: bool = True,
) -> dict:
    """Measure serving through a *remote* searcher fleet vs in-process.

    Deploys the exported index at ``index_path`` twice -- onto an
    in-process fleet and onto the running searcher processes at
    ``addresses`` (real multi-process serving over loopback RPC) -- and
    serves the query set through both, sequentially and in batches of
    ``batch_size``.  With ``check_parity`` every remote answer (ids
    *and* distances) is asserted bit-identical to the in-process one, so
    the reported numbers cannot come from wrong results; the returned
    dict carries both throughput reports plus the remote broker's
    ``stats()`` snapshot (per-stage latency, shard failures, hedges).

    ``async_fanout`` / ``hedge_after_s`` select the event-loop fan-out
    (and hedged shard requests) for the remote service -- see
    :class:`~repro.online.broker.Broker`.
    """
    from repro.online.service import OnlineService

    queries = np.asarray(queries, dtype=np.float32)
    if queries.shape[0] == 0:
        raise ValueError("remote_serving_throughput needs queries")
    local = OnlineService(parallel_fanout=True)
    remote = OnlineService(
        searchers=addresses,
        parallel_fanout=True,
        async_fanout=async_fanout,
        hedge_after_s=hedge_after_s,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        cache_size=cache_size,
        request_timeout_s=request_timeout_s,
    )
    try:
        local.deploy(fs, index_path, index_name="bench")
        remote.deploy(fs, index_path, index_name="bench")
        want_ids, want_dists = local.query_batch(
            queries, top_k, index_name="bench", ef=ef
        )
        local_stats = local.measure_qps(
            queries, top_k, index_name="bench", ef=ef, batch_size=batch_size
        )
        singles: list[tuple[np.ndarray, np.ndarray]] = []

        def serve_single(query: np.ndarray):
            result = remote.query(query, top_k, index_name="bench", ef=ef)
            singles.append(result)
            return result

        remote_sequential = measure_qps(serve_single, queries)
        chunks: list[tuple[np.ndarray, np.ndarray]] = []

        def serve_batch(batch: np.ndarray) -> None:
            chunks.append(
                remote.query_batch(batch, top_k, index_name="bench", ef=ef)
            )

        remote_batched = measure_batch_qps(serve_batch, queries, batch_size)
        got_ids = np.concatenate([ids for ids, _ in chunks], axis=0)
        got_dists = np.concatenate([dists for _, dists in chunks], axis=0)
        if check_parity:
            if not (got_ids == want_ids).all():
                raise AssertionError(
                    "remote ids differ from in-process results"
                )
            if not (got_dists == want_dists).all():
                raise AssertionError(
                    "remote distances differ from in-process results"
                )
            # The sequential pass must also have served right answers
            # (single-query results are the padded rows with the -1
            # sentinels trimmed).
            for row, (one_ids, one_dists) in enumerate(singles):
                valid = want_ids[row] >= 0
                if not (
                    (one_ids == want_ids[row][valid]).all()
                    and (one_dists == want_dists[row][valid]).all()
                ):
                    raise AssertionError(
                        f"remote single-query result differs from the "
                        f"in-process result at query {row}"
                    )
        remote_stats = remote.stats()["indices"]["bench"]
        remote.undeploy("bench")
    finally:
        local.close()
        remote.close()
    return {
        "queries": int(queries.shape[0]),
        "local": local_stats,
        "remote_sequential": remote_sequential,
        "remote_batched": remote_batched,
        "remote_stats": remote_stats,
        "parity_checked": bool(check_parity),
    }


def swap_segmenter(index: LannsIndex, segmenter: Segmenter) -> LannsIndex:
    """Rebind a built index to a segmenter with different spill boundaries.

    Under *virtual* spill, data placement depends only on the split medians
    -- not on the spill boundaries -- so indices built once can be queried
    under several ``alpha`` values by swapping the segmenter.  This is how
    the Table 7 spill sweep reuses builds.

    The new segmenter must have the same segment count; both the new and
    existing configuration must use virtual spill.
    """
    if index.config.spill_mode != "virtual":
        raise ValueError("swap_segmenter requires a virtual-spill index")
    if segmenter.num_segments != index.config.num_segments:
        raise ValueError(
            f"segmenter has {segmenter.num_segments} segments, index has "
            f"{index.config.num_segments}"
        )
    shards = [
        ShardIndex(shard.shard_id, shard.segments, segmenter)
        for shard in index.shards
    ]
    return LannsIndex(index.config, shards, segmenter)
