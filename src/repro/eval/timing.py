"""Wall-clock measurement helpers."""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable

import numpy as np


class Timer:
    """Context manager measuring elapsed wall time.

    >>> with Timer() as timer:
    ...     work()
    >>> timer.elapsed  # seconds
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


def quantile_summary(
    latencies_s: np.ndarray, *, infix: str = ""
) -> dict[str, float]:
    """The shared latency-quantile block: p50/p90/p99/max in milliseconds.

    Every throughput helper in this module (and the broker's per-stage
    summary) reports the same four quantile keys, so they are computed
    in exactly one place.  ``infix`` is inserted before the ``_ms``
    suffix (``infix="_batch"`` yields ``p99_batch_ms``), letting the
    batch-granular helpers keep their historical key names.  An empty
    sample set reports zeros.
    """
    values = np.asarray(latencies_s, dtype=np.float64)
    if values.size == 0:
        stats = {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    else:
        stats = {
            "p50": float(np.quantile(values, 0.50) * 1e3),
            "p90": float(np.quantile(values, 0.90) * 1e3),
            "p99": float(np.quantile(values, 0.99) * 1e3),
            "max": float(values.max() * 1e3),
        }
    return {f"{name}{infix}_ms": value for name, value in stats.items()}


class StageLatencyRecorder:
    """Thread-safe accumulator of per-stage serving latencies.

    The broker records one sample per request into each named stage
    (``queue_wait`` from the admission layer, ``fanout`` and ``merge``
    from the execute path), so a load test can decompose end-to-end
    latency into where the time actually went.

    Memory is bounded for long-lived brokers: exact ``count`` and
    ``total`` run forever, while the percentiles come from a sliding
    window of the most recent ``window`` samples per stage.  Recording
    happens under a lock (client and flusher threads record
    concurrently); :meth:`summary` snapshots count / total / mean /
    p50 / p99 per stage in milliseconds.
    """

    def __init__(self, window: int = 8192) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._lock = threading.Lock()
        self._recent: dict[str, deque[float]] = {}
        self._count: dict[str, int] = {}
        self._total: dict[str, float] = {}

    def record(self, stage: str, seconds: float) -> None:
        """Append one latency sample (seconds) to ``stage``."""
        seconds = float(seconds)
        with self._lock:
            recent = self._recent.get(stage)
            if recent is None:
                recent = self._recent[stage] = deque(maxlen=self.window)
                self._count[stage] = 0
                self._total[stage] = 0.0
            recent.append(seconds)
            self._count[stage] += 1
            self._total[stage] += seconds

    def recorder(self, stage: str) -> Callable[[float], None]:
        """A single-argument callback bound to ``stage``."""
        return lambda seconds: self.record(stage, seconds)

    def reset(self) -> None:
        """Drop all samples and counters."""
        with self._lock:
            self._recent.clear()
            self._count.clear()
            self._total.clear()

    def quantile(self, stage: str, q: float) -> tuple[int, float] | None:
        """``(window_count, value)`` of ``stage``'s recent-window quantile.

        Returns ``None`` when the stage has no samples yet.  This is the
        live read the broker's adaptive hedging uses: the sliding window
        keeps it current, the exact-forever counters are irrelevant to
        it.
        """
        with self._lock:
            recent = self._recent.get(stage)
            if not recent:
                return None
            values = np.asarray(recent, dtype=np.float64)
        return len(values), float(np.quantile(values, q))

    def summary(self) -> dict[str, dict]:
        """Per-stage stats: count, total_ms, mean_ms plus the quantiles.

        ``count``/``total_ms``/``mean_ms`` cover every sample ever
        recorded; the :func:`quantile_summary` block (p50/p90/p99/max)
        covers the recent window.
        """
        with self._lock:
            snapshot = {
                stage: (
                    self._count[stage],
                    self._total[stage],
                    np.asarray(values, dtype=np.float64),
                )
                for stage, values in self._recent.items()
                if values
            }
        return {
            stage: {
                "count": int(count),
                "total_ms": float(total * 1e3),
                "mean_ms": float(total / count * 1e3),
                **quantile_summary(recent),
            }
            for stage, (count, total, recent) in snapshot.items()
        }


def measure_latency(
    query_fn: Callable[[np.ndarray], object],
    queries: np.ndarray,
) -> np.ndarray:
    """Per-query latencies (seconds) of ``query_fn`` over ``queries``."""
    queries = np.asarray(queries)
    latencies = np.empty(queries.shape[0], dtype=np.float64)
    for row in range(queries.shape[0]):
        start = time.perf_counter()
        query_fn(queries[row])
        latencies[row] = time.perf_counter() - start
    return latencies


def measure_qps(
    query_fn: Callable[[np.ndarray], object],
    queries: np.ndarray,
) -> dict:
    """Serve ``queries`` one by one; report throughput/latency stats.

    Returns a dict with ``qps``, ``mean_ms`` and the
    :func:`quantile_summary` block (``p50_ms``/``p90_ms``/``p99_ms``/
    ``max_ms``).
    """
    latencies = measure_latency(query_fn, queries)
    total = float(latencies.sum())
    return {
        "qps": (len(latencies) / total) if total > 0 else float("inf"),
        "mean_ms": float(latencies.mean() * 1e3),
        **quantile_summary(latencies),
    }


def measure_concurrent_qps(
    query_fn: Callable[[np.ndarray], object],
    queries: np.ndarray,
    num_clients: int,
) -> dict:
    """Serve ``queries`` from ``num_clients`` closed-loop client threads.

    Each client owns a strided slice of the query set and issues its
    queries one at a time (a new request only after the previous answer),
    modelling independent callers rather than an open-loop flood.  All
    clients start together behind a barrier; ``qps`` is total queries
    over the barrier-to-last-finish wall time, and latency stats pool
    every per-call sample.

    Returns a dict with ``qps``, ``wall_s``, ``clients``, ``mean_ms``,
    the :func:`quantile_summary` block and ``results`` -- the per-query
    return values of ``query_fn`` in query order, so callers can assert
    parity against a sequential run without a second serving pass.
    """
    if num_clients <= 0:
        raise ValueError(f"num_clients must be positive, got {num_clients}")
    queries = np.asarray(queries)
    num_queries = queries.shape[0]
    num_clients = min(num_clients, max(num_queries, 1))
    results: list = [None] * num_queries
    latencies = np.zeros(num_queries, dtype=np.float64)
    barrier = threading.Barrier(num_clients + 1)
    errors: list[BaseException] = []

    def client(worker: int) -> None:
        try:
            barrier.wait()
            for row in range(worker, num_queries, num_clients):
                start = time.perf_counter()
                results[row] = query_fn(queries[row])
                latencies[row] = time.perf_counter() - start
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(worker,), daemon=True)
        for worker in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - begin
    if errors:
        raise errors[0]
    return {
        "qps": (num_queries / wall) if wall > 0 else float("inf"),
        "wall_s": wall,
        "clients": int(num_clients),
        "mean_ms": float(latencies.mean() * 1e3) if num_queries else 0.0,
        **quantile_summary(latencies),
        "results": results,
    }


def measure_batch_qps(
    batch_fn: Callable[[np.ndarray], object],
    queries: np.ndarray,
    batch_size: int,
) -> dict:
    """Serve ``queries`` in batches of ``batch_size``; report throughput.

    ``batch_fn`` receives a ``(b, d)`` slice per request.  Returns a dict
    with ``qps`` (queries, not batches, per second), ``batch_size``,
    ``batches``, ``mean_batch_ms`` and the per-batch
    :func:`quantile_summary` block (``p50_batch_ms`` ...
    ``max_batch_ms``).
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    queries = np.asarray(queries)
    num_queries = queries.shape[0]
    starts = list(range(0, num_queries, batch_size))
    latencies = np.empty(len(starts), dtype=np.float64)
    for request, start in enumerate(starts):
        tick = time.perf_counter()
        batch_fn(queries[start : start + batch_size])
        latencies[request] = time.perf_counter() - tick
    total = float(latencies.sum())
    return {
        "qps": (num_queries / total) if total > 0 else float("inf"),
        "batch_size": int(batch_size),
        "batches": len(starts),
        "mean_batch_ms": float(latencies.mean() * 1e3),
        **quantile_summary(latencies, infix="_batch"),
    }
