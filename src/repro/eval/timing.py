"""Wall-clock measurement helpers."""

from __future__ import annotations

import time
from typing import Callable

import numpy as np


class Timer:
    """Context manager measuring elapsed wall time.

    >>> with Timer() as timer:
    ...     work()
    >>> timer.elapsed  # seconds
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


def measure_latency(
    query_fn: Callable[[np.ndarray], object],
    queries: np.ndarray,
) -> np.ndarray:
    """Per-query latencies (seconds) of ``query_fn`` over ``queries``."""
    queries = np.asarray(queries)
    latencies = np.empty(queries.shape[0], dtype=np.float64)
    for row in range(queries.shape[0]):
        start = time.perf_counter()
        query_fn(queries[row])
        latencies[row] = time.perf_counter() - start
    return latencies


def measure_qps(
    query_fn: Callable[[np.ndarray], object],
    queries: np.ndarray,
) -> dict:
    """Serve ``queries`` one by one; report throughput/latency stats.

    Returns a dict with ``qps``, ``mean_ms``, ``p50_ms``, ``p99_ms``.
    """
    latencies = measure_latency(query_fn, queries)
    total = float(latencies.sum())
    return {
        "qps": (len(latencies) / total) if total > 0 else float("inf"),
        "mean_ms": float(latencies.mean() * 1e3),
        "p50_ms": float(np.quantile(latencies, 0.50) * 1e3),
        "p99_ms": float(np.quantile(latencies, 0.99) * 1e3),
    }


def measure_batch_qps(
    batch_fn: Callable[[np.ndarray], object],
    queries: np.ndarray,
    batch_size: int,
) -> dict:
    """Serve ``queries`` in batches of ``batch_size``; report throughput.

    ``batch_fn`` receives a ``(b, d)`` slice per request.  Returns a dict
    with ``qps`` (queries, not batches, per second), ``batch_size``,
    ``batches``, ``mean_batch_ms`` and ``p99_batch_ms``.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    queries = np.asarray(queries)
    num_queries = queries.shape[0]
    starts = list(range(0, num_queries, batch_size))
    latencies = np.empty(len(starts), dtype=np.float64)
    for request, start in enumerate(starts):
        tick = time.perf_counter()
        batch_fn(queries[start : start + batch_size])
        latencies[request] = time.perf_counter() - tick
    total = float(latencies.sum())
    return {
        "qps": (num_queries / total) if total > 0 else float("inf"),
        "batch_size": int(batch_size),
        "batches": len(starts),
        "mean_batch_ms": float(latencies.mean() * 1e3),
        "p99_batch_ms": float(np.quantile(latencies, 0.99) * 1e3),
    }
