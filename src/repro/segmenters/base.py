"""Segmenter interface and serialization registry.

A segmenter answers two questions:

- ``route_data(x)``  -- which segment(s) should store ``x``?  More than one
  only under *physical* spill.
- ``route_query(q)`` -- which segment(s) should a query probe?  More than
  one only under *virtual* spill.

The LANNS paper pre-learns one segmenter per index and shares it across
all shards (Section 5.1), which is why segmenters serialize independently
of any index data.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import SegmenterNotFittedError
from repro.utils.validation import as_matrix

#: Spill modes supported by hyperplane segmenters.
SPILL_MODES = ("virtual", "physical")


class Segmenter(ABC):
    """Routes data points and queries to segments within one shard."""

    #: Registry key, e.g. ``"rs"``, ``"rh"``, ``"apd"``.
    kind: str = ""

    def __init__(self, num_segments: int) -> None:
        if num_segments < 1:
            raise ValueError(f"num_segments must be >= 1, got {num_segments}")
        self.num_segments = int(num_segments)

    # -- lifecycle ---------------------------------------------------------------
    @property
    @abstractmethod
    def is_fitted(self) -> bool:
        """Whether the segmenter is ready to route."""

    @abstractmethod
    def fit(self, data: np.ndarray) -> "Segmenter":
        """Learn the segmenter from (a sample of) the data; returns self."""

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise SegmenterNotFittedError(
                f"{type(self).__name__} must be fitted before routing"
            )

    # -- routing -----------------------------------------------------------------
    @abstractmethod
    def route_data_batch(self, data: np.ndarray) -> list[tuple[int, ...]]:
        """Segment ids that should *store* each row of ``data``."""

    @abstractmethod
    def route_query_batch(self, queries: np.ndarray) -> list[tuple[int, ...]]:
        """Segment ids each query row should *probe*."""

    def route_data(self, point: np.ndarray) -> tuple[int, ...]:
        """Segment ids that should store a single point."""
        return self.route_data_batch(as_matrix(point))[0]

    def route_query(self, query: np.ndarray) -> tuple[int, ...]:
        """Segment ids a single query should probe."""
        return self.route_query_batch(as_matrix(query))[0]

    # -- persistence ----------------------------------------------------------------
    @abstractmethod
    def to_dict(self) -> dict:
        """JSON/npz-friendly payload; must round-trip via the registry."""

    @classmethod
    @abstractmethod
    def from_dict(cls, payload: dict) -> "Segmenter":
        """Inverse of :meth:`to_dict`."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_segments={self.num_segments}, "
            f"fitted={self.is_fitted})"
        )


_REGISTRY: dict[str, type[Segmenter]] = {}


def register_segmenter(cls: type[Segmenter]) -> type[Segmenter]:
    """Class decorator: register ``cls`` under its ``kind`` key."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must define a non-empty `kind`")
    _REGISTRY[cls.kind] = cls
    return cls


def registered_kinds() -> list[str]:
    """Registered segmenter kind names."""
    return sorted(_REGISTRY)


def get_segmenter_class(kind: str) -> type[Segmenter]:
    """Look up a segmenter class by kind name."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown segmenter kind {kind!r}; available: {registered_kinds()}"
        ) from None


def segmenter_from_dict(payload: dict) -> Segmenter:
    """Deserialize any registered segmenter from its ``to_dict`` payload."""
    kind = payload.get("kind")
    if kind is None:
        raise ValueError("segmenter payload is missing the 'kind' field")
    return get_segmenter_class(kind).from_dict(payload)
