"""Approximate Principal Direction segmenter (APD, Section 4.3.3).

The paper approximates the sparsest cut of the similarity graph
``A = D D^T`` (assuming ``D`` is "almost regular") by the second-largest
*right* singular vector of the data matrix ``D``, and splits on the
projections ``U = D.h`` exactly like the RH segmenter.

We compute the singular vector matrix-free: power iteration on the Gram
operator ``G w = D^T (D w)`` costs ``O(n d)`` per step, never forms the
``d x d`` (let alone ``n x n``) matrix, and is deterministic given the
seed.  The second vector is obtained by Gram-Schmidt deflation against the
first at every step.
"""

from __future__ import annotations

import numpy as np

from repro.segmenters.base import register_segmenter
from repro.segmenters.hyperplane import HyperplaneTreeSegmenter
from repro.utils.rng import resolve_rng
from repro.utils.validation import as_matrix

#: Stop power iteration when successive vectors differ by less than this.
_TOLERANCE = 1e-7


def _power_iteration(
    data: np.ndarray,
    rng: np.random.Generator,
    *,
    orthogonal_to: np.ndarray | None = None,
    iterations: int = 100,
) -> np.ndarray:
    """Leading right-singular direction of ``data`` via power iteration.

    When ``orthogonal_to`` is given, the iterate is re-orthogonalised
    against it each step, yielding the next singular direction.
    """
    dim = data.shape[1]
    vector = rng.standard_normal(dim)
    if orthogonal_to is not None:
        vector -= (vector @ orthogonal_to) * orthogonal_to
    norm = float(np.linalg.norm(vector))
    vector = vector / norm if norm > 0 else np.eye(dim, dtype=np.float64)[0]
    for _ in range(iterations):
        # G v = D^T (D v); O(n d) and never materialises D^T D.
        step = data.T @ (data @ vector)
        if orthogonal_to is not None:
            step -= (step @ orthogonal_to) * orthogonal_to
        norm = float(np.linalg.norm(step))
        if norm == 0.0:
            # Data has rank < 2 along this direction; any orthogonal unit
            # vector is a valid (degenerate) answer.
            break
        step /= norm
        if float(np.linalg.norm(step - vector)) < _TOLERANCE:
            vector = step
            break
        vector = step
    return vector


def second_singular_vector(
    data: np.ndarray,
    *,
    seed: int | np.random.Generator | None = 0,
    iterations: int = 100,
) -> np.ndarray:
    """The second-largest right singular vector of ``data`` (unit norm).

    This is the hyperplane the APD segmenter splits on.  Deterministic for
    a fixed seed; validated against ``numpy.linalg.svd`` in the tests.
    """
    data = as_matrix(data, name="data").astype(np.float64)
    if data.shape[1] < 2:
        raise ValueError("APD needs at least 2 dimensions")
    rng = resolve_rng(seed)
    first = _power_iteration(data, rng, iterations=iterations)
    second = _power_iteration(
        data, rng, orthogonal_to=first, iterations=iterations
    )
    return second


@register_segmenter
class ApdSegmenter(HyperplaneTreeSegmenter):
    """APD: hyperplanes from the second right singular vector per node.

    Parameters are those of :class:`HyperplaneTreeSegmenter` plus
    ``iterations`` controlling the power-iteration budget.
    """

    kind = "apd"

    def __init__(
        self,
        num_segments: int,
        *,
        alpha: float = 0.15,
        spill_mode: str = "virtual",
        seed: int = 0,
        iterations: int = 100,
    ) -> None:
        super().__init__(
            num_segments, alpha=alpha, spill_mode=spill_mode, seed=seed
        )
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = int(iterations)

    def _make_hyperplane(
        self, subset: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return second_singular_vector(
            subset, seed=rng, iterations=self.iterations
        ).astype(np.float32)

    def to_dict(self) -> dict:
        payload = super().to_dict()
        payload["iterations"] = self.iterations
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ApdSegmenter":
        segmenter = cls(
            int(payload["num_segments"]),
            alpha=float(payload["alpha"]),
            spill_mode=str(payload["spill_mode"]),
            seed=int(payload["seed"]),
            iterations=int(payload.get("iterations", 100)),
        )
        from repro.segmenters.hyperplane import HyperplaneNode

        segmenter.dim = None if payload["dim"] is None else int(payload["dim"])
        segmenter._nodes = [
            None
            if node is None
            else HyperplaneNode(
                np.asarray(node["hyperplane"], dtype=np.float32),
                float(node["split"]),
                float(node["lo"]),
                float(node["hi"]),
            )
            for node in payload["nodes"]
        ]
        return segmenter
