"""The Random Segmenter (RS) of Section 4.3.1.

"The segmenter is essentially a modulo segmenter. At indexing time, for
each document, it randomly selects a segment where it should be routed.
Since this type of segmenter has no guarantees about the locality of the
data, a query vector would be routed to all segments."

Routing is made deterministic by hashing a per-point draw from a seeded
stream, so rebuilding the same dataset yields the same layout.
"""

from __future__ import annotations

import numpy as np

from repro.segmenters.base import Segmenter, register_segmenter
from repro.utils.validation import as_matrix


@register_segmenter
class RandomSegmenter(Segmenter):
    """Data-independent segmenter; queries probe every segment.

    Parameters
    ----------
    num_segments:
        Number of segments per shard.
    seed:
        Seed of the assignment stream.
    """

    kind = "rs"

    def __init__(self, num_segments: int, seed: int = 0) -> None:
        super().__init__(num_segments)
        self.seed = int(seed)
        self._counter = 0

    @property
    def is_fitted(self) -> bool:
        """RS needs no learning; always ready."""
        return True

    def fit(self, data: np.ndarray) -> "RandomSegmenter":
        """No-op: RS is data-independent."""
        return self

    def route_data_batch(self, data: np.ndarray) -> list[tuple[int, ...]]:
        data = as_matrix(data)
        n = data.shape[0]
        # A fresh, seeded stream per call position keeps assignment uniform
        # and reproducible regardless of batch sizes.
        rng = np.random.default_rng((self.seed, self._counter))
        self._counter += 1
        segments = rng.integers(0, self.num_segments, size=n)
        return [(int(segment),) for segment in segments]

    def route_query_batch(self, queries: np.ndarray) -> list[tuple[int, ...]]:
        queries = as_matrix(queries)
        everywhere = tuple(range(self.num_segments))
        return [everywhere for _ in range(queries.shape[0])]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "num_segments": self.num_segments,
            "seed": self.seed,
            "counter": self._counter,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RandomSegmenter":
        segmenter = cls(int(payload["num_segments"]), seed=int(payload["seed"]))
        segmenter._counter = int(payload.get("counter", 0))
        return segmenter
