"""A k-means (clustering) segmenter: an extensibility demonstration.

The paper stresses that "LANNS has been built to be extensible" beyond
the shipped segmenters.  This module adds a fourth strategy in the same
interface: segments are k-means cells (like an IVF coarse quantizer),
and spill is defined by the *margin ratio* between the nearest and
second-nearest centroid -- a point (or query) whose two best centroids
are nearly tied is routed to both, the clustering analogue of the
hyperplane segmenters' boundary band.

Compared to RH/APD trees, k-means cells adapt to arbitrarily shaped
clusters and need no power-of-two segment count; the trade-off is that
routing costs ``num_segments`` centroid distances per point.
"""

from __future__ import annotations

import numpy as np

from repro.segmenters.base import SPILL_MODES, Segmenter, register_segmenter
from repro.utils.validation import as_matrix


@register_segmenter
class KMeansSegmenter(Segmenter):
    """Segments = k-means cells; spill = near-tied centroid margins.

    Parameters
    ----------
    num_segments:
        Number of cells (any integer >= 1).
    spill_threshold:
        Route to the runner-up cell as well when
        ``d_nearest / d_second >= spill_threshold`` (1.0 disables
        spill).  The spilled fraction depends on how much the clusters
        overlap; on well-separated data almost nothing sits near a
        boundary and almost nothing spills, which is the point.
    spill_mode:
        ``"virtual"`` (spill queries) or ``"physical"`` (spill data).
    seed:
        k-means seeding.
    """

    kind = "kmeans"

    def __init__(
        self,
        num_segments: int,
        *,
        spill_threshold: float = 0.85,
        spill_mode: str = "virtual",
        seed: int = 0,
        kmeans_iters: int = 25,
    ) -> None:
        super().__init__(num_segments)
        if not 0.0 < spill_threshold <= 1.0:
            raise ValueError(
                f"spill_threshold must be in (0, 1], got {spill_threshold}"
            )
        if spill_mode not in SPILL_MODES:
            raise ValueError(
                f"spill_mode must be one of {SPILL_MODES}, got {spill_mode!r}"
            )
        if kmeans_iters < 1:
            raise ValueError(f"kmeans_iters must be >= 1, got {kmeans_iters}")
        self.spill_threshold = float(spill_threshold)
        self.spill_mode = spill_mode
        self.seed = int(seed)
        self.kmeans_iters = int(kmeans_iters)
        self.centers: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.centers is not None

    def fit(self, data: np.ndarray) -> "KMeansSegmenter":
        """Cluster (a sample of) the data into ``num_segments`` cells."""
        from repro.baselines.kmeans import kmeans

        data = as_matrix(data, name="data")
        if data.shape[0] < self.num_segments:
            raise ValueError(
                f"need at least {self.num_segments} training points, "
                f"got {data.shape[0]}"
            )
        centers, _ = kmeans(
            data,
            self.num_segments,
            max_iters=self.kmeans_iters,
            seed=self.seed,
        )
        self.centers = centers.astype(np.float32)
        return self

    # -- routing -----------------------------------------------------------------
    def _nearest_two(
        self, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(nearest cell, runner-up cell, margin ratio) per row."""
        self._require_fitted()
        points = as_matrix(points, dim=self.centers.shape[1], name="points")
        dists = (
            np.einsum("ij,ij->i", points, points)[:, np.newaxis]
            - 2.0 * points @ self.centers.T
            + np.einsum("ij,ij->i", self.centers, self.centers)[np.newaxis, :]
        )
        np.maximum(dists, 0.0, out=dists)
        if self.num_segments == 1:
            n = points.shape[0]
            return (
                np.zeros(n, dtype=np.int64),
                np.zeros(n, dtype=np.int64),
                np.zeros(n),
            )
        order = np.argpartition(dists, 1, axis=1)[:, :2]
        first_d = np.take_along_axis(dists, order, axis=1)
        swap = first_d[:, 0] > first_d[:, 1]
        nearest = np.where(swap, order[:, 1], order[:, 0])
        runner_up = np.where(swap, order[:, 0], order[:, 1])
        near_d = np.sqrt(np.where(swap, first_d[:, 1], first_d[:, 0]))
        far_d = np.sqrt(np.where(swap, first_d[:, 0], first_d[:, 1]))
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(far_d > 0.0, near_d / far_d, 1.0)
        return nearest.astype(np.int64), runner_up.astype(np.int64), ratio

    def _route(self, points: np.ndarray, spill: bool) -> list[tuple[int, ...]]:
        nearest, runner_up, ratio = self._nearest_two(points)
        if not spill or self.spill_threshold >= 1.0:
            return [(int(cell),) for cell in nearest]
        spilled = ratio >= self.spill_threshold
        return [
            tuple(sorted({int(cell), int(other)})) if spill_here else (int(cell),)
            for cell, other, spill_here in zip(nearest, runner_up, spilled)
        ]

    def route_data_batch(self, data: np.ndarray) -> list[tuple[int, ...]]:
        return self._route(data, spill=self.spill_mode == "physical")

    def route_query_batch(self, queries: np.ndarray) -> list[tuple[int, ...]]:
        return self._route(queries, spill=self.spill_mode == "virtual")

    # -- persistence ---------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "num_segments": self.num_segments,
            "spill_threshold": self.spill_threshold,
            "spill_mode": self.spill_mode,
            "seed": self.seed,
            "kmeans_iters": self.kmeans_iters,
            "centers": None if self.centers is None else self.centers.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KMeansSegmenter":
        segmenter = cls(
            int(payload["num_segments"]),
            spill_threshold=float(payload["spill_threshold"]),
            spill_mode=str(payload["spill_mode"]),
            seed=int(payload["seed"]),
            kmeans_iters=int(payload.get("kmeans_iters", 25)),
        )
        if payload.get("centers") is not None:
            segmenter.centers = np.asarray(
                payload["centers"], dtype=np.float32
            )
        return segmenter
