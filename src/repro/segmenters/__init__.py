"""Data segmenters: the second level of LANNS partitioning (Section 4).

Three strategies from the paper:

- :class:`RandomSegmenter` (RS) -- data-independent modulo segmenter;
  queries fan out to every segment.
- :class:`RandomHyperplaneSegmenter` (RH) -- a short tree of random
  hyperplanes with median splits (Randomized Partition Trees, Dasgupta &
  Sinha).
- :class:`ApdSegmenter` (APD) -- hyperplanes from the second-largest right
  singular vector of the data, approximating the sparsest cut (Approximate
  Principal Direction trees + spectral clustering).

Both hyperplane segmenters support *virtual* spill (queries near a split
go to both children) and *physical* spill (data near a split is stored in
both children); see Figure 3 and Table 7 of the paper.

:mod:`repro.segmenters.theory` implements the Definition 1 potential
functions, the Theorem 1 recall bounds and the Figure 4 approximation.
"""

from repro.segmenters.base import Segmenter, segmenter_from_dict
from repro.segmenters.random_segmenter import RandomSegmenter
from repro.segmenters.hyperplane import HyperplaneNode, HyperplaneTreeSegmenter
from repro.segmenters.rh import RandomHyperplaneSegmenter
from repro.segmenters.apd import ApdSegmenter, second_singular_vector
from repro.segmenters.kmeans_segmenter import KMeansSegmenter
from repro.segmenters.context import ContextSegmenter
from repro.segmenters.learner import learn_segmenter, make_segmenter

__all__ = [
    "Segmenter",
    "RandomSegmenter",
    "HyperplaneNode",
    "HyperplaneTreeSegmenter",
    "RandomHyperplaneSegmenter",
    "ApdSegmenter",
    "KMeansSegmenter",
    "ContextSegmenter",
    "second_singular_vector",
    "learn_segmenter",
    "make_segmenter",
    "segmenter_from_dict",
]
