"""Context-based segmentation: the paper's Section 8 future-work feature.

"As future work, our approach of using segments can be explored for
other purposes as well. For example, for context-based searches, we can
build a segment per context and perform search in one or a few segments
based on the contexts selected at query time."

A :class:`ContextSegmenter` assigns each document to the segment of its
*context label* (e.g. language, country, content type).  Unlike the
geometric segmenters it cannot route from the vector alone, so routing
uses a side-channel: documents are ingested with labels via
:meth:`route_labels`, and queries carry an explicit set of requested
contexts.  The LANNS machinery (per-segment HNSW builds, in-shard
merging, perShardTopK) is reused unchanged through
:class:`ContextualLannsIndex` in :mod:`repro.core.contextual`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.segmenters.base import Segmenter, register_segmenter


@register_segmenter
class ContextSegmenter(Segmenter):
    """One segment per context label.

    Parameters
    ----------
    contexts:
        The ordered list of known context labels; segment ``i`` stores
        the documents of ``contexts[i]``.
    default_context:
        Where to route documents with an unknown label; ``None`` (the
        default) makes unknown labels an error.
    """

    kind = "context"

    def __init__(
        self,
        contexts: Sequence[str],
        *,
        default_context: str | None = None,
    ) -> None:
        labels = [str(context) for context in contexts]
        if not labels:
            raise ValueError("contexts must be non-empty")
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate context labels in {labels}")
        super().__init__(len(labels))
        self.contexts = labels
        self._segment_of = {label: i for i, label in enumerate(labels)}
        if default_context is not None and default_context not in self._segment_of:
            raise ValueError(
                f"default_context {default_context!r} is not a known context"
            )
        self.default_context = default_context

    # -- lifecycle ---------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Label routing needs no training."""
        return True

    def fit(self, data: np.ndarray) -> "ContextSegmenter":
        """No-op: contexts are metadata, not learned from vectors."""
        return self

    # -- label routing (the real interface) ----------------------------------------
    def segment_of(self, context: str) -> int:
        """Segment id of one context label."""
        segment = self._segment_of.get(str(context))
        if segment is None:
            if self.default_context is None:
                raise KeyError(
                    f"unknown context {context!r}; known: {self.contexts}"
                )
            segment = self._segment_of[self.default_context]
        return segment

    def route_labels(self, labels: Iterable[str]) -> list[tuple[int, ...]]:
        """Data routing for a sequence of per-document context labels."""
        return [(self.segment_of(label),) for label in labels]

    def route_contexts(self, contexts: Iterable[str]) -> tuple[int, ...]:
        """Query routing for an explicit set of requested contexts."""
        segments = sorted({self.segment_of(context) for context in contexts})
        if not segments:
            raise ValueError("a contextual query needs at least one context")
        return tuple(segments)

    # -- vector routing (Segmenter interface) ----------------------------------------
    def route_data_batch(self, data: np.ndarray) -> list[tuple[int, ...]]:
        """Vectors carry no context; explicit labels are required."""
        raise TypeError(
            "ContextSegmenter cannot route from vectors; ingest with "
            "per-document labels via ContextualLannsIndex / route_labels"
        )

    def route_query_batch(self, queries: np.ndarray) -> list[tuple[int, ...]]:
        """Without requested contexts, a query probes every segment."""
        queries = np.asarray(queries, dtype=np.float32)
        count = queries.shape[0] if queries.ndim == 2 else 1
        everywhere = tuple(range(self.num_segments))
        return [everywhere] * count

    # -- persistence ---------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "num_segments": self.num_segments,
            "contexts": list(self.contexts),
            "default_context": self.default_context,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ContextSegmenter":
        return cls(
            payload["contexts"],
            default_context=payload.get("default_context"),
        )
