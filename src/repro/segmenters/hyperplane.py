"""Hyperplane-tree segmenters with virtual / physical spill (Section 4.3.2).

Both RH and APD learn a short balanced binary tree.  Each internal node
holds a unit hyperplane ``h``, the median ``split`` of the training
projections ``U = D.h``, and the spill boundaries ``lo`` / ``hi`` -- the
``0.5 - alpha`` and ``0.5 + alpha`` fractile points of ``U``.

Routing (for a point/query ``v`` with projection ``p = v.h``):

========  =============================  ============================
spill     data routing                   query routing
========  =============================  ============================
virtual   one side (``p < split``?)      both sides when ``lo <= p <= hi``
physical  both sides when in boundary    one side (``p < split``?)
========  =============================  ============================

So exactly one of the two directions fans out; the paper's Table 7 shows
the trade: physical spill costs ~``2*alpha`` extra memory per level,
virtual spill costs query fan-out (lower QPS).
"""

from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.segmenters.base import SPILL_MODES, Segmenter
from repro.utils.rng import resolve_rng
from repro.utils.validation import as_matrix


@dataclass
class HyperplaneNode:
    """One internal node of the segmenter tree.

    Attributes
    ----------
    hyperplane:
        Unit normal vector ``h`` of shape ``(dim,)``.
    split:
        Median of the training projections; points with ``x.h < split``
        go left.
    lo, hi:
        The ``0.5 - alpha`` / ``0.5 + alpha`` fractiles of the training
        projections -- the spill boundaries.
    """

    hyperplane: np.ndarray
    split: float
    lo: float
    hi: float

    def side(self, projections: np.ndarray) -> np.ndarray:
        """0 for left, 1 for right, per projection value."""
        return (projections >= self.split).astype(np.int8)

    def in_boundary(self, projections: np.ndarray) -> np.ndarray:
        """Boolean mask of projections inside the spill boundary."""
        return (projections >= self.lo) & (projections <= self.hi)


class HyperplaneTreeSegmenter(Segmenter):
    """Base class for RH / APD: a complete binary tree of hyperplanes.

    Parameters
    ----------
    num_segments:
        Must be a power of two; the tree depth is ``log2(num_segments)``.
    alpha:
        Spill fraction in ``[0, 0.5)``; ``alpha = 0.15`` routes ~30% of
        queries to both children at each level (paper default).
    spill_mode:
        ``"virtual"`` (query-side, the production choice) or
        ``"physical"`` (data-side duplication).
    seed:
        Seed for any randomness in hyperplane generation.
    """

    def __init__(
        self,
        num_segments: int,
        *,
        alpha: float = 0.15,
        spill_mode: str = "virtual",
        seed: int = 0,
    ) -> None:
        super().__init__(num_segments)
        if num_segments & (num_segments - 1):
            raise ValueError(
                f"num_segments must be a power of two, got {num_segments}"
            )
        if not 0.0 <= alpha < 0.5:
            raise ValueError(f"alpha must be in [0, 0.5), got {alpha}")
        if spill_mode not in SPILL_MODES:
            raise ValueError(
                f"spill_mode must be one of {SPILL_MODES}, got {spill_mode!r}"
            )
        self.alpha = float(alpha)
        self.spill_mode = spill_mode
        self.seed = int(seed)
        self.depth = int(num_segments).bit_length() - 1
        # Heap-ordered complete binary tree: node i has children 2i+1, 2i+2.
        self._nodes: list[HyperplaneNode | None] = [None] * (num_segments - 1)
        self.dim: int | None = None

    # -- fitting -----------------------------------------------------------------
    @abstractmethod
    def _make_hyperplane(
        self, subset: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Return a unit hyperplane for the data reaching one tree node."""

    @property
    def is_fitted(self) -> bool:
        if self.depth == 0:
            return True
        return all(node is not None for node in self._nodes)

    def fit(self, data: np.ndarray) -> "HyperplaneTreeSegmenter":
        """Learn hyperplanes, splits and spill boundaries level by level."""
        data = as_matrix(data, name="data")
        if data.shape[0] < 2 ** self.depth:
            raise ValueError(
                f"need at least {2 ** self.depth} training points for "
                f"{self.num_segments} segments, got {data.shape[0]}"
            )
        self.dim = data.shape[1]
        rng = resolve_rng(self.seed)
        if self.depth > 0:
            self._fit_node(0, data, rng)
        return self

    def _fit_node(
        self, node_index: int, subset: np.ndarray, rng: np.random.Generator
    ) -> None:
        hyperplane = self._make_hyperplane(subset, rng)
        projections = subset @ hyperplane
        split = float(np.median(projections))
        lo = float(np.quantile(projections, 0.5 - self.alpha))
        hi = float(np.quantile(projections, 0.5 + self.alpha))
        self._nodes[node_index] = HyperplaneNode(hyperplane, split, lo, hi)
        left_child = 2 * node_index + 1
        if left_child >= len(self._nodes):
            return
        left_mask = projections < split
        self._fit_node(left_child, subset[left_mask], rng)
        self._fit_node(left_child + 1, subset[~left_mask], rng)

    # -- routing ----------------------------------------------------------------------
    def _route(self, points: np.ndarray, spill: bool) -> list[tuple[int, ...]]:
        """Route rows down the tree; ``spill`` controls boundary fan-out."""
        self._require_fitted()
        points = as_matrix(points, dim=self.dim, name="points")
        n = points.shape[0]
        if self.depth == 0:
            return [(0,)] * n
        routes: list[list[int]] = [[] for _ in range(n)]
        self._route_node(0, 0, points, np.arange(n), spill, routes)
        return [tuple(sorted(set(route))) for route in routes]

    def _route_node(
        self,
        node_index: int,
        first_segment: int,
        points: np.ndarray,
        row_ids: np.ndarray,
        spill: bool,
        routes: list[list[int]],
    ) -> None:
        node = self._nodes[node_index]
        assert node is not None
        projections = points @ node.hyperplane
        go_left = projections < node.split
        if spill:
            in_boundary = node.in_boundary(projections)
            left_mask = go_left | in_boundary
            right_mask = ~go_left | in_boundary
        else:
            left_mask = go_left
            right_mask = ~go_left
        left_child = 2 * node_index + 1
        subtree_leaves = 2 ** (self.depth - _node_level(node_index) - 1)
        if left_child >= len(self._nodes):
            # Children are leaves: record segment ids.
            for row in row_ids[left_mask]:
                routes[row].append(first_segment)
            for row in row_ids[right_mask]:
                routes[row].append(first_segment + 1)
            return
        if np.any(left_mask):
            self._route_node(
                left_child,
                first_segment,
                points[left_mask],
                row_ids[left_mask],
                spill,
                routes,
            )
        if np.any(right_mask):
            self._route_node(
                left_child + 1,
                first_segment + subtree_leaves,
                points[right_mask],
                row_ids[right_mask],
                spill,
                routes,
            )

    def route_data_batch(self, data: np.ndarray) -> list[tuple[int, ...]]:
        return self._route(data, spill=self.spill_mode == "physical")

    def route_query_batch(self, queries: np.ndarray) -> list[tuple[int, ...]]:
        return self._route(queries, spill=self.spill_mode == "virtual")

    def leaf_margins(self, queries: np.ndarray) -> np.ndarray:
        """Signed margin of each query toward each leaf, shape ``(B, S)``.

        A leaf's score is the *minimum* signed distance-to-split along its
        root-to-leaf path (``p - split`` where the path turns right,
        ``split - p`` where it turns left).  The natural no-spill route is
        the argmax leaf (all its path margins are >= 0), and ranking leaves
        by descending margin yields nested top-``spill`` probe sets -- the
        online router's spill knob.
        """
        self._require_fitted()
        queries = as_matrix(queries, dim=self.dim, name="queries")
        n = queries.shape[0]
        if self.depth == 0:
            return np.zeros((n, 1), dtype=np.float64)
        planes = np.stack(
            [node.hyperplane for node in self._nodes]
        ).astype(np.float64)
        splits = np.array(
            [node.split for node in self._nodes], dtype=np.float64
        )
        # (B, nodes) signed margin toward the *right* child at every node.
        toward_right = queries.astype(np.float64) @ planes.T - splits
        margins = np.full((n, self.num_segments), np.inf)
        for leaf in range(self.num_segments):
            node_index = 0
            for level in range(self.depth):
                # Leaf ids encode the path MSB-first: bit 1 = right turn.
                bit = (leaf >> (self.depth - 1 - level)) & 1
                signed = (
                    toward_right[:, node_index]
                    if bit
                    else -toward_right[:, node_index]
                )
                np.minimum(margins[:, leaf], signed, out=margins[:, leaf])
                node_index = 2 * node_index + 1 + bit
        return margins

    # -- persistence -------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = {
            "kind": self.kind,
            "num_segments": self.num_segments,
            "alpha": self.alpha,
            "spill_mode": self.spill_mode,
            "seed": self.seed,
            "dim": self.dim,
            "nodes": [
                None
                if node is None
                else {
                    "hyperplane": node.hyperplane.tolist(),
                    "split": node.split,
                    "lo": node.lo,
                    "hi": node.hi,
                }
                for node in self._nodes
            ],
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "HyperplaneTreeSegmenter":
        segmenter = cls(
            int(payload["num_segments"]),
            alpha=float(payload["alpha"]),
            spill_mode=str(payload["spill_mode"]),
            seed=int(payload["seed"]),
        )
        segmenter.dim = None if payload["dim"] is None else int(payload["dim"])
        segmenter._nodes = [
            None
            if node is None
            else HyperplaneNode(
                np.asarray(node["hyperplane"], dtype=np.float32),
                float(node["split"]),
                float(node["lo"]),
                float(node["hi"]),
            )
            for node in payload["nodes"]
        ]
        return segmenter


def _node_level(node_index: int) -> int:
    """Level of a node in heap order (root = level 0)."""
    return (node_index + 1).bit_length() - 1
