"""Segmenter learning (Section 5.1, Figure 5).

LANNS pre-learns a single segmenter on a uniform subsample of the dataset
and shares it across all shards ("since the data distribution in our
shards is uniform").  :func:`learn_segmenter` reproduces that pipeline:
subsample -> fit -> return a routing-ready segmenter.
"""

from __future__ import annotations

import numpy as np

from repro.segmenters.apd import ApdSegmenter
from repro.segmenters.base import Segmenter
from repro.segmenters.random_segmenter import RandomSegmenter
from repro.segmenters.rh import RandomHyperplaneSegmenter
from repro.utils.rng import resolve_rng
from repro.utils.validation import as_matrix

#: Paper default: segmenters are learnt on a 250k-point subsample.
DEFAULT_SAMPLE_SIZE = 250_000


def make_segmenter(
    kind: str,
    num_segments: int,
    *,
    alpha: float = 0.15,
    spill_mode: str = "virtual",
    seed: int = 0,
) -> Segmenter:
    """Instantiate an unfitted segmenter by kind name ("rs"/"rh"/"apd")."""
    if kind == "rs":
        return RandomSegmenter(num_segments, seed=seed)
    if kind == "rh":
        return RandomHyperplaneSegmenter(
            num_segments, alpha=alpha, spill_mode=spill_mode, seed=seed
        )
    if kind == "apd":
        return ApdSegmenter(
            num_segments, alpha=alpha, spill_mode=spill_mode, seed=seed
        )
    raise ValueError(f"unknown segmenter kind {kind!r} (use rs / rh / apd)")


def uniform_subsample(
    data: np.ndarray,
    sample_size: int,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Sample ``min(sample_size, n)`` rows uniformly without replacement."""
    data = as_matrix(data, name="data")
    if sample_size <= 0:
        raise ValueError(f"sample_size must be positive, got {sample_size}")
    n = data.shape[0]
    if n <= sample_size:
        return data
    rng = resolve_rng(seed)
    rows = rng.choice(n, size=sample_size, replace=False)
    return data[np.sort(rows)]


def learn_segmenter(
    data: np.ndarray,
    kind: str,
    num_segments: int,
    *,
    alpha: float = 0.15,
    spill_mode: str = "virtual",
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    seed: int = 0,
) -> Segmenter:
    """Learn a segmenter on a uniform subsample of ``data`` (Figure 5).

    Parameters mirror the paper: ``alpha`` is the spill fraction,
    ``sample_size`` the subsample budget (paper uses 250k).

    Returns
    -------
    A fitted, routing-ready :class:`~repro.segmenters.base.Segmenter`.
    """
    segmenter = make_segmenter(
        kind,
        num_segments,
        alpha=alpha,
        spill_mode=spill_mode,
        seed=seed,
    )
    sample = uniform_subsample(data, sample_size, seed=seed)
    return segmenter.fit(sample)
