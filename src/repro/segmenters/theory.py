"""Recall-bound theory for spill trees (Section 4.3.2 of the paper).

Implements, from Dasgupta & Sinha as restated in the paper:

- Definition 1: the potential functions ``phi`` (1-NN, Eq. 1) and
  ``phi_k`` (k-NN, Eq. 2);
- Theorem 1: upper bounds on the probability that a depth-``L`` spill
  tree with spill ``alpha`` fails to return the true nearest neighbor(s)
  (Eq. 3 and Eq. 4);
- the Figure 4 approximation ``P(L) = sum_i 1 / (2 (0.5 + alpha)^i n)``
  used by the paper to pick the (small) number of segmentation levels.

The potential ``phi_m`` is evaluated on the ``m`` points nearest to the
query -- the expected cell population at the corresponding tree level.
"""

from __future__ import annotations

import numpy as np

from repro.distance.metrics import get_metric
from repro.utils.validation import as_matrix, as_vector


def _sorted_distances(query: np.ndarray, data: np.ndarray, metric: str) -> np.ndarray:
    data = as_matrix(data, name="data")
    query = as_vector(query, dim=data.shape[1], name="query")
    distances = get_metric(metric).batch(query, data)
    return np.sort(distances)


def potential_phi(
    query: np.ndarray,
    data: np.ndarray,
    m: int,
    *,
    metric: str = "euclidean",
) -> float:
    """Definition 1, Eq. (1): 1-NN potential over the ``m`` nearest points.

    ``phi_m = (1/m) * sum_{i=2..m} ||q - x_(1)|| / ||q - x_(i)||``

    Small values mean the nearest neighbor is well separated from the rest
    (easy instance); values near 1 mean many points are nearly as close
    as the true neighbor (hard instance).
    """
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    ordered = _sorted_distances(query, data, metric)
    m = min(m, ordered.shape[0])
    nearest = ordered[0]
    rest = ordered[1:m]
    if nearest == 0.0:
        # The query coincides with its nearest neighbor: every ratio is 0.
        return 0.0
    with np.errstate(divide="ignore"):
        ratios = np.where(rest > 0.0, nearest / rest, 1.0)
    return float(ratios.sum() / m)


def potential_phi_k(
    query: np.ndarray,
    data: np.ndarray,
    k: int,
    m: int,
    *,
    metric: str = "euclidean",
) -> float:
    """Definition 1, Eq. (2): k-NN potential over the ``m`` nearest points.

    ``phi_{k,m} = (1/m) * sum_{i=k+1..m} (avg_{j<=k} ||q - x_(j)||) / ||q - x_(i)||``
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if m <= k:
        raise ValueError(f"m must exceed k, got m={m}, k={k}")
    ordered = _sorted_distances(query, data, metric)
    m = min(m, ordered.shape[0])
    if m <= k:
        return 0.0
    numerator = float(ordered[:k].mean())
    rest = ordered[k:m]
    if numerator == 0.0:
        return 0.0
    with np.errstate(divide="ignore"):
        ratios = np.where(rest > 0.0, numerator / rest, 1.0)
    return float(ratios.sum() / m)


def _level_populations(n: int, alpha: float, depth: int) -> list[int]:
    """Expected cell sizes ``(0.5 + alpha)^i * n`` for levels 0..depth."""
    return [max(int((0.5 + alpha) ** i * n), 2) for i in range(depth + 1)]


def failure_bound_1nn(
    query: np.ndarray,
    data: np.ndarray,
    alpha: float,
    depth: int,
    *,
    metric: str = "euclidean",
) -> float:
    """Theorem 1, Eq. (3): bound on P(tree misses the true 1-NN).

    ``(1 / 2 alpha) * sum_{i=0..L} phi_{(0.5+alpha)^i n}(q, x)``

    The bound is clipped to 1 since it is a probability bound.
    """
    if not 0.0 < alpha < 0.5:
        raise ValueError(f"alpha must be in (0, 0.5), got {alpha}")
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    data = as_matrix(data, name="data")
    total = sum(
        potential_phi(query, data, m, metric=metric)
        for m in _level_populations(data.shape[0], alpha, depth)
    )
    return min(total / (2.0 * alpha), 1.0)


def failure_bound_knn(
    query: np.ndarray,
    data: np.ndarray,
    k: int,
    alpha: float,
    depth: int,
    *,
    metric: str = "euclidean",
) -> float:
    """Theorem 1, Eq. (4): bound on P(tree misses any of the true k-NN).

    ``(k / alpha) * sum_{i=0..L} phi_{k,(0.5+alpha)^i n}(q, x)``
    """
    if not 0.0 < alpha < 0.5:
        raise ValueError(f"alpha must be in (0, 0.5), got {alpha}")
    data = as_matrix(data, name="data")
    total = 0.0
    for m in _level_populations(data.shape[0], alpha, depth):
        if m > k:
            total += potential_phi_k(query, data, k, m, metric=metric)
    return min(k * total / alpha, 1.0)


def figure4_failure_probability(
    n: int,
    alpha: float,
    max_level: int,
) -> np.ndarray:
    """The Figure 4 curve: ``P(L) = sum_{i=1..L} 1 / (2 (0.5+alpha)^i n)``.

    The paper plots this data-independent approximation for ``n = 10000``
    and increasing tree depth to argue for using only 1-8 segments per
    shard (1-3 levels).

    Returns
    -------
    Array of length ``max_level`` with ``P(1) .. P(max_level)``.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 < alpha < 0.5:
        raise ValueError(f"alpha must be in (0, 0.5), got {alpha}")
    if max_level < 1:
        raise ValueError(f"max_level must be >= 1, got {max_level}")
    levels = np.arange(1, max_level + 1, dtype=np.float64)
    terms = 1.0 / (2.0 * np.power(0.5 + alpha, levels) * n)
    return np.cumsum(terms)
