"""Random Hyperplane segmenter (RH, Section 4.3.2).

"At each internal node of our segmenter, we first generate a random
hyperplane from the unit sphere and project all points on this generated
hyperplane. We then perform a median split based on these projected
values."
"""

from __future__ import annotations

import numpy as np

from repro.segmenters.base import register_segmenter
from repro.segmenters.hyperplane import HyperplaneTreeSegmenter


@register_segmenter
class RandomHyperplaneSegmenter(HyperplaneTreeSegmenter):
    """RH: tree of uniformly random unit hyperplanes with median splits."""

    kind = "rh"

    def _make_hyperplane(
        self, subset: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        # A standard normal vector normalised to unit length is uniform on
        # the sphere.
        direction = rng.standard_normal(subset.shape[1])
        norm = float(np.linalg.norm(direction))
        if norm == 0.0:  # pragma: no cover - probability zero
            direction[0] = 1.0
            norm = 1.0
        return (direction / norm).astype(np.float32)
