"""Distance metrics and batched scorers.

The online paper deployment spends "most of the search time ... doing
<query, document> distance comparisons" (Section 7), so every metric here
provides vectorised batch kernels, and :class:`~repro.distance.scorer.Scorer`
adds per-index precomputation (cached squared norms, pre-normalised data)
so the HNSW inner loop touches only fused numpy expressions.
"""

from repro.distance.metrics import (
    CosineDistance,
    EuclideanDistance,
    InnerProductDistance,
    Metric,
    available_metrics,
    get_metric,
)
from repro.distance.scorer import Scorer

__all__ = [
    "Metric",
    "EuclideanDistance",
    "CosineDistance",
    "InnerProductDistance",
    "get_metric",
    "available_metrics",
    "Scorer",
]
