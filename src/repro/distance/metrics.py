"""Vector distance metrics.

Three metric families cover the paper's use cases:

- ``euclidean`` -- SIFT/GIST style descriptors (Tables 1-6 use Euclidean).
- ``cosine`` -- normalised embedding search (Groups / People embeddings).
- ``inner_product`` -- maximum inner product search, expressed as the
  distance ``-<q, x>`` so that smaller is always better.

Each metric exposes both an exact ``distance`` and an internal *ranking
key* (``reduced``): a monotone transform that is cheaper to compute (e.g.
squared Euclidean avoids the square root).  Index internals rank by the
reduced value and convert to true distances only at the API boundary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Metric(ABC):
    """A distance metric with vectorised kernels.

    Subclasses implement the reduced (ranking) form; this base class
    derives user-facing true distances from it.
    """

    #: Registry name, e.g. ``"euclidean"``.
    name: str = ""

    # -- reduced (ranking) space -------------------------------------------------
    @abstractmethod
    def reduced_pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Reduced distances of shape ``(len(queries), len(data))``."""

    @abstractmethod
    def to_true(self, reduced: np.ndarray) -> np.ndarray:
        """Map reduced values to true distances (monotone, elementwise)."""

    # -- convenience -------------------------------------------------------------
    def reduced_batch(self, query: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Reduced distances from one query to each row of ``data``."""
        return self.reduced_pairwise(query[np.newaxis, :], data)[0]

    def pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        """True distances of shape ``(len(queries), len(data))``."""
        return self.to_true(self.reduced_pairwise(queries, data))

    def batch(self, query: np.ndarray, data: np.ndarray) -> np.ndarray:
        """True distances from one query to each row of ``data``."""
        return self.to_true(self.reduced_batch(query, data))

    def distance(self, x: np.ndarray, y: np.ndarray) -> float:
        """True distance between two vectors."""
        return float(self.batch(np.asarray(x, dtype=np.float32),
                                np.asarray(y, dtype=np.float32)[np.newaxis, :])[0])

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class EuclideanDistance(Metric):
    """L2 distance; ranks by squared distance to avoid square roots."""

    name = "euclidean"

    def reduced_pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        # ||q - x||^2 = ||q||^2 - 2 q.x + ||x||^2, computed as one GEMM.
        q_norms = np.einsum("ij,ij->i", queries, queries)[:, np.newaxis]
        x_norms = np.einsum("ij,ij->i", data, data)[np.newaxis, :]
        squared = q_norms + x_norms - 2.0 * (queries @ data.T)
        # Rounding can push tiny distances below zero.
        np.maximum(squared, 0.0, out=squared)
        return squared

    def to_true(self, reduced: np.ndarray) -> np.ndarray:
        return np.sqrt(reduced)


class CosineDistance(Metric):
    """Cosine distance ``1 - cos(q, x)``.

    Zero vectors are treated as orthogonal to everything (distance 1).
    """

    name = "cosine"

    def reduced_pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        q_norms = np.linalg.norm(queries, axis=1, keepdims=True)
        x_norms = np.linalg.norm(data, axis=1, keepdims=True).T
        denom = q_norms * x_norms
        with np.errstate(divide="ignore", invalid="ignore"):
            cosine = np.where(denom > 0.0, (queries @ data.T) / denom, 0.0)
        return 1.0 - np.clip(cosine, -1.0, 1.0)

    def to_true(self, reduced: np.ndarray) -> np.ndarray:
        return np.asarray(reduced)


class InnerProductDistance(Metric):
    """Maximum inner product search as the distance ``-<q, x>``."""

    name = "inner_product"

    def reduced_pairwise(self, queries: np.ndarray, data: np.ndarray) -> np.ndarray:
        return -(queries @ data.T)

    def to_true(self, reduced: np.ndarray) -> np.ndarray:
        return np.asarray(reduced)


_METRICS: dict[str, type[Metric]] = {
    cls.name: cls
    for cls in (EuclideanDistance, CosineDistance, InnerProductDistance)
}
# Friendly aliases.
_ALIASES = {"l2": "euclidean", "ip": "inner_product", "dot": "inner_product"}


def available_metrics() -> list[str]:
    """Names accepted by :func:`get_metric`."""
    return sorted(_METRICS)


def get_metric(metric: str | Metric) -> Metric:
    """Resolve a metric name (or pass through a Metric instance)."""
    if isinstance(metric, Metric):
        return metric
    key = _ALIASES.get(metric.lower(), metric.lower())
    try:
        return _METRICS[key]()
    except KeyError:
        raise ValueError(
            f"unknown metric {metric!r}; available: {available_metrics()}"
        ) from None
