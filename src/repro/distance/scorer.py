"""Per-index distance scorer with cached precomputation.

A :class:`Scorer` binds a metric to a data matrix and precomputes whatever
the metric can reuse across queries (squared norms for Euclidean, row
normalisation for cosine).  The HNSW inner loop calls
:meth:`Scorer.score_ids` thousands of times per query, so this path is kept
allocation-light: a gather (``data[ids]``) plus one fused expression.
"""

from __future__ import annotations

import numpy as np

from repro.distance.metrics import (
    CosineDistance,
    EuclideanDistance,
    InnerProductDistance,
    Metric,
    get_metric,
)


class Scorer:
    """Scores queries against a fixed, growable data matrix.

    Parameters
    ----------
    metric:
        Metric name or instance.
    dim:
        Vector dimensionality.
    capacity:
        Initial row capacity; the backing array doubles as needed.

    Notes
    -----
    Scores are in the metric's *reduced* space (squared Euclidean, cosine
    distance, negative inner product); use :meth:`to_true` at the API
    boundary.  For cosine, vectors are normalised once on insertion so the
    reduced score is ``1 - <q_hat, x_hat>`` via a plain dot product.
    """

    def __init__(self, metric: str | Metric, dim: int, capacity: int = 1024) -> None:
        self.metric = get_metric(metric)
        self.dim = int(dim)
        if self.dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        capacity = max(int(capacity), 1)
        self._data = np.empty((capacity, self.dim), dtype=np.float32)
        self._sq_norms = np.empty(capacity, dtype=np.float32)
        self._count = 0
        #: Running count of distance evaluations (the work metric
        #: reported by the Figure 1 benchmark).  Compressed-domain
        #: scoring counts too: the quantized views below bump the owning
        #: scorer's counter, so ``ops`` is the total scoring work --
        #: exact, int8 and PQ alike.  Search-cost accounting reads this
        #: via :meth:`ops_since` deltas.
        self.ops = 0
        self._is_euclidean = isinstance(self.metric, EuclideanDistance)
        self._is_cosine = isinstance(self.metric, CosineDistance)
        self._is_ip = isinstance(self.metric, InnerProductDistance)

    def ops_since(self, baseline: int) -> int:
        """Distance evaluations since a captured ``self.ops`` baseline.

        The cost-accounting idiom: grab ``ops`` before a search, call
        this after.  With concurrent batches on one scorer the delta may
        misattribute work between them, but the totals stay exact.
        """
        return self.ops - baseline

    # -- storage ----------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def data(self) -> np.ndarray:
        """View of the stored (possibly normalised) vectors."""
        return self._data[: self._count]

    def _grow(self, needed: int) -> None:
        capacity = self._data.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2)
        new_data = np.empty((new_capacity, self.dim), dtype=np.float32)
        new_data[: self._count] = self._data[: self._count]
        self._data = new_data
        new_norms = np.empty(new_capacity, dtype=np.float32)
        new_norms[: self._count] = self._sq_norms[: self._count]
        self._sq_norms = new_norms

    def add(self, vectors: np.ndarray) -> np.ndarray:
        """Append rows; return their internal indices."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors[np.newaxis, :]
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"vectors have dimension {vectors.shape[1]}, expected {self.dim}"
            )
        n = vectors.shape[0]
        self._grow(self._count + n)
        rows = np.arange(self._count, self._count + n)
        if self._is_cosine:
            norms = np.linalg.norm(vectors, axis=1, keepdims=True)
            # Zero vectors stay zero: they score distance 1 to everything.
            safe = np.where(norms > 0.0, norms, 1.0)
            self._data[rows] = vectors / safe
        else:
            self._data[rows] = vectors
        self._sq_norms[rows] = np.einsum(
            "ij,ij->i", self._data[rows], self._data[rows]
        )
        self._count += n
        return rows

    # -- query preparation --------------------------------------------------------
    def prepare_query(self, query: np.ndarray) -> np.ndarray:
        """Canonicalise one query vector: a batch of one."""
        query = np.asarray(query, dtype=np.float32)
        if query.ndim != 1 or query.shape[0] != self.dim:
            raise ValueError(
                f"query has shape {query.shape}, expected ({self.dim},)"
            )
        return self.prepare_queries(query[np.newaxis, :])[0]

    def prepare_queries(self, queries: np.ndarray) -> np.ndarray:
        """Canonicalise a ``(B, d)`` query batch in one pass.

        Row ``i`` of the result equals ``prepare_query(queries[i])``: the
        per-row operations (norm, divide) are rowwise-independent, so
        preparation does not depend on batch composition.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(
                f"queries have shape {queries.shape}, expected (B, {self.dim})"
            )
        if self._is_cosine and queries.shape[0]:
            norms = np.linalg.norm(queries, axis=1, keepdims=True)
            safe = np.where(norms > 0.0, norms, 1.0)
            return queries / safe
        return queries

    def query_sq_norms(self, prepared: np.ndarray) -> np.ndarray:
        """Per-row squared norms of a *prepared* query batch.

        Precompute once per batch; :meth:`score_pairs` consumes it for the
        Euclidean expansion.
        """
        return np.einsum("bd,bd->b", prepared, prepared)

    # -- scoring ------------------------------------------------------------------
    def score_ids(
        self,
        query: np.ndarray,
        ids: np.ndarray,
        query_sq: float | None = None,
    ) -> np.ndarray:
        """Reduced distances from a *prepared* query to rows ``ids``.

        This is the hot path: one gather + one matvec.  ``query_sq`` is
        the precomputed ``float(query @ query)``; the sequential beam
        search calls this thousands of times per query with the same
        query, so callers should compute the norm once and thread it
        through (mirrors the ``query_sq`` parameter of
        :meth:`score_pairs`).
        """
        self.ops += len(ids)
        rows = self._data[ids]
        if self._is_euclidean:
            dots = rows @ query
            scores = self._sq_norms[ids] - 2.0 * dots
            scores += (
                float(query @ query) if query_sq is None else query_sq
            )
            np.maximum(scores, 0.0, out=scores)
            return scores
        if self._is_cosine:
            return 1.0 - rows @ query
        return -(rows @ query)

    def score_pairs(
        self,
        queries: np.ndarray,
        query_rows: np.ndarray,
        ids: np.ndarray,
        query_sq: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reduced distances ``d(queries[query_rows[i]], data[ids[i]])``.

        This is the batched-traversal hot path: the flat counterpart of
        :meth:`score_ids` that scores many (query, candidate) pairs of a
        *prepared* ``(B, d)`` batch in one vectorised call.  The per-pair
        dot is an ``einsum`` row reduction, so every pair's value is
        independent of which other pairs share the call -- a batch of one
        produces bit-identical scores to any larger batch.

        Parameters
        ----------
        queries:
            Prepared ``(B, d)`` query batch (:meth:`prepare_queries`).
        query_rows:
            ``(n,)`` row index into ``queries`` for each pair.
        ids:
            ``(n,)`` stored-row index for each pair.
        query_sq:
            Optional precomputed :meth:`query_sq_norms` of ``queries``.
        """
        self.ops += len(ids)
        rows = self._data[ids]
        q_rows = queries[query_rows]
        dots = np.einsum("nd,nd->n", rows, q_rows)
        if self._is_euclidean:
            if query_sq is None:
                query_sq = self.query_sq_norms(queries)
            scores = self._sq_norms[ids] - 2.0 * dots
            scores += query_sq[query_rows]
            np.maximum(scores, 0.0, out=scores)
            return scores
        if self._is_cosine:
            return 1.0 - dots
        return -dots

    def score_all(self, query: np.ndarray) -> np.ndarray:
        """Reduced distances from a *prepared* query to every stored row."""
        self.ops += self._count
        data = self.data
        if self._is_euclidean:
            scores = self._sq_norms[: self._count] - 2.0 * (data @ query)
            scores += float(query @ query)
            np.maximum(scores, 0.0, out=scores)
            return scores
        if self._is_cosine:
            return 1.0 - data @ query
        return -(data @ query)

    def score_all_batch(self, queries: np.ndarray) -> np.ndarray:
        """Reduced distances from a *prepared* ``(B, d)`` batch to all rows.

        One ``(B, d) @ (d, n)`` GEMM; the matrix-level scoring path used
        by exhaustive rescoring and the brute-force baselines.
        """
        self.ops += self._count * queries.shape[0]
        data = self.data
        gram = queries @ data.T
        if self._is_euclidean:
            q_norms = self.query_sq_norms(queries)[:, np.newaxis]
            scores = self._sq_norms[: self._count][np.newaxis, :] - 2.0 * gram
            scores += q_norms
            np.maximum(scores, 0.0, out=scores)
            return scores
        if self._is_cosine:
            return 1.0 - gram
        return -gram

    def pairwise_ids(self, ids: np.ndarray) -> np.ndarray:
        """All-pairs reduced distances among stored rows ``ids``.

        Used by the HNSW neighbor-selection heuristic: one GEMM replaces
        O(candidates * M) small distance calls.
        """
        self.ops += len(ids) * len(ids)
        rows = self._data[ids]
        gram = rows @ rows.T
        if self._is_euclidean:
            norms = self._sq_norms[ids]
            squared = norms[:, np.newaxis] + norms[np.newaxis, :] - 2.0 * gram
            np.maximum(squared, 0.0, out=squared)
            return squared
        if self._is_cosine:
            return 1.0 - gram
        return -gram

    def pairwise_ids_batch(self, ids: np.ndarray) -> np.ndarray:
        """All-pairs reduced distances for a ``(P, C)`` stack of id rows.

        Row ``p`` of the result is ``pairwise_ids(ids[p])`` -- one batched
        GEMM (``np.matmul`` over the stacked axis) replaces P separate
        calls, which is what lets the construction wave score every
        pending neighbor-selection problem in one vectorised round.  Each
        stack slice is an independent ``(C, d) @ (d, C)`` product, so a
        stack of one is bit-identical to any larger stack (the heuristic
        relies on this: the sequential insert path is a batch of one).
        Padding slots may repeat any valid id; callers mask them out.
        (Padding pairs are counted as work too: they ride the same GEMM.)
        """
        ids = np.asarray(ids)
        self.ops += int(ids.shape[0]) * int(ids.shape[1]) * int(ids.shape[1])
        rows = self._data[ids]
        gram = np.matmul(rows, rows.transpose(0, 2, 1))
        if self._is_euclidean:
            norms = self._sq_norms[ids]
            squared = norms[:, :, np.newaxis] + norms[:, np.newaxis, :]
            squared -= 2.0 * gram
            np.maximum(squared, 0.0, out=squared)
            return squared
        if self._is_cosine:
            return 1.0 - gram
        return -gram

    def to_true(self, reduced: np.ndarray) -> np.ndarray:
        """Convert reduced scores to true metric distances."""
        return self.metric.to_true(np.asarray(reduced))


# -- compressed-domain scoring --------------------------------------------------------
#
# The quantized tier lets the HNSW beam search run on compressed codes
# instead of float32 rows: the traversal's distance evaluations gather
# int8 codes (4x less memory traffic per beam round) or PQ codes (one
# table lookup per subspace), and only the final candidate set is
# rescored exactly against the retained float32 vectors.  Approximate
# scores only *rank* -- every distance a caller sees comes from the
# exact float32 kernels above, so the wire contract (exact distances,
# bit-parity tests) survives quantization unchanged.

#: Quantization backends accepted end to end (``--quantize``).
QUANTIZE_KINDS = ("none", "int8", "pq")

#: Rows used to train the PQ codebooks.  32 training points per
#: centroid (256 codes) -- past that, k-means cost grows linearly with
#: segment size for no measurable recall gain.
_PQ_TRAIN_SAMPLE = 8192


class Int8Codec:
    """Per-dimension affine scalar quantizer: ``x ~ scale * c + offset``.

    One ``scale``/``offset`` pair per dimension, trained on the stored
    (possibly normalised) rows at build time.  Codes are ``int8`` in
    ``[-128, 127]``, so a row costs ``d`` bytes instead of ``4d``.
    """

    kind = "int8"

    def __init__(self) -> None:
        self.scale: np.ndarray | None = None  # (d,) float32
        self.offset: np.ndarray | None = None  # (d,) float32

    @property
    def is_fitted(self) -> bool:
        """Whether the affine parameters have been trained."""
        return self.scale is not None

    def _require_fitted(self) -> None:
        if self.scale is None:
            from repro.errors import CodecNotFittedError

            raise CodecNotFittedError(
                "Int8Codec has no scale/offset; call fit() before "
                "encode/decode"
            )

    def fit(self, data: np.ndarray) -> "Int8Codec":
        """Train the per-dimension affine range on ``data``."""
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(
                f"Int8Codec.fit needs a non-empty (n, d) matrix, got "
                f"shape {data.shape}"
            )
        lo = data.min(axis=0)
        hi = data.max(axis=0)
        scale = (hi - lo) / 255.0
        # Constant dimensions quantize to one exact level.
        scale = np.where(scale > 0.0, scale, 1.0).astype(np.float32)
        self.scale = scale
        self.offset = (lo + 128.0 * scale).astype(np.float32)
        return self

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Quantize rows to ``(n, d)`` int8 codes."""
        self._require_fitted()
        data = np.asarray(data, dtype=np.float32)
        codes = np.rint((data - self.offset) / self.scale)
        return np.clip(codes, -128, 127).astype(np.int8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct (approximate) float32 rows from codes."""
        self._require_fitted()
        codes = np.asarray(codes)
        return codes.astype(np.float32) * self.scale + self.offset

    def to_arrays(self) -> dict:
        """Npz-friendly dict form."""
        self._require_fitted()
        return {"codec_scale": self.scale, "codec_offset": self.offset}

    @classmethod
    def from_arrays(cls, payload: dict) -> "Int8Codec":
        """Inverse of :meth:`to_arrays`."""
        codec = cls()
        codec.scale = np.asarray(payload["codec_scale"], dtype=np.float32)
        codec.offset = np.asarray(payload["codec_offset"], dtype=np.float32)
        return codec


def pq_subspaces_for(dim: int, requested: int) -> int:
    """Largest divisor of ``dim`` that is ``<= requested``.

    PQ needs the dimensionality split into equal chunks; rather than
    reject awkward dims, the codec degrades to the nearest workable
    subspace count (worst case 1 -- plain vector quantization).
    """
    for m in range(min(int(requested), int(dim)), 0, -1):
        if dim % m == 0:
            return m
    return 1


class PqAdcCodec:
    """Product-quantization codec scored via ADC lookup tables.

    Wraps the (fixed) :class:`~repro.baselines.pq.ProductQuantizer`:
    codebooks are trained per segment at build time, each row compresses
    to one ``uint16`` code per subspace, and a query builds one
    ``(num_subspaces, num_codes)`` table whose lookups replace the
    full-dimension dot product.
    """

    kind = "pq"

    def __init__(self, num_subspaces: int = 8, *, seed: int = 0) -> None:
        if num_subspaces < 1:
            raise ValueError(
                f"num_subspaces must be positive, got {num_subspaces}"
            )
        self.requested_subspaces = int(num_subspaces)
        self.seed = int(seed)
        self._pq = None  # fitted ProductQuantizer
        #: float32 codebooks (m, ks, d/m) used by the scoring hot path.
        self.codebooks32: np.ndarray | None = None
        self.center_sq: np.ndarray | None = None  # (m, ks) float32

    @property
    def is_fitted(self) -> bool:
        """Whether codebooks have been trained."""
        return self.codebooks32 is not None

    @property
    def num_subspaces(self) -> int:
        """Effective subspace count (after divisor adjustment)."""
        if self.codebooks32 is None:
            return self.requested_subspaces
        return int(self.codebooks32.shape[0])

    def _require_fitted(self) -> None:
        if self.codebooks32 is None:
            from repro.errors import CodecNotFittedError

            raise CodecNotFittedError(
                "PqAdcCodec has no codebooks; call fit() before "
                "encode/decode"
            )

    def fit(self, data: np.ndarray) -> "PqAdcCodec":
        """Train one k-means codebook per subspace on ``data``."""
        from repro.baselines.pq import ProductQuantizer

        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(
                f"PqAdcCodec.fit needs a non-empty (n, d) matrix, got "
                f"shape {data.shape}"
            )
        subspaces = pq_subspaces_for(
            data.shape[1], self.requested_subspaces
        )
        train = data
        if data.shape[0] > _PQ_TRAIN_SAMPLE:
            # k-means cost scales with the training set but codebook
            # quality saturates well below segment size; train on a
            # seeded subsample, encode everything.
            rng = np.random.default_rng(self.seed)
            rows = rng.choice(
                data.shape[0], size=_PQ_TRAIN_SAMPLE, replace=False
            )
            train = data[np.sort(rows)]
        self._pq = ProductQuantizer(
            subspaces, max(2, min(256, train.shape[0])), seed=self.seed
        ).fit(train)
        self._finish()
        return self

    def _finish(self) -> None:
        self.codebooks32 = self._pq.codebooks.astype(np.float32)
        self.center_sq = np.einsum(
            "mkd,mkd->mk", self.codebooks32, self.codebooks32
        )

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Compress rows to ``(n, m)`` uint16 codes."""
        self._require_fitted()
        return self._pq.encode(data)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct (approximate) float32 rows from codes."""
        self._require_fitted()
        return self._pq.decode(codes)

    def to_arrays(self) -> dict:
        """Npz-friendly dict form (full-precision codebooks)."""
        self._require_fitted()
        return {
            "codec_codebooks": self._pq.codebooks,
            "codec_pq_seed": np.asarray(self.seed),
        }

    @classmethod
    def from_arrays(cls, payload: dict) -> "PqAdcCodec":
        """Inverse of :meth:`to_arrays`."""
        from repro.baselines.pq import ProductQuantizer

        codebooks = np.asarray(payload["codec_codebooks"], dtype=np.float64)
        subspaces, num_codes, width = codebooks.shape
        codec = cls(subspaces, seed=int(payload["codec_pq_seed"]))
        pq = ProductQuantizer(subspaces, max(2, num_codes), seed=codec.seed)
        pq.codebooks = codebooks
        pq.num_codes = num_codes
        pq.dim = subspaces * width
        codec._pq = pq
        codec._finish()
        return codec


class QuantizedStore:
    """Compressed codes for one :class:`Scorer`'s rows plus their codec.

    The store owns everything the beam search needs to run on codes:
    the trained codec, the encoded rows, and (for Euclidean) the decoded
    squared norms.  :meth:`view` binds a prepared query batch and returns
    a scoring adapter with the same ``score_pairs`` signature the
    lockstep kernels already use, so traversal code is unchanged --
    quantization is purely a different scorer implementation.
    """

    def __init__(
        self,
        scorer: Scorer,
        kind: str,
        *,
        pq_subspaces: int = 8,
        seed: int = 0,
    ) -> None:
        if kind not in ("int8", "pq"):
            raise ValueError(
                f"quantize kind must be 'int8' or 'pq', got {kind!r}"
            )
        self.scorer = scorer
        self.kind = kind
        self.pq_subspaces = int(pq_subspaces)
        self.seed = int(seed)
        self.codec = None
        self.codes: np.ndarray | None = None
        self.code_sq: np.ndarray | None = None
        #: Stored-row count the codes were trained on; a mismatch with
        #: ``len(scorer)`` means the store is stale and must refresh.
        self.count = 0

    @property
    def is_trained(self) -> bool:
        """Whether codes exist for every stored row."""
        return self.codes is not None and self.count == len(self.scorer)

    @property
    def nbytes(self) -> int:
        """Bytes held by the compressed codes (the RAM the beam touches)."""
        total = self.codes.nbytes if self.codes is not None else 0
        if self.code_sq is not None:
            total += self.code_sq.nbytes
        return total

    def refresh(self) -> None:
        """(Re)train the codec and encode every stored row.

        Deterministic for a given data matrix and seed; called after
        every ``add()`` so the codes always cover the stored rows.
        """
        data = self.scorer.data
        if data.shape[0] == 0:
            self.codec = None
            self.codes = None
            self.code_sq = None
            self.count = 0
            return
        if self.kind == "int8":
            self.codec = Int8Codec().fit(data)
        else:
            self.codec = PqAdcCodec(
                self.pq_subspaces, seed=self.seed
            ).fit(data)
        self.codes = self.codec.encode(data)
        self._finish_refresh()

    def _finish_refresh(self) -> None:
        if self.scorer._is_euclidean and self.kind == "int8":
            decoded = self.codec.decode(self.codes)
            self.code_sq = np.einsum("nd,nd->n", decoded, decoded)
        else:
            self.code_sq = None
        self.count = int(self.codes.shape[0])

    def view(self, prepared: np.ndarray):
        """Bind a *prepared* ``(B, d)`` query batch for compressed scoring."""
        if not self.is_trained:
            self.refresh()
        if self.kind == "int8":
            return _Int8View(self, prepared)
        return _PqAdcView(self, prepared)

    # -- persistence ----------------------------------------------------------
    def to_arrays(self) -> dict:
        """Npz-friendly payload (codes + codec; keys are prefixed)."""
        payload: dict = {"codec_kind": np.asarray(self.kind)}
        if self.codes is None:
            return payload
        payload.update(self.codec.to_arrays())
        payload["codec_codes"] = self.codes
        return payload

    @classmethod
    def from_arrays(
        cls,
        scorer: Scorer,
        payload: dict,
        *,
        pq_subspaces: int = 8,
        seed: int = 0,
    ) -> "QuantizedStore":
        """Rebuild a store (codes are restored, not retrained)."""
        kind = str(payload["codec_kind"])
        store = cls(scorer, kind, pq_subspaces=pq_subspaces, seed=seed)
        if "codec_codes" not in payload:
            return store
        if kind == "int8":
            store.codec = Int8Codec.from_arrays(payload)
            store.codes = np.asarray(payload["codec_codes"], dtype=np.int8)
        else:
            store.codec = PqAdcCodec.from_arrays(payload)
            store.codes = np.asarray(
                payload["codec_codes"], dtype=np.uint16
            )
        store._finish_refresh()
        return store


class _Int8View:
    """Per-batch int8 scoring adapter for the lockstep kernels.

    The affine dequantization folds into the query side: with
    ``x ~ scale * c + offset``, the dot ``x . q`` becomes
    ``c . (scale * q) + offset . q`` -- so scoring gathers raw int8
    codes and runs one widening ``einsum`` against the pre-scaled
    query, never materialising dequantized rows.
    """

    def __init__(self, store: QuantizedStore, prepared: np.ndarray) -> None:
        scorer = store.scorer
        self._scorer = scorer
        self._codes = store.codes
        self._code_sq = store.code_sq
        codec = store.codec
        self._qs = prepared * codec.scale
        bias = prepared @ codec.offset
        # Everything that depends only on the query folds into one
        # per-query constant, so the hot loop is one code gather, one
        # widening einsum and one constant gather:
        #   euclid: |x|^2 - 2(c.qs + bias) + |q|^2
        #           = code_sq[ids] - 2 c.qs + (|q|^2 - 2 bias)
        #   cosine: 1 - (c.qs + bias);  ip: -(c.qs + bias)
        if scorer._is_euclidean:
            q_sq = np.einsum("bd,bd->b", prepared, prepared)
            self._q_const = q_sq - 2.0 * bias
        elif scorer._is_cosine:
            self._q_const = 1.0 - bias
        else:
            self._q_const = -bias

    def score_pairs(
        self,
        queries: np.ndarray,
        query_rows: np.ndarray,
        ids: np.ndarray,
        query_sq: np.ndarray | None = None,
    ) -> np.ndarray:
        """Approximate reduced distances for (query, candidate) pairs.

        Same signature and batch-composition invariance as
        :meth:`Scorer.score_pairs`; ``queries``/``query_sq`` are accepted
        for interface compatibility but the view's precomputed transforms
        are what actually score.
        """
        scorer = self._scorer
        scorer.ops += len(ids)
        rows = self._codes[ids]
        dots = np.einsum("nd,nd->n", rows, self._qs[query_rows])
        if scorer._is_euclidean:
            scores = self._code_sq[ids] - 2.0 * dots
            scores += self._q_const[query_rows]
            np.maximum(scores, 0.0, out=scores)
            return scores
        # cosine and inner product share the shape const - dot.
        return self._q_const[query_rows] - dots


class _PqAdcView:
    """Per-batch PQ/ADC scoring adapter for the lockstep kernels.

    Each query of the batch owns one flat ``(m * ks)`` lookup table;
    scoring a pair is ``m`` table gathers summed -- independent of the
    stored dimensionality.
    """

    def __init__(self, store: QuantizedStore, prepared: np.ndarray) -> None:
        scorer = store.scorer
        self._scorer = scorer
        self._codes = store.codes
        codec = store.codec
        books = codec.codebooks32  # (m, ks, d/m)
        subspaces, num_codes, width = books.shape
        chunks = prepared.reshape(prepared.shape[0], subspaces, width)
        dot_tables = np.einsum("mkd,bmd->bmk", books, chunks)
        if scorer._is_euclidean:
            # ADC: per-subspace squared distance, summed by lookup.
            sub_sq = np.einsum("bmd,bmd->bm", chunks, chunks)
            tables = (
                codec.center_sq[np.newaxis]
                - 2.0 * dot_tables
                + sub_sq[:, :, np.newaxis]
            )
        else:
            tables = dot_tables
        self._tables = np.ascontiguousarray(
            tables.reshape(prepared.shape[0], subspaces * num_codes),
            dtype=np.float32,
        )
        self._flat_offsets = (
            np.arange(subspaces, dtype=np.int64) * num_codes
        )

    def score_pairs(
        self,
        queries: np.ndarray,
        query_rows: np.ndarray,
        ids: np.ndarray,
        query_sq: np.ndarray | None = None,
    ) -> np.ndarray:
        """Approximate reduced distances for (query, candidate) pairs."""
        scorer = self._scorer
        scorer.ops += len(ids)
        flat = self._codes[ids] + self._flat_offsets
        sums = self._tables[query_rows[:, np.newaxis], flat].sum(axis=1)
        if scorer._is_euclidean:
            np.maximum(sums, 0.0, out=sums)
            return sums
        if scorer._is_cosine:
            return 1.0 - sums
        return -sums
