"""Per-index distance scorer with cached precomputation.

A :class:`Scorer` binds a metric to a data matrix and precomputes whatever
the metric can reuse across queries (squared norms for Euclidean, row
normalisation for cosine).  The HNSW inner loop calls
:meth:`Scorer.score_ids` thousands of times per query, so this path is kept
allocation-light: a gather (``data[ids]``) plus one fused expression.
"""

from __future__ import annotations

import numpy as np

from repro.distance.metrics import (
    CosineDistance,
    EuclideanDistance,
    InnerProductDistance,
    Metric,
    get_metric,
)


class Scorer:
    """Scores queries against a fixed, growable data matrix.

    Parameters
    ----------
    metric:
        Metric name or instance.
    dim:
        Vector dimensionality.
    capacity:
        Initial row capacity; the backing array doubles as needed.

    Notes
    -----
    Scores are in the metric's *reduced* space (squared Euclidean, cosine
    distance, negative inner product); use :meth:`to_true` at the API
    boundary.  For cosine, vectors are normalised once on insertion so the
    reduced score is ``1 - <q_hat, x_hat>`` via a plain dot product.
    """

    def __init__(self, metric: str | Metric, dim: int, capacity: int = 1024) -> None:
        self.metric = get_metric(metric)
        self.dim = int(dim)
        if self.dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        capacity = max(int(capacity), 1)
        self._data = np.empty((capacity, self.dim), dtype=np.float32)
        self._sq_norms = np.empty(capacity, dtype=np.float32)
        self._count = 0
        #: Running count of full-vector distance evaluations (the work
        #: metric reported by the Figure 1 benchmark).
        self.ops = 0
        self._is_euclidean = isinstance(self.metric, EuclideanDistance)
        self._is_cosine = isinstance(self.metric, CosineDistance)
        self._is_ip = isinstance(self.metric, InnerProductDistance)

    # -- storage ----------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def data(self) -> np.ndarray:
        """View of the stored (possibly normalised) vectors."""
        return self._data[: self._count]

    def _grow(self, needed: int) -> None:
        capacity = self._data.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2)
        new_data = np.empty((new_capacity, self.dim), dtype=np.float32)
        new_data[: self._count] = self._data[: self._count]
        self._data = new_data
        new_norms = np.empty(new_capacity, dtype=np.float32)
        new_norms[: self._count] = self._sq_norms[: self._count]
        self._sq_norms = new_norms

    def add(self, vectors: np.ndarray) -> np.ndarray:
        """Append rows; return their internal indices."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors[np.newaxis, :]
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"vectors have dimension {vectors.shape[1]}, expected {self.dim}"
            )
        n = vectors.shape[0]
        self._grow(self._count + n)
        rows = np.arange(self._count, self._count + n)
        if self._is_cosine:
            norms = np.linalg.norm(vectors, axis=1, keepdims=True)
            # Zero vectors stay zero: they score distance 1 to everything.
            safe = np.where(norms > 0.0, norms, 1.0)
            self._data[rows] = vectors / safe
        else:
            self._data[rows] = vectors
        self._sq_norms[rows] = np.einsum(
            "ij,ij->i", self._data[rows], self._data[rows]
        )
        self._count += n
        return rows

    # -- query preparation --------------------------------------------------------
    def prepare_query(self, query: np.ndarray) -> np.ndarray:
        """Canonicalise one query vector: a batch of one."""
        query = np.asarray(query, dtype=np.float32)
        if query.ndim != 1 or query.shape[0] != self.dim:
            raise ValueError(
                f"query has shape {query.shape}, expected ({self.dim},)"
            )
        return self.prepare_queries(query[np.newaxis, :])[0]

    def prepare_queries(self, queries: np.ndarray) -> np.ndarray:
        """Canonicalise a ``(B, d)`` query batch in one pass.

        Row ``i`` of the result equals ``prepare_query(queries[i])``: the
        per-row operations (norm, divide) are rowwise-independent, so
        preparation does not depend on batch composition.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(
                f"queries have shape {queries.shape}, expected (B, {self.dim})"
            )
        if self._is_cosine and queries.shape[0]:
            norms = np.linalg.norm(queries, axis=1, keepdims=True)
            safe = np.where(norms > 0.0, norms, 1.0)
            return queries / safe
        return queries

    def query_sq_norms(self, prepared: np.ndarray) -> np.ndarray:
        """Per-row squared norms of a *prepared* query batch.

        Precompute once per batch; :meth:`score_pairs` consumes it for the
        Euclidean expansion.
        """
        return np.einsum("bd,bd->b", prepared, prepared)

    # -- scoring ------------------------------------------------------------------
    def score_ids(self, query: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Reduced distances from a *prepared* query to rows ``ids``.

        This is the hot path: one gather + one matvec.
        """
        self.ops += len(ids)
        rows = self._data[ids]
        if self._is_euclidean:
            dots = rows @ query
            scores = self._sq_norms[ids] - 2.0 * dots
            scores += float(query @ query)
            np.maximum(scores, 0.0, out=scores)
            return scores
        if self._is_cosine:
            return 1.0 - rows @ query
        return -(rows @ query)

    def score_pairs(
        self,
        queries: np.ndarray,
        query_rows: np.ndarray,
        ids: np.ndarray,
        query_sq: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reduced distances ``d(queries[query_rows[i]], data[ids[i]])``.

        This is the batched-traversal hot path: the flat counterpart of
        :meth:`score_ids` that scores many (query, candidate) pairs of a
        *prepared* ``(B, d)`` batch in one vectorised call.  The per-pair
        dot is an ``einsum`` row reduction, so every pair's value is
        independent of which other pairs share the call -- a batch of one
        produces bit-identical scores to any larger batch.

        Parameters
        ----------
        queries:
            Prepared ``(B, d)`` query batch (:meth:`prepare_queries`).
        query_rows:
            ``(n,)`` row index into ``queries`` for each pair.
        ids:
            ``(n,)`` stored-row index for each pair.
        query_sq:
            Optional precomputed :meth:`query_sq_norms` of ``queries``.
        """
        self.ops += len(ids)
        rows = self._data[ids]
        q_rows = queries[query_rows]
        dots = np.einsum("nd,nd->n", rows, q_rows)
        if self._is_euclidean:
            if query_sq is None:
                query_sq = self.query_sq_norms(queries)
            scores = self._sq_norms[ids] - 2.0 * dots
            scores += query_sq[query_rows]
            np.maximum(scores, 0.0, out=scores)
            return scores
        if self._is_cosine:
            return 1.0 - dots
        return -dots

    def score_all(self, query: np.ndarray) -> np.ndarray:
        """Reduced distances from a *prepared* query to every stored row."""
        self.ops += self._count
        data = self.data
        if self._is_euclidean:
            scores = self._sq_norms[: self._count] - 2.0 * (data @ query)
            scores += float(query @ query)
            np.maximum(scores, 0.0, out=scores)
            return scores
        if self._is_cosine:
            return 1.0 - data @ query
        return -(data @ query)

    def score_all_batch(self, queries: np.ndarray) -> np.ndarray:
        """Reduced distances from a *prepared* ``(B, d)`` batch to all rows.

        One ``(B, d) @ (d, n)`` GEMM; the matrix-level scoring path used
        by exhaustive rescoring and the brute-force baselines.
        """
        self.ops += self._count * queries.shape[0]
        data = self.data
        gram = queries @ data.T
        if self._is_euclidean:
            q_norms = self.query_sq_norms(queries)[:, np.newaxis]
            scores = self._sq_norms[: self._count][np.newaxis, :] - 2.0 * gram
            scores += q_norms
            np.maximum(scores, 0.0, out=scores)
            return scores
        if self._is_cosine:
            return 1.0 - gram
        return -gram

    def pairwise_ids(self, ids: np.ndarray) -> np.ndarray:
        """All-pairs reduced distances among stored rows ``ids``.

        Used by the HNSW neighbor-selection heuristic: one GEMM replaces
        O(candidates * M) small distance calls.
        """
        self.ops += len(ids) * len(ids)
        rows = self._data[ids]
        gram = rows @ rows.T
        if self._is_euclidean:
            norms = self._sq_norms[ids]
            squared = norms[:, np.newaxis] + norms[np.newaxis, :] - 2.0 * gram
            np.maximum(squared, 0.0, out=squared)
            return squared
        if self._is_cosine:
            return 1.0 - gram
        return -gram

    def pairwise_ids_batch(self, ids: np.ndarray) -> np.ndarray:
        """All-pairs reduced distances for a ``(P, C)`` stack of id rows.

        Row ``p`` of the result is ``pairwise_ids(ids[p])`` -- one batched
        GEMM (``np.matmul`` over the stacked axis) replaces P separate
        calls, which is what lets the construction wave score every
        pending neighbor-selection problem in one vectorised round.  Each
        stack slice is an independent ``(C, d) @ (d, C)`` product, so a
        stack of one is bit-identical to any larger stack (the heuristic
        relies on this: the sequential insert path is a batch of one).
        Padding slots may repeat any valid id; callers mask them out.
        (Padding pairs are counted as work too: they ride the same GEMM.)
        """
        ids = np.asarray(ids)
        self.ops += int(ids.shape[0]) * int(ids.shape[1]) * int(ids.shape[1])
        rows = self._data[ids]
        gram = np.matmul(rows, rows.transpose(0, 2, 1))
        if self._is_euclidean:
            norms = self._sq_norms[ids]
            squared = norms[:, :, np.newaxis] + norms[:, np.newaxis, :]
            squared -= 2.0 * gram
            np.maximum(squared, 0.0, out=squared)
            return squared
        if self._is_cosine:
            return 1.0 - gram
        return -gram

    def to_true(self, reduced: np.ndarray) -> np.ndarray:
        """Convert reduced scores to true metric distances."""
        return self.metric.to_true(np.asarray(reduced))
