"""``SearcherTransport``: one interface for in-process and remote shards.

The broker fans a batch out to *transports*; whether a shard lives in
this process (a :class:`~repro.online.searcher.SearcherNode`) or behind
a TCP connection (a :class:`~repro.net.client.RemoteSearcherClient`) is
invisible above this line.  That is what lets the micro-batcher, the
result cache, the perShardTopK math and the merge run unchanged when the
fleet moves out of process.

Deadlines: ``search_batch`` takes an absolute ``time.monotonic()``
deadline.  The remote transport enforces it on the wire; the local
transport *ignores* it -- in-process numpy work is not cancellable, and
the broker already bounds its own wait on the fan-out future.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.net.client import (
    CONNECTIVITY_FAILURES,
    AsyncRemoteSearcherClient,
    RemoteSearcherClient,
)
from repro.obs.cost import SearchCost
from repro.obs.tracing import SpanRecorder, activate, deactivate
from repro.online.searcher import SearcherNode

__all__ = [
    "SearcherTransport",
    "AsyncSearcherTransport",
    "LocalSearcherTransport",
    "RemoteSearcherTransport",
    "AsyncRemoteSearcherTransport",
    "as_transport",
    "CONNECTIVITY_FAILURES",
]


class SearcherTransport(abc.ABC):
    """What the broker needs from a shard, wherever it runs."""

    shard_id: int

    @abc.abstractmethod
    def search_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
        deadline: float | None = None,
        probes: list[tuple[int, ...]] | None = None,
        trace_ctx: dict | None = None,
        collect_cost: bool = False,
        info_out: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lockstep shard search; ``(B, k)`` id/distance arrays.

        ``trace_ctx`` propagates the broker's trace context (the shard
        then reports its span tree), ``collect_cost`` asks for
        search-cost counters; both land in ``info_out`` under the
        ``"trace"`` / ``"cost"`` keys when produced.  Results are
        bit-identical with or without them.
        """

    @property
    @abc.abstractmethod
    def queries_served(self) -> int:
        """Query rows this transport answered (fleet traffic counter)."""

    @abc.abstractmethod
    def stats(self) -> dict:
        """Counters of the underlying searcher."""

    def close(self) -> None:
        """Release transport resources (no-op for in-process shards)."""


class AsyncSearcherTransport(abc.ABC):
    """Marker + contract for transports with a native-async search path.

    The broker's asyncio fan-out multiplexes every transport that
    implements this on one event loop; transports without it (the
    in-process kind) fall back to an executor call.  Implementations
    must tolerate several concurrent :meth:`search_batch_async` calls
    for one shard -- that is exactly what a hedged request is.
    """

    @abc.abstractmethod
    async def search_batch_async(
        self,
        index_name: str,
        queries: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
        deadline: float | None = None,
        probes: list[tuple[int, ...]] | None = None,
        trace_ctx: dict | None = None,
        collect_cost: bool = False,
        info_out: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Coroutine twin of :meth:`SearcherTransport.search_batch`."""


class LocalSearcherTransport(SearcherTransport):
    """In-process shard: direct method calls on a :class:`SearcherNode`."""

    def __init__(self, node: SearcherNode) -> None:
        self.node = node
        self.shard_id = node.shard_id

    def search_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
        deadline: float | None = None,
        probes: list[tuple[int, ...]] | None = None,
        trace_ctx: dict | None = None,
        collect_cost: bool = False,
        info_out: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        cost = SearchCost() if collect_cost else None
        recorder = SpanRecorder() if trace_ctx is not None else None
        token = activate(recorder) if recorder is not None else None
        try:
            result = self.node.search_batch(
                index_name, queries, k, ef=ef, probes=probes, cost=cost
            )
        finally:
            if token is not None:
                deactivate(token)
        if info_out is not None:
            if cost is not None:
                info_out["cost"] = cost.as_dict()
            if recorder is not None:
                info_out["trace"] = recorder.export()
        return result

    @property
    def queries_served(self) -> int:
        return self.node.queries_served

    def stats(self) -> dict:
        return self.node.stats()

    def __repr__(self) -> str:
        return f"LocalSearcherTransport({self.node!r})"


class RemoteSearcherTransport(SearcherTransport):
    """A shard behind TCP: delegates to a :class:`RemoteSearcherClient`.

    ``shard_id`` is the position this transport holds in the broker's
    fleet; :meth:`verify` confirms the process at ``address`` actually
    serves that shard (deploy-time sanity check).
    """

    def __init__(
        self,
        address: str | tuple,
        shard_id: int,
        *,
        client: RemoteSearcherClient | None = None,
        **client_kwargs,
    ) -> None:
        self.client = (
            client
            if client is not None
            else RemoteSearcherClient(address, **client_kwargs)
        )
        self.shard_id = int(shard_id)

    @property
    def address(self) -> str:
        return self.client.address

    def verify(self, *, deadline: float | None = None) -> None:
        """Ping the remote process and check it serves our shard."""
        remote_shard = self.client.ping(deadline=deadline)
        if remote_shard != self.shard_id:
            raise ValueError(
                f"searcher at {self.address} serves shard {remote_shard}, "
                f"expected shard {self.shard_id}"
            )

    def search_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
        deadline: float | None = None,
        probes: list[tuple[int, ...]] | None = None,
        trace_ctx: dict | None = None,
        collect_cost: bool = False,
        info_out: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.client.search_batch(
            index_name,
            queries,
            k,
            ef=ef,
            deadline=deadline,
            probes=probes,
            trace_ctx=trace_ctx,
            collect_cost=collect_cost,
            info_out=info_out,
        )

    def deploy(
        self,
        index_name: str,
        index_path: str,
        *,
        root: str | None = None,
        deadline: float | None = None,
    ) -> None:
        self.client.deploy(
            index_name, index_path, root=root, deadline=deadline
        )

    def undeploy(
        self, index_name: str, *, deadline: float | None = None
    ) -> None:
        self.client.undeploy(index_name, deadline=deadline)

    @property
    def queries_served(self) -> int:
        # Client-side count of rows answered: stats() would cost an RPC
        # (and fail for a dead searcher) on every Broker.stats() call.
        return self.client.queries_served

    def stats(self) -> dict:
        return self.client.stats()

    def close(self) -> None:
        self.client.close()

    def __repr__(self) -> str:
        return (
            f"RemoteSearcherTransport({self.address!r}, "
            f"shard_id={self.shard_id})"
        )


class AsyncRemoteSearcherTransport(RemoteSearcherTransport, AsyncSearcherTransport):
    """A remote shard with an asyncio-native search hot path.

    The control plane (``verify`` / ``deploy`` / ``undeploy`` /
    ``stats``) and the sync ``search_batch`` fallback stay on the
    inherited blocking :class:`RemoteSearcherClient`; SEARCH RPCs issued
    through :meth:`search_batch_async` ride the
    :class:`AsyncRemoteSearcherClient`'s per-loop connection pool, so a
    broker's event loop can hold every shard (and every hedge) in
    flight without a thread per RPC.
    """

    def __init__(
        self,
        address: str | tuple,
        shard_id: int,
        *,
        client: RemoteSearcherClient | None = None,
        async_client: AsyncRemoteSearcherClient | None = None,
        **client_kwargs,
    ) -> None:
        super().__init__(
            address, shard_id, client=client, **client_kwargs
        )
        self.async_client = (
            async_client
            if async_client is not None
            else AsyncRemoteSearcherClient(address, **client_kwargs)
        )

    async def search_batch_async(
        self,
        index_name: str,
        queries: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
        deadline: float | None = None,
        probes: list[tuple[int, ...]] | None = None,
        trace_ctx: dict | None = None,
        collect_cost: bool = False,
        info_out: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        return await self.async_client.search_batch(
            index_name,
            queries,
            k,
            ef=ef,
            deadline=deadline,
            probes=probes,
            trace_ctx=trace_ctx,
            collect_cost=collect_cost,
            info_out=info_out,
        )

    @property
    def queries_served(self) -> int:
        # Both planes answer rows: sync for control-path / fallback
        # searches, async for the multiplexed fan-out.
        return self.client.queries_served + self.async_client.queries_served

    def close(self) -> None:
        super().close()
        self.async_client.close()

    def __repr__(self) -> str:
        return (
            f"AsyncRemoteSearcherTransport({self.address!r}, "
            f"shard_id={self.shard_id})"
        )


def as_transport(searcher) -> SearcherTransport:
    """Wrap a raw :class:`SearcherNode` (transports pass through)."""
    if isinstance(searcher, SearcherTransport):
        return searcher
    if isinstance(searcher, SearcherNode):
        return LocalSearcherTransport(searcher)
    raise TypeError(
        f"cannot drive {type(searcher).__name__} as a searcher transport"
    )
