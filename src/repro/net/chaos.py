"""Deterministic fault injection for the serving tier.

A :class:`FaultPlan` is a *seeded* schedule of transport faults --
artificial delays, connection resets, silent drops, and overload
responses -- consumed one decision per SEARCH frame in arrival order.
Because the searcher handles frames sequentially per connection and the
plan's RNG is seeded, two runs offering the same request sequence see
the *same* faults at the same points: chaos tests and
``benchmarks/bench_overload.py`` assert bit-reproducibility of entire
faulty runs, not just of the happy path.

The plan lives at the server boundary (``SearcherServer`` consults it
after decoding each SEARCH frame), which is where real faults bite:
the client sees a genuine RST / timeout / OVERLOADED frame produced by
a genuine server, so every client-side recovery path (reconnect,
retry, failover, breaker) is exercised for real rather than mocked.

``FaultPlan.parse`` round-trips a compact ``key=value`` spec string so
:mod:`repro.net.fleet` can ship a plan to a searcher subprocess through
one CLI flag (``repro.cli serve-searcher --chaos-spec ...``).
"""

from __future__ import annotations

import random
import threading

#: Fault kinds, in cumulative-threshold order.  ``delay`` stalls the
#: response, ``reset`` closes the connection before answering, ``drop``
#: swallows the request without any response (the client's deadline
#: fires), ``overload`` sheds with a structured OVERLOADED error frame.
FAULT_KINDS = ("delay", "reset", "drop", "overload")


class FaultPlan:
    """A seeded, reproducible schedule of injected transport faults.

    Parameters
    ----------
    seed:
        RNG seed; identical seeds + identical request order -> identical
        fault sequence.
    delay_rate / reset_rate / drop_rate / overload_rate:
        Per-request probability of each fault kind; the rates must sum
        to at most 1 (the remainder is "no fault").
    delay_s:
        Stall applied when a ``delay`` fault fires.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        delay_rate: float = 0.0,
        delay_s: float = 0.05,
        reset_rate: float = 0.0,
        drop_rate: float = 0.0,
        overload_rate: float = 0.0,
    ) -> None:
        rates = {
            "delay": float(delay_rate),
            "reset": float(reset_rate),
            "drop": float(drop_rate),
            "overload": float(overload_rate),
        }
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{kind}_rate must be in [0, 1], got {rate}"
                )
        if sum(rates.values()) > 1.0:
            raise ValueError(
                f"fault rates sum to {sum(rates.values())}, must be <= 1"
            )
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        self.seed = int(seed)
        self.rates = rates
        self.delay_s = float(delay_s)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        #: Lifetime count of decisions drawn, per kind (``None`` -> "ok").
        self.injected = {kind: 0 for kind in FAULT_KINDS}
        self.decisions = 0

    def draw(self) -> str | None:
        """The next fault decision: a :data:`FAULT_KINDS` entry or ``None``.

        One draw per request, in arrival order -- the RNG stream *is*
        the schedule, so callers must not draw speculatively.
        """
        with self._lock:
            self.decisions += 1
            u = self._rng.random()
            threshold = 0.0
            for kind in FAULT_KINDS:
                threshold += self.rates[kind]
                if u < threshold:
                    self.injected[kind] += 1
                    return kind
            return None

    # -- spec round trip ---------------------------------------------------------------
    def spec(self) -> str:
        """Compact ``key=value`` form accepted by :meth:`parse`."""
        parts = [f"seed={self.seed}"]
        for kind in FAULT_KINDS:
            if self.rates[kind]:
                parts.append(f"{kind}_rate={self.rates[kind]!r}")
        if self.rates["delay"]:
            parts.append(f"delay_s={self.delay_s!r}")
        return ",".join(parts)

    @classmethod
    def parse(cls, spec: str) -> FaultPlan:
        """Parse ``"seed=42,reset_rate=0.1,delay_rate=0.2,delay_s=0.05"``."""
        kwargs: dict[str, float] = {}
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(
                    f"chaos spec entry {part!r} is not of the form key=value"
                )
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key in ("delay_s",) or key.endswith("_rate"):
                kwargs[key] = float(value)
            else:
                raise ValueError(f"unknown chaos spec key {key!r}")
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ValueError(f"invalid chaos spec {spec!r}: {exc}") from None

    def snapshot(self) -> dict:
        """Decision counters for stats endpoints and bench reports."""
        with self._lock:
            return {
                "seed": self.seed,
                "decisions": self.decisions,
                "injected": dict(self.injected),
            }

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec()!r})"
