"""Length-prefixed binary wire protocol for broker <-> searcher RPCs.

One frame per message::

    +-------+---------+----------+------------+-------------+
    | magic | version | msg_type | header_len | payload_len |
    | 2B    | 1B      | 1B       | u32 BE     | u64 BE      |
    +-------+---------+----------+------------+-------------+
    | header: JSON (UTF-8), header_len bytes                |
    +-------------------------------------------------------+
    | payload: raw array buffers, concatenated              |
    +-------------------------------------------------------+

The JSON header carries the request metadata (index name, ``top_k``,
``ef``, ...) plus an ``arrays`` list of ``{"dtype", "shape"}`` entries
describing the payload layout.  Array payloads are the raw C-contiguous
bytes of ``float32`` / ``float64`` / ``int64`` numpy buffers: encoding
writes :class:`memoryview` s of the arrays (no serialization pass, no
copy) and decoding reconstructs them with ``np.frombuffer`` over slices
of the received buffer (no copy either).

Robustness contract, pinned by ``tests/test_net_protocol.py``: any
truncated, oversized, wrong-magic, wrong-version or otherwise garbled
frame raises :class:`~repro.errors.ProtocolError` -- never a hang, a
numpy error, or a silent wrong answer.  Server-side failures travel back
as *structured error frames* (:data:`MsgType.ERROR`) carrying the
exception type and message, surfaced to callers as
:class:`~repro.errors.RemoteCallError`.
"""

from __future__ import annotations

import json
import socket
import struct
import time
from enum import IntEnum

import numpy as np

from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    RemoteCallError,
)

#: Bump on any frame-layout or semantics change.  Version 2 (PR 8) adds
#: the optional ``trace`` context to SEARCH headers and the optional
#: ``cost`` / ``trace`` entries to RESULT headers.  Version 3 (PR 10)
#: adds the optional ``deadline_ms`` remaining-budget hint to SEARCH
#: headers and the optional ``retry_after_s`` backoff hint to ERROR
#: headers -- pure header additions, so decoding still accepts older
#: frames (and older peers, which ignore unknown header keys, keep
#: interoperating).
PROTOCOL_VERSION = 3

#: Frame versions this peer decodes.
SUPPORTED_VERSIONS = (1, 2, 3)

MAGIC = b"LN"

#: Hard ceiling on one frame (prefix + header + payload): 1 GiB.
DEFAULT_MAX_FRAME = 1 << 30

#: Ceiling on the JSON header alone (it is metadata, not data).
MAX_HEADER_BYTES = 1 << 20

#: Ceiling on arrays per frame (requests carry 1, results carry 2-3).
MAX_ARRAYS = 16

_PREFIX = struct.Struct(">2sBBIQ")
PREFIX_SIZE = _PREFIX.size

#: dtypes allowed on the wire: queries, distances, ids.
_WIRE_DTYPES = ("<f4", "<f8", "<i8")


class MsgType(IntEnum):
    """Message type byte.  Requests are < 16, responses >= 16."""

    SEARCH = 1
    DEPLOY = 2
    UNDEPLOY = 3
    STATS = 4
    PING = 5
    RESULT = 16
    OK = 17
    ERROR = 18


#: Canonical JSON-header field registry, per message type and protocol
#: version: ``{msg_name: {version: (field, ...)}}``.  A trailing ``?``
#: marks a field the encoder may omit (decoders must use
#: ``header.get``); unmarked fields are always present.  The protocol
#: evolves additively: each version's tuple must be a *prefix* of the
#: next one — new fields append, nothing reorders or disappears — so a
#: v1 peer can always decode the required core of a v2 frame.  The
#: ``wire-protocol`` checker in :mod:`repro.analysis` cross-references
#: this table against the actual encode/decode sites in ``client.py``
#: and ``server.py``; extend it in the same change as the code.
#:
#: ``OK`` is a union: it answers DEPLOY/UNDEPLOY (``hosted``), STATS
#: (``stats``) and PING (``shard_id``), so all of its fields are
#: per-request optional.
FRAME_FIELDS = {
    "SEARCH": {
        1: ("index", "top_k", "ef", "probes?"),
        2: ("index", "top_k", "ef", "probes?", "trace?", "cost?"),
        3: (
            "index",
            "top_k",
            "ef",
            "probes?",
            "trace?",
            "cost?",
            "deadline_ms?",
        ),
    },
    "DEPLOY": {1: ("index", "path", "root?")},
    "UNDEPLOY": {1: ("index",)},
    "STATS": {1: ()},
    "PING": {1: ()},
    "RESULT": {
        1: ("index",),
        2: ("index", "cost?", "trace?"),
    },
    "OK": {1: ("hosted?", "stats?", "shard_id?")},
    "ERROR": {
        1: ("error_type", "message"),
        3: ("error_type", "message", "retry_after_s?"),
    },
}


# -- encoding ------------------------------------------------------------------------
def encode_frame(
    msg_type: int,
    header: dict | None = None,
    arrays: tuple | list = (),
    *,
    version: int = PROTOCOL_VERSION,
) -> list:
    """Build one frame as a list of buffers (prefix, header, raw arrays).

    Returned buffers are written to the socket back to back; the array
    entries are :class:`memoryview` s over the (C-contiguous) inputs, so
    large query/result blocks are never copied into the frame.
    ``version`` lets tests (and a peer pinned to an older dialect) emit
    any :data:`SUPPORTED_VERSIONS` frame.
    """
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"cannot encode protocol version {version} "
            f"(supported: {SUPPORTED_VERSIONS})"
        )
    header = dict(header) if header else {}
    metas = []
    buffers = []
    for array in arrays:
        array = np.ascontiguousarray(array)
        dtype = array.dtype.newbyteorder("<").str
        if dtype not in _WIRE_DTYPES:
            raise ProtocolError(
                f"dtype {array.dtype.str!r} is not a wire dtype "
                f"(allowed: {_WIRE_DTYPES})"
            )
        if array.dtype.str != dtype:  # big-endian host data: make it LE
            array = array.astype(dtype)
        metas.append({"dtype": dtype, "shape": list(array.shape)})
        # memoryview.cast rejects zero-sized shapes; an empty buffer
        # carries the same (zero) bytes.
        buffers.append(
            memoryview(array).cast("B") if array.size else b""
        )
    header["arrays"] = metas
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"header of {len(header_bytes)} bytes exceeds "
            f"{MAX_HEADER_BYTES}"
        )
    payload_len = sum(len(buffer) for buffer in buffers)
    prefix = _PREFIX.pack(
        MAGIC, version, int(msg_type), len(header_bytes), payload_len
    )
    return [prefix, header_bytes, *buffers]


def frame_to_bytes(
    msg_type: int, header: dict | None = None, arrays: tuple | list = ()
) -> bytes:
    """One contiguous frame (tests / tiny control messages)."""
    return b"".join(bytes(part) for part in encode_frame(msg_type, header, arrays))


def error_frame(exc: BaseException) -> list:
    """A structured error response for a server-side exception.

    An :class:`~repro.errors.OverloadedError` (or anything else carrying
    a ``retry_after_s`` attribute) ships its backoff hint so the peer can
    wait before re-offering the work instead of hammering the searcher.
    """
    header = {"error_type": type(exc).__name__, "message": str(exc)}
    retry_after_s = getattr(exc, "retry_after_s", None)
    if retry_after_s is not None:
        header["retry_after_s"] = float(retry_after_s)
    return encode_frame(MsgType.ERROR, header)


# -- decoding ------------------------------------------------------------------------
def parse_prefix(
    prefix: bytes, *, max_frame: int = DEFAULT_MAX_FRAME
) -> tuple[int, int, int]:
    """Validate a frame prefix; returns ``(msg_type, header_len, payload_len)``."""
    if len(prefix) < PREFIX_SIZE:
        raise ProtocolError(
            f"truncated frame prefix: {len(prefix)} of {PREFIX_SIZE} bytes"
        )
    magic, version, msg_type, header_len, payload_len = _PREFIX.unpack_from(
        prefix
    )
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(speaking {SUPPORTED_VERSIONS})"
        )
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"header length {header_len} exceeds {MAX_HEADER_BYTES}"
        )
    if PREFIX_SIZE + header_len + payload_len > max_frame:
        raise ProtocolError(
            f"frame of {PREFIX_SIZE + header_len + payload_len} bytes "
            f"exceeds the {max_frame}-byte limit"
        )
    try:
        msg_type = MsgType(msg_type)
    except ValueError:
        raise ProtocolError(f"unknown message type {msg_type}") from None
    return msg_type, header_len, payload_len


def decode_body(header_bytes, payload) -> tuple[dict, list[np.ndarray]]:
    """Parse the header JSON and reconstruct the payload arrays (zero-copy).

    ``payload`` may be ``bytes``, ``bytearray`` or ``memoryview``; the
    returned arrays alias it via ``np.frombuffer``.
    """
    try:
        header = json.loads(bytes(header_bytes).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from None
    if not isinstance(header, dict):
        raise ProtocolError("frame header is not a JSON object")
    metas = header.pop("arrays", [])
    if not isinstance(metas, list) or len(metas) > MAX_ARRAYS:
        raise ProtocolError("invalid 'arrays' header entry")
    payload = memoryview(payload)
    arrays: list[np.ndarray] = []
    offset = 0
    for meta in metas:
        if not isinstance(meta, dict):
            raise ProtocolError("array metadata is not an object")
        dtype = meta.get("dtype")
        shape = meta.get("shape")
        if dtype not in _WIRE_DTYPES:
            raise ProtocolError(f"dtype {dtype!r} is not a wire dtype")
        if not isinstance(shape, list) or not all(
            isinstance(dim, int) and dim >= 0 for dim in shape
        ):
            raise ProtocolError(f"invalid array shape {shape!r}")
        count = 1
        for dim in shape:
            count *= dim
        nbytes = count * np.dtype(dtype).itemsize
        if offset + nbytes > len(payload):
            raise ProtocolError(
                f"array payload overruns the frame: needs {nbytes} bytes "
                f"at offset {offset}, payload has {len(payload)}"
            )
        array = np.frombuffer(
            payload[offset : offset + nbytes], dtype=dtype
        ).reshape(shape)
        arrays.append(array)
        offset += nbytes
    if offset != len(payload):
        raise ProtocolError(
            f"{len(payload) - offset} trailing payload bytes not described "
            "by the header"
        )
    return header, arrays


def decode_frame(
    data, *, max_frame: int = DEFAULT_MAX_FRAME
) -> tuple[MsgType, dict, list[np.ndarray]]:
    """Decode one complete frame from a contiguous buffer."""
    data = memoryview(data)
    msg_type, header_len, payload_len = parse_prefix(
        bytes(data[:PREFIX_SIZE]), max_frame=max_frame
    )
    expected = PREFIX_SIZE + header_len + payload_len
    if len(data) < expected:
        raise ProtocolError(
            f"truncated frame: {len(data)} of {expected} bytes"
        )
    if len(data) > expected:
        raise ProtocolError(
            f"{len(data) - expected} trailing bytes after the frame"
        )
    header, arrays = decode_body(
        data[PREFIX_SIZE : PREFIX_SIZE + header_len],
        data[PREFIX_SIZE + header_len : expected],
    )
    return msg_type, header, arrays


def raise_if_error(msg_type: MsgType, header: dict) -> None:
    """Re-raise a peer's structured error frame as a typed exception.

    Transport-level refusals keep their identity across the wire so the
    broker's retry/failover policy can see them: an ``OverloadedError``
    frame (admission shed, carries ``retry_after_s``) and a
    ``DeadlineExceededError`` frame (server-side expiry rejection) come
    back as those exception types; everything else -- the searcher
    *executed* and failed -- surfaces as :class:`RemoteCallError`.
    """
    if msg_type != MsgType.ERROR:
        return
    error_type = str(header.get("error_type", "RemoteError"))
    message = str(header.get("message", ""))
    if error_type == "OverloadedError":
        retry_after_s = header.get("retry_after_s")
        raise OverloadedError(
            message,
            retry_after_s=(
                float(retry_after_s) if retry_after_s is not None else None
            ),
        )
    if error_type == "DeadlineExceededError":
        raise DeadlineExceededError(message)
    raise RemoteCallError(error_type, message)


# -- blocking-socket IO ----------------------------------------------------------------
def send_frame(
    sock: socket.socket,
    msg_type: int,
    header: dict | None = None,
    arrays: tuple | list = (),
) -> None:
    """Write one frame to a blocking socket (honors ``sock.settimeout``)."""
    for buffer in encode_frame(msg_type, header, arrays):
        sock.sendall(buffer)


def _recv_exact(
    sock: socket.socket, nbytes: int, deadline: float | None = None
) -> memoryview:
    buffer = bytearray(nbytes)
    view = memoryview(buffer)
    received = 0
    while received < nbytes:
        if deadline is not None:
            # Re-arm the timeout with the *remaining* budget before
            # every read: a static settimeout is an idle timeout per
            # recv, so a peer trickling bytes could stretch one frame
            # far past the request deadline.
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("receive deadline expired mid-frame")
            sock.settimeout(remaining)
        count = sock.recv_into(view[received:])
        if count == 0:
            raise ConnectionLostError(
                f"connection closed mid-frame ({received} of {nbytes} bytes)"
                if received
                else "connection closed"
            )
        received += count
    return view


def recv_frame(
    sock: socket.socket,
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
    deadline: float | None = None,
) -> tuple[MsgType, dict, list[np.ndarray]]:
    """Read one frame from a blocking socket.

    With ``deadline`` (absolute ``time.monotonic()``), the whole frame
    must arrive before it -- the timeout shrinks with every read.
    Without one, ``sock.settimeout`` applies per read as usual.
    """
    prefix = _recv_exact(sock, PREFIX_SIZE, deadline)
    msg_type, header_len, payload_len = parse_prefix(
        bytes(prefix), max_frame=max_frame
    )
    header_bytes = (
        _recv_exact(sock, header_len, deadline) if header_len else b""
    )
    payload = (
        _recv_exact(sock, payload_len, deadline) if payload_len else b""
    )
    header, arrays = decode_body(header_bytes, payload)
    return msg_type, header, arrays


# -- asyncio-stream IO -----------------------------------------------------------------
async def read_frame_async(
    reader, *, max_frame: int = DEFAULT_MAX_FRAME
) -> tuple[MsgType, dict, list[np.ndarray]]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Raises :class:`ConnectionLostError` on clean EOF *before* a frame
    starts (peer hung up between requests) and :class:`ProtocolError`
    when the stream dies mid-frame.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(PREFIX_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionLostError("connection closed") from None
        raise ProtocolError(
            f"truncated frame prefix: {len(exc.partial)} of "
            f"{PREFIX_SIZE} bytes"
        ) from None
    msg_type, header_len, payload_len = parse_prefix(
        prefix, max_frame=max_frame
    )
    try:
        header_bytes = (
            await reader.readexactly(header_len) if header_len else b""
        )
        payload = (
            await reader.readexactly(payload_len) if payload_len else b""
        )
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} bytes short)"
        ) from None
    header, arrays = decode_body(header_bytes, payload)
    return msg_type, header, arrays


def write_frame(
    writer,
    msg_type: int,
    header: dict | None = None,
    arrays: tuple | list = (),
) -> None:
    """Queue one frame on an :class:`asyncio.StreamWriter` (caller drains)."""
    for buffer in encode_frame(msg_type, header, arrays):
        writer.write(buffer)


async def write_frame_async(
    writer,
    msg_type: int,
    header: dict | None = None,
    arrays: tuple | list = (),
) -> None:
    """Write one frame to an :class:`asyncio.StreamWriter` and drain it.

    Draining applies the stream's flow control: a peer that stops
    reading back-pressures the writer instead of buffering the frame
    (and every retry of it) in process memory.
    """
    write_frame(writer, msg_type, header, arrays)
    await writer.drain()
